"""Setuptools shim so that ``pip install -e .`` works without the wheel package.

The offline environment this reproduction targets ships setuptools but not
``wheel``, so PEP 660 editable wheels cannot be built; keeping a ``setup.py``
lets pip fall back to the legacy ``setup.py develop`` editable install.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
