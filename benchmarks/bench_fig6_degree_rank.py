"""Figure 6 (Exp-3): query time of the BCC variants vs. vertex degree rank.

Sweeps the degree rank Qd over 20%..100% on the Baidu-1-like and DBLP-like
networks and reports the per-method average query time series.
"""

from __future__ import annotations

import time
from typing import Dict

import pytest

from benchmarks.conftest import write_result
from repro.core.bc_index import BCIndex
from repro.eval.harness import BCC_METHOD_NAMES, run_method
from repro.eval.queries import QuerySpec, generate_query_pairs
from repro.eval.reporting import sweep_table

DEGREE_RANKS = (0.2, 0.4, 0.6, 0.8, 1.0)
QUERIES_PER_POINT = 2


def sweep_degree_rank(bundle) -> Dict[str, Dict[float, float]]:
    index = BCIndex(bundle.graph)  # the offline BCindex is shared across queries
    series: Dict[str, Dict[float, float]] = {m: {} for m in BCC_METHOD_NAMES}
    for rank in DEGREE_RANKS:
        pairs = generate_query_pairs(
            bundle, QuerySpec(count=QUERIES_PER_POINT, degree_rank=rank), seed=6
        )
        if not pairs:
            continue
        for method in BCC_METHOD_NAMES:
            start = time.perf_counter()
            for q_left, q_right in pairs:
                run_method(method, bundle, q_left, q_right, index=index)
            series[method][int(rank * 100)] = (time.perf_counter() - start) / len(pairs)
    return series


@pytest.fixture(scope="module")
def degree_rank_series(baidu_like, dblp_like):
    all_series = {}
    for name, bundle in (("baidu-1", baidu_like), ("dblp", dblp_like)):
        series = sweep_degree_rank(bundle)
        all_series[name] = series
        write_result(
            f"figure6_degree_rank_{name}",
            sweep_table(
                series,
                parameter_name="degree rank (%)",
                title=f"Figure 6 ({name}): query time (s) vs. vertex degree rank",
            ),
        )
    return all_series


def test_fig6_sweep_produces_every_series(degree_rank_series, baidu_like, benchmark):
    """Benchmark one point of the sweep (L2P-BCC at the default 80% rank)."""
    pairs = generate_query_pairs(baidu_like, QuerySpec(count=1, degree_rank=0.8), seed=6)
    q_left, q_right = pairs[0]
    benchmark(run_method, "L2P-BCC", baidu_like, q_left, q_right)
    for name, series in degree_rank_series.items():
        for method in BCC_METHOD_NAMES:
            assert series[method], (name, method)


def test_fig6_l2p_fastest_at_default_rank(degree_rank_series, dblp_like, benchmark):
    pairs = generate_query_pairs(dblp_like, QuerySpec(count=1, degree_rank=0.8), seed=6)
    q_left, q_right = pairs[0]
    benchmark(run_method, "LP-BCC", dblp_like, q_left, q_right)
    series = degree_rank_series["dblp"]
    default_point = 80
    if default_point in series["L2P-BCC"] and default_point in series["Online-BCC"]:
        # On these benchmark-scale graphs the global methods are already fast;
        # the local method must simply stay in the same ballpark (on the
        # paper's large graphs it is orders of magnitude faster).
        assert (
            series["L2P-BCC"][default_point]
            <= series["Online-BCC"][default_point] * 3 + 0.05
        )
