#!/usr/bin/env python
"""Fault-tolerant serving: kill 1-of-4 replicas mid-trace, measure the blast.

The fault-tolerance layer (`repro.server.faults` / `resilience`) promises
that one sick replica costs failovers, not answers.  This benchmark proves
it end-to-end over real loopback HTTP:

* **availability** — a seeded :class:`FaultPlan` makes replica 0 fail every
  dispatch from mid-trace on; concurrent clients drive the full trace and
  the fraction answered successfully must stay **above 99%** (with in-set
  failover it is in fact 100% — the assertion leaves room only for
  transport noise);
* **ejection** — by the end of the trace the failing replica must be
  ejected from routing (circuit open) and the set degraded-but-serving;
* **bounded tail** — per-request p99 latency must stay under a bound: a
  failing replica adds one failover hop, never a hang;
* **parity gate** — answers served during the failure storm must equal the
  fault-free in-process answers for every unique query in the trace.

Results land in ``benchmarks/results/BENCH_faults.json``.  Usage::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py          # full
    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py --smoke  # CI

``--smoke`` shrinks the network and trace; every assertion still runs.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from reporting import write_results  # noqa: E402

from repro.api import Query, SearchConfig  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.eval.queries import QuerySpec, generate_query_pairs  # noqa: E402
from repro.server import (  # noqa: E402
    FaultPlan,
    FaultRule,
    Gateway,
    GatewayClient,
    HealthPolicy,
    RetryPolicy,
)
from repro.serving import GraphDirectory  # noqa: E402

RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_faults.json"

NETWORK = "orkut"
SEED = 2021
METHOD = "lp-bcc"
CONFIG = SearchConfig(b=1, max_iterations=200)
REPLICAS = 4
FAILING_REPLICA = 0

FULL_SHAPE = {"communities": 4, "community_size": 48}
SMOKE_SHAPE = {"communities": 2, "community_size": 14}
FULL_TRACE = {"unique": 6, "length": 480, "concurrency": 8}
SMOKE_TRACE = {"unique": 2, "length": 48, "concurrency": 4}

AVAILABILITY_FLOOR = 0.99
P99_BOUND_SECONDS = 2.0


def build_trace(pairs, unique: int, length: int) -> List[Query]:
    """A repeat-heavy single-graph trace over ``unique`` hot pairs."""
    import random

    rng = random.Random(7)
    hot = [tuple(pair) for pair in pairs[:unique]]
    trace = [Query(METHOD, pair) for pair in hot]
    while len(trace) < length:
        rank = min(int(rng.paretovariate(1.2)) - 1, len(hot) - 1)
        trace.append(Query(METHOD, hot[rank]))
    rng.shuffle(trace)
    return trace[:length]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale for CI; all assertions still run",
    )
    args = parser.parse_args()

    shape = SMOKE_SHAPE if args.smoke else FULL_SHAPE
    trace_shape = SMOKE_TRACE if args.smoke else FULL_TRACE
    bundle = load_dataset(NETWORK, seed=SEED, **shape)
    pairs = generate_query_pairs(
        bundle,
        QuerySpec(count=trace_shape["unique"], degree_rank=0.8),
        seed=3,
    )
    trace = build_trace(pairs, trace_shape["unique"], trace_shape["length"])
    unique_queries = list({q.vertices: q for q in trace}.values())
    print(
        f"{NETWORK}-like network: |V|={bundle.graph.num_vertices()} "
        f"|E|={bundle.graph.num_edges()}; trace: {len(trace)} queries "
        f"({METHOD}), {REPLICAS} replicas, "
        f"replica {FAILING_REPLICA} killed mid-trace"
    )

    # Fault-free reference answers (the parity gate).
    reference_directory = GraphDirectory(config=CONFIG, sharded=False)
    reference_directory.add("hot", bundle)
    reference = {
        query.vertices: reference_directory.serve("hot", query)
        for query in unique_queries
    }

    # Replica 0 serves its share of the first half of the trace, then every
    # dispatch to it fails; the circuit must open and routing must heal.
    kill_after = max(1, len(trace) // (REPLICAS * 2))
    plan = FaultPlan(
        [
            FaultRule(
                "replica.search",
                kind="error",
                where={"replica": FAILING_REPLICA},
                after=kill_after,
                message="benchmark: replica killed",
            )
        ]
    )
    directory = GraphDirectory(config=CONFIG, sharded=False)
    directory.add(
        "hot",
        bundle,
        replicas=REPLICAS,
        health_policy=HealthPolicy(failure_threshold=3, ejection_seconds=3600.0),
        fault_plan=plan,
    )
    # Warm every replica's lazy freeze/index directly (bypassing the fault
    # hook, whose call-count schedule must belong to the measured trace).
    replica_set = directory.get("hot")
    for replica_id in range(REPLICAS):
        for query in unique_queries:
            replica_set.replica_engine(replica_id).search(query)

    outcomes: List[str] = []
    latencies: List[float] = []
    with Gateway(
        directory, port=0, max_in_flight=max(64, trace_shape["concurrency"])
    ) as gateway:
        client = GatewayClient(
            gateway.url,
            timeout_seconds=120.0,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_seconds=0.02),
        )

        def call(query: Query):
            start = time.perf_counter()
            try:
                response = client.search("hot", query)
                latencies.append(time.perf_counter() - start)
                expected = reference[query.vertices]
                assert response.status == expected.status, query
                assert response.vertices == expected.vertices, query
                return "served"
            except Exception:
                latencies.append(time.perf_counter() - start)
                return "failed"

        started = time.perf_counter()
        with ThreadPoolExecutor(
            max_workers=trace_shape["concurrency"]
        ) as pool:
            outcomes = list(pool.map(call, trace))
        wall_seconds = time.perf_counter() - started
        stats_payload = gateway.directory.stats_payload()
        health_payload = gateway.health_payload()

    served = outcomes.count("served")
    availability = served / len(outcomes)
    p99 = statistics.quantiles(latencies, n=100)[98]
    hot_stats = stats_payload["graphs"]["hot"]
    failing_health = hot_stats["replicas"][FAILING_REPLICA]["health"]

    print(
        f"  availability: {availability:.4f} ({served}/{len(outcomes)}), "
        f"p99 {p99 * 1000:.1f}ms, wall {wall_seconds:.2f}s"
    )
    print(
        f"  replica {FAILING_REPLICA}: state={failing_health['state']} "
        f"failures={failing_health['failures']} "
        f"ejections={failing_health['ejections']}; "
        f"set failovers={hot_stats['counters']['failovers']}"
    )

    assert availability > AVAILABILITY_FLOOR, (
        f"availability {availability:.4f} under the "
        f"{AVAILABILITY_FLOOR:.0%} floor"
    )
    assert p99 < P99_BOUND_SECONDS, f"p99 {p99:.3f}s exceeds the bound"
    assert failing_health["state"] == "ejected", (
        "the killed replica must end the trace ejected from routing"
    )
    assert hot_stats["counters"]["failovers"] > 0
    assert hot_stats["health"]["state"] == "degraded"
    assert health_payload["status"] == "degraded"

    write_results(
        {
            "benchmark": "fault_tolerance",
            "smoke": args.smoke,
            "network": NETWORK,
            "replicas": REPLICAS,
            "trace_length": len(trace),
            "concurrency": trace_shape["concurrency"],
            "kill_after_dispatches": kill_after,
            "availability": availability,
            "served": served,
            "failed": outcomes.count("failed"),
            "latency_p50_seconds": statistics.median(latencies),
            "latency_p99_seconds": p99,
            "wall_seconds": wall_seconds,
            "failing_replica_health": failing_health,
            "set_counters": hot_stats["counters"],
            "fault_plan": plan.snapshot(),
        },
        RESULTS_PATH,
    )
    print(f"  wrote {RESULTS_PATH.relative_to(REPO_ROOT)}")
    print("fault-tolerance benchmark: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
