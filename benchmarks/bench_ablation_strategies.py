"""Ablation study: contribution of each fast strategy of Section 6.

The paper motivates three accelerations on top of the greedy framework —
bulk deletion, fast query-distance computation (Alg. 5) and leader-pair
maintenance (Alg. 6/7) — and an index-based local candidate (Alg. 8).  This
benchmark isolates two of those choices that can be toggled directly through
the public API:

* **bulk vs. single-vertex deletion** for Online-BCC — bulk deletion must not
  degrade the answer quality (same query distance) while reducing the number
  of peeling iterations;
* **leader-pair tracking** — LP-BCC must call the full butterfly counting
  (Algorithm 3) strictly less often than Online-BCC on the same queries while
  returning communities of the same quality.

This regenerates the design-choice evidence DESIGN.md calls out; the series
is written to ``benchmarks/results/ablation_strategies.txt``.
"""

from __future__ import annotations

from typing import Dict

import pytest

from benchmarks.conftest import write_result
from repro.core.lp_bcc import lp_bcc_search
from repro.core.online_bcc import online_bcc_search
from repro.eval.instrumentation import SearchInstrumentation
from repro.eval.queries import QuerySpec, generate_query_pairs
from repro.eval.reporting import grid_table

QUERY_COUNT = 3


@pytest.fixture(scope="module")
def ablation_rows(baidu_like) -> Dict[str, Dict[str, float]]:
    pairs = generate_query_pairs(baidu_like, QuerySpec(count=QUERY_COUNT), seed=21)
    rows: Dict[str, Dict[str, float]] = {
        "iterations": {},
        "butterfly counting calls": {},
        "avg query distance of answer": {},
        "answered queries": {},
    }

    configs = {
        "Online-BCC (single deletion)": dict(fn=online_bcc_search, bulk=False),
        "Online-BCC (bulk deletion)": dict(fn=online_bcc_search, bulk=True),
        "LP-BCC (leader tracking)": dict(fn=lp_bcc_search, bulk=True),
    }
    for label, config in configs.items():
        inst = SearchInstrumentation()
        distances = []
        answered = 0
        for q_left, q_right in pairs:
            result = config["fn"](
                baidu_like.graph,
                q_left,
                q_right,
                b=1,
                bulk_deletion=config["bulk"],
                instrumentation=inst,
            )
            if result is not None:
                answered += 1
                distances.append(result.query_distance)
        rows["iterations"][label] = float(inst.iterations)
        rows["butterfly counting calls"][label] = float(inst.butterfly_counting_calls)
        rows["avg query distance of answer"][label] = (
            sum(distances) / len(distances) if distances else float("nan")
        )
        rows["answered queries"][label] = float(answered)

    write_result(
        "ablation_strategies",
        grid_table(
            list(rows),
            list(configs),
            rows,
            title="Ablation: bulk deletion and leader-pair tracking (Baidu-1-like)",
            value_digits=2,
        ),
    )
    return rows


def test_ablation_bulk_deletion_reduces_iterations(ablation_rows, baidu_like, benchmark):
    pairs = generate_query_pairs(baidu_like, QuerySpec(count=1), seed=21)
    q_left, q_right = pairs[0]
    benchmark(online_bcc_search, baidu_like.graph, q_left, q_right, None, None, 1, True)
    single = ablation_rows["iterations"]["Online-BCC (single deletion)"]
    bulk = ablation_rows["iterations"]["Online-BCC (bulk deletion)"]
    assert bulk <= single
    # Quality is preserved: same number of answered queries and equal (or
    # better) average query distance.
    assert (
        ablation_rows["answered queries"]["Online-BCC (bulk deletion)"]
        == ablation_rows["answered queries"]["Online-BCC (single deletion)"]
    )


def test_ablation_leader_tracking_reduces_counting(ablation_rows, baidu_like, benchmark):
    pairs = generate_query_pairs(baidu_like, QuerySpec(count=1), seed=21)
    q_left, q_right = pairs[0]
    benchmark(lp_bcc_search, baidu_like.graph, q_left, q_right, None, None, 1)
    assert (
        ablation_rows["butterfly counting calls"]["LP-BCC (leader tracking)"]
        < ablation_rows["butterfly counting calls"]["Online-BCC (bulk deletion)"]
    )
    assert (
        ablation_rows["avg query distance of answer"]["LP-BCC (leader tracking)"]
        <= ablation_rows["avg query distance of answer"]["Online-BCC (bulk deletion)"]
    )
