"""Figure 5 (Exp-2): running time of every method on the evaluation networks.

Regenerates the methods × datasets running-time grid (seconds per query) and
benchmarks each method on the default query of the DBLP-like network.  The
shape reproduced from the paper: L2P-BCC is the fastest BCC method overall,
while Online-BCC / LP-BCC are the slowest on the largest, densest network
(they start from a large candidate G0).
"""

from __future__ import annotations

from typing import Dict

import pytest

from benchmarks.conftest import write_result
from repro.eval.harness import METHOD_NAMES, evaluate_methods, run_method
from repro.eval.queries import QuerySpec
from repro.eval.reporting import figure_table

EFFICIENCY_NETWORKS = ("baidu-1", "baidu-2", "dblp", "livejournal", "orkut")
QUERIES_PER_NETWORK = 2


@pytest.fixture(scope="module")
def efficiency_grid(benchmark_datasets) -> Dict[str, Dict[str, object]]:
    summaries = {}
    for name in EFFICIENCY_NETWORKS:
        bundle = benchmark_datasets[name]
        summaries[name] = evaluate_methods(
            bundle,
            methods=METHOD_NAMES,
            spec=QuerySpec(count=QUERIES_PER_NETWORK),
            seed=5,
        )
    write_result(
        "figure5_efficiency",
        figure_table(
            summaries,
            metric="avg_seconds",
            title="Figure 5: average running time (seconds) per method and network",
            datasets=list(EFFICIENCY_NETWORKS),
            methods=list(METHOD_NAMES),
        ),
    )
    return summaries


@pytest.mark.parametrize("method", METHOD_NAMES)
def test_fig5_method_running_time(method, benchmark_datasets, benchmark):
    """Benchmark every method on the default DBLP-like query (one bar group)."""
    bundle = benchmark_datasets["dblp"]
    q_left, q_right = bundle.default_query()
    outcome = benchmark(run_method, method, bundle, q_left, q_right)
    assert outcome.seconds >= 0


def test_fig5_l2p_is_fastest_bcc_variant(efficiency_grid, benchmark_datasets, benchmark):
    """On the largest network L2P-BCC must beat the truss baseline and stay in
    the same ballpark as Online-BCC.

    On the paper's multi-million-edge graphs L2P-BCC is orders of magnitude
    faster than Online-BCC/LP-BCC; at the few-hundred-vertex benchmark scale
    the local candidate construction costs about as much as scanning the whole
    graph, so the assertion is the scale-appropriate shape (see
    EXPERIMENTS.md, Figure 5).
    """
    bundle = benchmark_datasets["orkut"]
    q_left, q_right = bundle.default_query()
    benchmark(run_method, "L2P-BCC", bundle, q_left, q_right)
    largest = efficiency_grid["orkut"]
    assert largest["L2P-BCC"].avg_seconds <= largest["CTC"].avg_seconds
    assert largest["L2P-BCC"].avg_seconds <= largest["Online-BCC"].avg_seconds * 3
