"""Case studies (Exp-6 ... Exp-8, Exp-11): Figures 11, 12, 13 and 15.

For each case-study network the benchmark runs the paper's query with
LP-BCC (b = 3 for flight/trade/academic, as in Section 8.2) and the CTC
baseline, prints both communities side by side, and asserts the qualitative
differences the paper highlights (e.g. CTC missing the German cities /
Asian trade partners / the evil-camp leader).
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from benchmarks.conftest import write_result
from repro.baselines.ctc import ctc_search
from repro.core.lp_bcc import lp_bcc_search
from repro.core.multilabel import mbcc_search
from repro.eval.metrics import describe_community


def _membership_lines(title: str, graph, vertices) -> List[str]:
    lines = [title]
    by_label: Dict[object, List[str]] = {}
    for v in sorted(vertices, key=str):
        by_label.setdefault(graph.label(v), []).append(str(v))
    for label, members in sorted(by_label.items(), key=lambda kv: str(kv[0])):
        lines.append(f"  [{label}] ({len(members)}): {', '.join(members)}")
    return lines


@pytest.fixture(scope="module")
def case_study_results(case_study_datasets):
    results = {}

    flight = case_study_datasets["flight"]
    results["flight"] = {
        "bcc": lp_bcc_search(flight.graph, "Toronto", "Frankfurt", b=3),
        "ctc": ctc_search(flight.graph, ["Toronto", "Frankfurt"]),
        "bundle": flight,
    }

    trade = case_study_datasets["trade"]
    results["trade"] = {
        "bcc": lp_bcc_search(trade.graph, "United States", "China", b=3),
        "ctc": ctc_search(trade.graph, ["United States", "China"]),
        "bundle": trade,
    }

    fiction = case_study_datasets["fiction"]
    results["fiction"] = {
        "bcc": lp_bcc_search(fiction.graph, "Ron Weasley", "Draco Malfoy", b=1),
        "ctc": ctc_search(fiction.graph, ["Ron Weasley", "Draco Malfoy"]),
        "bundle": fiction,
    }

    academic = case_study_datasets["academic"]
    results["academic"] = {
        "bcc": lp_bcc_search(
            academic.graph, "Tim Kraska", "Michael I. Jordan", b=3, k1=3, k2=3
        ),
        "mbcc": mbcc_search(
            academic.graph,
            ["Michael J. Franklin", "Michael I. Jordan", "Ion Stoica"],
            core_parameters=[3, 3, 3],
            b=3,
        ),
        "bundle": academic,
    }

    lines: List[str] = []
    figure_names = {
        "flight": "Figure 11 (flight network, Q = {Toronto, Frankfurt})",
        "trade": "Figure 12 (trade network, Q = {United States, China})",
        "fiction": "Figure 13 (fiction network, Q = {Ron Weasley, Draco Malfoy})",
        "academic": "Figure 15 (academic network, 2- and 3-labeled queries)",
    }
    for name, payload in results.items():
        bundle = payload["bundle"]
        lines.append(figure_names[name])
        bcc = payload["bcc"]
        if bcc is not None:
            lines.extend(_membership_lines("  BCC community:", bundle.graph, bcc.vertices))
            report = describe_community(bcc.community)
            lines.append(
                f"  BCC structure: |V|={report.num_vertices}, diameter={report.diameter}, "
                f"butterflies={report.total_butterflies}, min intra-degrees={report.min_intra_degree}"
            )
        if payload.get("ctc") is not None:
            lines.extend(
                _membership_lines("  CTC community:", bundle.graph, payload["ctc"].vertices)
            )
        if payload.get("mbcc") is not None:
            lines.extend(
                _membership_lines(
                    "  3-labeled mBCC community:", bundle.graph, payload["mbcc"].vertices
                )
            )
        lines.append("")
    write_result("case_studies_figures_11_12_13_15", "\n".join(lines))
    return results


def test_fig11_flight_case_study(case_study_results, case_study_datasets, benchmark):
    flight = case_study_datasets["flight"]
    benchmark(lp_bcc_search, flight.graph, "Toronto", "Frankfurt", None, None, 3)
    payload = case_study_results["flight"]
    bcc, ctc = payload["bcc"], payload["ctc"]
    assert bcc is not None
    for hub in ("Toronto", "Vancouver", "Frankfurt", "Munich"):
        assert hub in bcc.vertices
    graph = flight.graph
    german_in_bcc = sum(1 for v in bcc.vertices if graph.label(v) == "Germany")
    german_in_ctc = sum(1 for v in ctc.vertices if graph.label(v) == "Germany")
    assert german_in_bcc > german_in_ctc  # CTC "fails to find the international airline community"


def test_fig12_trade_case_study(case_study_results, case_study_datasets, benchmark):
    trade = case_study_datasets["trade"]
    benchmark(lp_bcc_search, trade.graph, "United States", "China", None, None, 3)
    payload = case_study_results["trade"]
    bcc, ctc = payload["bcc"], payload["ctc"]
    assert bcc is not None
    graph = trade.graph
    asia_in_bcc = sum(1 for v in bcc.vertices if graph.label(v) == "Asia")
    asia_in_ctc = sum(1 for v in ctc.vertices if graph.label(v) == "Asia")
    assert asia_in_bcc > asia_in_ctc  # CTC "fails to find the other major trade partners in Asia"
    assert {"Japan", "Korea"} & bcc.vertices


def test_fig13_fiction_case_study(case_study_results, case_study_datasets, benchmark):
    fiction = case_study_datasets["fiction"]
    benchmark(lp_bcc_search, fiction.graph, "Ron Weasley", "Draco Malfoy", None, None, 1)
    payload = case_study_results["fiction"]
    bcc, ctc = payload["bcc"], payload["ctc"]
    assert bcc is not None
    assert "Lord Voldemort" in bcc.vertices  # CTC misses the evil camp's leader
    weasleys_in_bcc = sum(1 for v in bcc.vertices if "Weasley" in str(v))
    weasleys_in_ctc = sum(1 for v in ctc.vertices if "Weasley" in str(v))
    assert weasleys_in_bcc > weasleys_in_ctc  # CTC misses Ron's family


def test_fig15_academic_case_study(case_study_results, case_study_datasets, benchmark):
    academic = case_study_datasets["academic"]
    benchmark(
        lp_bcc_search, academic.graph, "Tim Kraska", "Michael I. Jordan", 3, 3, 3
    )
    payload = case_study_results["academic"]
    bcc, mbcc = payload["bcc"], payload["mbcc"]
    assert bcc is not None
    labels = {academic.graph.label(v) for v in bcc.vertices}
    assert labels == {"Database", "Machine Learning"}
    assert mbcc is not None
    spanned = {academic.graph.label(v) for v in mbcc.vertices}
    assert spanned == {"Database", "Machine Learning", "Systems and Networking"}
    assert len(mbcc.interaction_edges) >= 2
