#!/usr/bin/env python
"""Cold start: rebuild-from-scratch vs attach-from-snapshot time-to-ready.

The persistent store (`repro.store`) promises that restarting a serving
process costs an mmap attach, not a CSR freeze + coreness pass + BCindex
build.  This benchmark measures both paths on the orkut-like network and
enforces the contract:

* **time-to-ready** — median over trials of (engine constructed → index
  ready to answer).  The rebuild path freezes the graph, runs core
  decomposition and builds butterfly-degree tables; the attach path opens
  the snapshot (which re-validates every checksum), maps the arrays and
  replays the stored tables;
* **speedup floor** — attach must be at least **10x** faster than rebuild
  (asserted in full runs; reported but not asserted under ``--smoke``,
  where the graph is too small for stable ratios);
* **parity gate** — the attached engine must answer a query set
  identically to the rebuilt engine, with zero CSR freezes.

Results land in ``benchmarks/results/BENCH_store.json``.  Usage::

    PYTHONPATH=src python benchmarks/bench_cold_start.py          # full
    PYTHONPATH=src python benchmarks/bench_cold_start.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from reporting import write_results  # noqa: E402

from repro.api import BCCEngine, Query  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.eval.queries import QuerySpec, generate_query_pairs  # noqa: E402
from repro.store import Snapshot, attach_engine, persist_engine  # noqa: E402

RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_store.json"

NETWORK = "orkut"
SEED = 2021
METHOD = "l2p-bcc"
SPEEDUP_FLOOR = 10.0

FULL_SHAPE = {"communities": 8, "community_size": 96, "trials": 5, "queries": 8}
SMOKE_SHAPE = {"communities": 2, "community_size": 14, "trials": 3, "queries": 4}


def fresh_graph(shape):
    bundle = load_dataset(
        NETWORK,
        seed=SEED,
        communities=shape["communities"],
        community_size=shape["community_size"],
    )
    return bundle


def time_rebuild(shape) -> float:
    """Seconds from cold graph to ready index, building everything."""
    bundle = fresh_graph(shape)  # regeneration deliberately outside the clock
    started = time.perf_counter()
    engine = BCCEngine(bundle.graph).prepare()
    engine.ensure_index()
    return time.perf_counter() - started


def time_attach(shape, path: Path) -> float:
    """Seconds from cold graph to ready index, attaching the snapshot."""
    bundle = fresh_graph(shape)
    started = time.perf_counter()
    engine = attach_engine(bundle.graph, Snapshot(path))
    engine.ensure_index()
    return time.perf_counter() - started


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale for CI; the 10x floor is reported, not asserted",
    )
    parser.add_argument(
        "--results",
        default=str(RESULTS_PATH),
        help="where to write the JSON results",
    )
    args = parser.parse_args()
    shape = SMOKE_SHAPE if args.smoke else FULL_SHAPE

    bundle = fresh_graph(shape)
    pairs = generate_query_pairs(
        bundle, QuerySpec(count=shape["queries"], degree_rank=0.8), seed=3
    )
    queries = [Query(METHOD, tuple(pair)) for pair in pairs]
    print(
        f"{NETWORK}-like network: |V|={bundle.graph.num_vertices()} "
        f"|E|={bundle.graph.num_edges()}; {shape['trials']} trials, "
        f"{len(queries)} parity queries ({METHOD})"
    )

    # Write the snapshot once from a fully-built engine (the "warm process
    # before the restart"), and record how long persisting costs.
    snapshot_path = RESULTS_PATH.parent / f"{NETWORK}-cold-start.bccsnap"
    snapshot_path.parent.mkdir(parents=True, exist_ok=True)
    reference = BCCEngine(bundle.graph).prepare()
    reference.ensure_index()
    started = time.perf_counter()
    info = persist_engine(reference, snapshot_path)
    persist_seconds = time.perf_counter() - started
    print(
        f"  snapshot: {info['bytes']} bytes, {info['segments']} segments, "
        f"persisted in {persist_seconds * 1000:.1f}ms"
    )

    rebuild_times: List[float] = []
    attach_times: List[float] = []
    for _ in range(shape["trials"]):
        rebuild_times.append(time_rebuild(shape))
        attach_times.append(time_attach(shape, snapshot_path))
    rebuild_median = statistics.median(rebuild_times)
    attach_median = statistics.median(attach_times)
    speedup = rebuild_median / attach_median if attach_median > 0 else float("inf")
    print(
        f"  time-to-ready: rebuild {rebuild_median * 1000:.2f}ms, "
        f"attach {attach_median * 1000:.2f}ms, speedup {speedup:.1f}x"
    )

    # Parity gate: the attached engine answers exactly like the rebuilt one,
    # without ever freezing the graph itself.
    attached_bundle = fresh_graph(shape)
    attached = attach_engine(attached_bundle.graph, Snapshot(snapshot_path))
    mismatches = 0
    for query in queries:
        expected = reference.search(query)
        actual = attached.search(query)
        same = (
            actual.status == expected.status
            and sorted(map(str, actual.community or ()))
            == sorted(map(str, expected.community or ()))
        )
        mismatches += 0 if same else 1
    counters = attached.counters_snapshot()
    print(
        f"  parity: {len(queries) - mismatches}/{len(queries)} identical, "
        f"csr_freezes={counters['csr_freezes']}"
    )

    assert mismatches == 0, f"{mismatches} parity mismatches rebuild vs attach"
    assert counters["csr_freezes"] == 0, "attach path must never freeze"
    if not args.smoke:
        assert speedup >= SPEEDUP_FLOOR, (
            f"attach speedup {speedup:.1f}x is under the "
            f"{SPEEDUP_FLOOR:.0f}x floor"
        )

    results_path = Path(args.results)
    write_results(
        {
            "benchmark": "cold_start",
            "smoke": args.smoke,
            "network": NETWORK,
            "vertices": bundle.graph.num_vertices(),
            "edges": bundle.graph.num_edges(),
            "trials": shape["trials"],
            "snapshot_bytes": info["bytes"],
            "persist_seconds": persist_seconds,
            "rebuild_seconds_median": rebuild_median,
            "attach_seconds_median": attach_median,
            "rebuild_seconds": rebuild_times,
            "attach_seconds": attach_times,
            "speedup": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
            "floor_asserted": not args.smoke,
            "parity_queries": len(queries),
            "parity_mismatches": mismatches,
        },
        results_path,
    )
    snapshot_path.unlink(missing_ok=True)
    print(f"  wrote {results_path}")
    print("cold-start benchmark: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
