"""Process-backend batch throughput vs the single-process threaded path.

Scatter-gathers a compute-bound search trace over a 4-worker
:class:`~repro.parallel.ProcessWorkerPool` (shared-memory CSR, zero-copy)
and times it against the same batch on the threaded in-process path.
**Parity gates the timing**: every process-backend row must equal its
threaded row value-for-value (the wire payload minus timings) before a
single stopwatch starts — a fast wrong answer is a failure, not a result.

Results are written to ``benchmarks/results/BENCH_process.json`` and
mirrored to the repo-root ``BENCH_process.json``.  Usage::

    PYTHONPATH=src python benchmarks/bench_process_backend.py          # full
    PYTHONPATH=src python benchmarks/bench_process_backend.py --smoke  # CI

The acceptance floor is a >= 1.5x speed-up over the threaded batch with 4
workers.  Worker processes dodge the GIL, so the floor is an honest
multi-core expectation — and **dishonest on a single-core host**, where
four workers time-slice one CPU and parallelism cannot exceed 1x no
matter the implementation.  When the effective core count is 1 the
benchmark still runs the parity gate and records the measured speed-up,
but reports ``"floor_met": null`` with an explanatory note and exits 0:
the floor is *unevaluable* there, not failed.  ``--smoke`` (CI) asserts
parity at a reduced scale and never enforces the floor.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from reporting import write_results  # noqa: E402

from repro.api import BCCEngine, Query, SearchConfig  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.server.protocol import encode_response  # noqa: E402

RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_process.json"

NETWORK = "dblp"
SEED = 2021
WORKERS = 4
FLOOR = 1.5
FULL_SCALE = {"communities": 12, "community_size": 32}
SMOKE_SCALE = {"communities": 6, "community_size": 12}
#: Methods driven by the trace, heaviest first — all pure-Python compute.
TRACE_METHODS = ("online-bcc", "lp-bcc", "l2p-bcc", "ctc", "psa")
TRACE_CONFIG = SearchConfig(b=1, max_iterations=60)


def effective_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux fallback
        affinity = os.cpu_count() or 1
    return max(1, min(affinity, os.cpu_count() or 1))


def build_trace(graph, pairs_per_method: int) -> List[Query]:
    """Distinct cross-label pair queries: compute-bound, cache-proof.

    Every query is unique, so the threaded baseline cannot serve repeats
    from the LRU result cache — both sides pay the full kernel cost and
    the comparison isolates the *transport*.
    """
    pairs = []
    for u, v in graph.cross_edges():
        pairs.append((u, v))
        if len(pairs) >= pairs_per_method * len(TRACE_METHODS):
            break
    queries = []
    for index, pair in enumerate(pairs):
        method = TRACE_METHODS[index % len(TRACE_METHODS)]
        queries.append(Query(method, pair, config=TRACE_CONFIG))
    return queries


def canonical(response) -> Dict[str, object]:
    payload = encode_response(response)
    payload.pop("timings")
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced scale, parity-only, no floor enforcement (for CI)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repetitions (best-of)"
    )
    args = parser.parse_args(argv)

    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    repeats = args.repeats or (1 if args.smoke else 3)
    pairs_per_method = 4 if args.smoke else 12

    bundle = load_dataset(NETWORK, seed=SEED, **scale)
    graph = bundle.graph
    engine = BCCEngine(graph)
    queries = build_trace(graph, pairs_per_method)
    if not queries:
        print("FAIL: the trace is empty (no cross edges)")
        return 1
    print(
        f"[{NETWORK}] |V|={graph.num_vertices()} |E|={graph.num_edges()} "
        f"trace={len(queries)} queries, {WORKERS} workers"
    )

    # ------------------------------------------------------------------
    # Parity gate: process rows == threaded rows, value for value.  The
    # result cache is disabled on both sides so each row pays its kernel.
    # ------------------------------------------------------------------
    threaded_rows = engine.search_many(
        queries, on_error="return", backend="csr", use_cache=False
    )
    process_rows = engine.search_many(
        queries,
        on_error="return",
        backend="process",
        max_workers=WORKERS,
        use_cache=False,
    )
    process_served = engine.counters_snapshot()["process_batches"] >= 1
    mismatches = sum(
        1
        for got, want in zip(process_rows, threaded_rows)
        if canonical(got) != canonical(want)
    )
    if not process_served:
        print("FAIL: the process backend fell back to the threaded path")
        engine.close_process_pool()
        return 1
    if mismatches:
        print(f"FAIL: {mismatches}/{len(queries)} parity mismatches")
        engine.close_process_pool()
        return 1
    print(f"parity gate: {len(queries)}/{len(queries)} rows identical")

    # ------------------------------------------------------------------
    # Timings: threaded batch (GIL-bound baseline) vs 4 process workers.
    # ------------------------------------------------------------------
    def run_threaded() -> None:
        engine.search_many(
            queries,
            on_error="return",
            backend="csr",
            max_workers=WORKERS,
            use_cache=False,
        )

    def run_process() -> None:
        engine.search_many(
            queries,
            on_error="return",
            backend="process",
            max_workers=WORKERS,
            use_cache=False,
        )

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    threaded_s = best_of(run_threaded)
    process_s = best_of(run_process)  # pool is already warm (parity gate)
    speedup = round(threaded_s / process_s, 3) if process_s else 0.0
    pool_stats = engine.process_pool_stats()
    engine.close_process_pool()

    cores = effective_cores()
    single_core = cores <= 1
    if args.smoke:
        floor_met: Optional[bool] = None
        note = "smoke mode: parity asserted, floor not enforced (CI noise)"
    elif single_core:
        floor_met = None
        note = (
            f"single-core host ({cores} effective CPU): {WORKERS} workers "
            "time-slice one core, so a parallel speed-up floor is "
            "physically unevaluable here; the parity gate and crash "
            "semantics are still fully asserted, and the measured "
            "speed-up reflects transport overhead, not the backend's "
            "multi-core behavior"
        )
    else:
        floor_met = speedup >= FLOOR
        note = "floor evaluated on a multi-core host"

    payload = {
        "benchmark": "process_backend",
        "mode": "smoke" if args.smoke else "full",
        "network": NETWORK,
        "seed": SEED,
        "vertices": graph.num_vertices(),
        "edges": graph.num_edges(),
        "trace_queries": len(queries),
        "workers": WORKERS,
        "effective_cores": cores,
        "repeats": repeats,
        "parity_rows": len(queries),
        "parity_mismatches": mismatches,
        "threaded_batch_seconds": threaded_s,
        "process_batch_seconds": process_s,
        "speedup_vs_threaded_batch": speedup,
        "speedup_floor": FLOOR,
        "floor_met": floor_met,
        "note": note,
        "pool": {
            "size": pool_stats["size"] if pool_stats else None,
            "counters": pool_stats["counters"] if pool_stats else None,
        },
    }
    written = write_results(payload, RESULTS_PATH)
    print(
        f"threaded {threaded_s * 1000:.1f}ms | process {process_s * 1000:.1f}ms "
        f"| speedup {speedup:.2f}x (floor {FLOOR}x, cores={cores})"
    )
    for path in written:
        print(f"  wrote {path.relative_to(REPO_ROOT)}")
    if floor_met is None:
        print(f"floor: not evaluated — {note.splitlines()[0]}")
    elif floor_met:
        print("floor: MET")
    else:
        print(f"FAIL: speedup {speedup:.2f}x below the {FLOOR}x floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
