#!/usr/bin/env python
"""Loopback HTTP serving: gateway throughput, replicas, and the 429 path.

The gateway (`repro.server.Gateway`) turns the in-process serving tier into
a network service; this benchmark measures what that boundary costs and
what replication buys on a repeat-heavy trace against an orkut-like
network, all over real loopback HTTP:

* **parity gate** — before any number is reported, responses decoded from
  the wire must equal in-process ``GraphDirectory.serve_many`` answers
  position-for-position (communities, reasons, exact ``math.inf``
  distances);
* **throughput, 1 vs N replicas** — concurrent clients hammer
  ``POST /graphs/hot/search``; the replicated directory serves the same
  trace through N engines behind least-loaded routing.  Under CPython's
  GIL the kernels themselves cannot parallelize, so the honest expectation
  is parity-or-better (floor 1.0x): replicas buy reduced lock contention
  and independent result caches, not extra cores;
* **backpressure** — a gateway capped at fewer in-flight slots than the
  offered concurrency must answer ``429`` + ``Retry-After`` for the
  overflow (and still serve every admitted request correctly), proving
  bounded admission engages instead of queueing unboundedly.

Results land in ``benchmarks/results/BENCH_http.json``.  Usage::

    PYTHONPATH=src python benchmarks/bench_http_serving.py          # full
    PYTHONPATH=src python benchmarks/bench_http_serving.py --smoke  # CI

``--smoke`` shrinks the network and skips the throughput floor (CI runners
are too noisy for timing assertions); parity and the 429 path are always
asserted.
"""

from __future__ import annotations

import argparse
import json
import math
import random
import statistics
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from reporting import write_results  # noqa: E402

from repro.api import Query, SearchConfig  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.eval.queries import QuerySpec, generate_query_pairs  # noqa: E402
from repro.server import (  # noqa: E402
    Gateway,
    GatewayClient,
    GatewayOverloadedError,
)
from repro.serving import GraphDirectory  # noqa: E402

RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_http.json"

NETWORK = "orkut"
SEED = 2021
METHOD = "lp-bcc"
CONFIG = SearchConfig(b=1, max_iterations=200)
REPLICAS = 4

FULL_SHAPE = {"communities": 4, "community_size": 48}
SMOKE_SHAPE = {"communities": 2, "community_size": 14}
FULL_TRACE = {"unique": 6, "length": 640, "concurrency": 8}
SMOKE_TRACE = {"unique": 2, "length": 16, "concurrency": 4}

#: Replicated throughput floor.  Under CPython's GIL an all-hit trace is
#: HTTP-handling-bound and identical for both modes (ReplicaSet routing
#: adds ~5µs against ~450µs/request), so the truthful expectation is
#: parity; the margin absorbs loopback timing noise (repeat-to-repeat
#: spread is ±4% even for the *same* mode; measured paired ratios sit at
#: 0.96-1.00), and the measured ratio is recorded raw next to it.
FLOOR_REPLICAS = 1.0
NOISE_MARGIN = 0.05

BACKPRESSURE = {"max_in_flight": 2, "offered": 8, "requests": 24}


def build_trace(pairs, unique: int, length: int) -> List[Query]:
    """A repeat-heavy (Zipf-ish) single-graph trace over ``unique`` pairs."""
    rng = random.Random(7)
    hot = [tuple(pair) for pair in pairs[:unique]]
    trace = [Query(METHOD, pair) for pair in hot]
    while len(trace) < length:
        rank = min(int(rng.paretovariate(1.2)) - 1, len(hot) - 1)
        trace.append(Query(METHOD, hot[rank]))
    rng.shuffle(trace)
    return trace[:length]


def assert_parity(local_rows, remote_rows) -> None:
    """Wire-decoded answers must equal in-process answers, field for field."""
    assert len(local_rows) == len(remote_rows)
    for position, (local, remote) in enumerate(zip(local_rows, remote_rows)):
        context = (position, local.method, local.query)
        assert remote.status == local.status, context
        assert remote.reason == local.reason, context
        assert remote.vertices == local.vertices, context
        assert remote.iterations == local.iterations, context
        if math.isinf(local.query_distance):
            assert remote.query_distance == math.inf, context
        else:
            assert remote.query_distance == local.query_distance, context


def drive_gateway(
    gateway: Gateway, trace: List[Query], concurrency: int
) -> float:
    """Hammer ``POST /graphs/hot/search`` from N client threads; seconds."""
    client = GatewayClient(gateway.url, timeout_seconds=120.0)

    def call(query: Query):
        return client.search("hot", query)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        responses = list(pool.map(call, trace))
    elapsed = time.perf_counter() - start
    assert all(response.status == "ok" for response in responses)
    return elapsed


def measure_modes(
    bundle, trace: List[Query], concurrency: int, repeats: int
) -> Dict[str, float]:
    """Serve the trace with 1 vs N replicas; median-of-``repeats`` seconds.

    Both gateways stay up for the whole measurement and the drives
    alternate single/replicated, so OS-level drift (socket warm-up, page
    cache, CPU frequency) cancels instead of biasing whichever mode ran
    last; the median is the stable estimator for a throughput *ratio*
    (best-of races the two modes' luckiest outliers against each other).
    """
    gateways: Dict[str, Gateway] = {}
    samples: Dict[str, List[float]] = {}
    try:
        for mode, replicas in (("single", 1), ("replicated", REPLICAS)):
            directory = GraphDirectory(config=CONFIG, sharded=False)
            directory.add("hot", bundle, replicas=replicas)
            gateway = Gateway(
                directory, port=0, max_in_flight=max(64, concurrency)
            ).start()
            gateways[mode] = gateway
            # Warm every unique pair on every replica: the measurement is
            # steady-state serving, not one-off freeze/index builds.
            warm_client = GatewayClient(gateway.url, timeout_seconds=120.0)
            for query in {q.vertices: q for q in trace}.values():
                for _ in range(replicas):
                    warm_client.search("hot", query)
        for _ in range(repeats):
            for mode, gateway in gateways.items():
                elapsed = drive_gateway(gateway, trace, concurrency)
                samples.setdefault(mode, []).append(elapsed)
    finally:
        for gateway in gateways.values():
            gateway.stop()
    return samples


def paired_speedup(samples: Dict[str, List[float]]) -> float:
    """Median of per-repeat single/replicated ratios.

    The two modes' drives alternate within each repeat, so pairing them
    cancels the drift both share (CPU frequency ramp-up, background load)
    — the ratio distribution is several times tighter than either mode's
    raw throughput distribution.
    """
    ratios = [
        single / replicated
        for single, replicated in zip(samples["single"], samples["replicated"])
    ]
    return statistics.median(ratios)


def demonstrate_backpressure(bundle, trace: List[Query]) -> Dict[str, object]:
    """Offered concurrency above the in-flight cap must produce 429s.

    The result cache is disabled so every admitted request performs a real
    search (holding its slot long enough for the overflow to be refused) —
    with caching on, requests drain too fast to saturate two slots.
    """
    directory = GraphDirectory(config=CONFIG, sharded=False)
    directory.add("hot", bundle, result_cache_size=0)
    shape = BACKPRESSURE
    with Gateway(
        directory, port=0, max_in_flight=shape["max_in_flight"]
    ) as gateway:
        client = GatewayClient(gateway.url, timeout_seconds=120.0)
        client.search("hot", trace[0])  # pay freeze/index before the storm
        served = 0
        rejected = 0
        retry_after = None

        def call(query: Query) -> str:
            nonlocal retry_after
            try:
                response = client.search("hot", query, use_cache=False)
                assert response.status == "ok"
                return "served"
            except GatewayOverloadedError as refusal:
                retry_after = refusal.retry_after_seconds
                return "rejected"

        requests = [trace[i % len(trace)] for i in range(shape["requests"])]
        with ThreadPoolExecutor(max_workers=shape["offered"]) as pool:
            outcomes = list(pool.map(call, requests))
        served = outcomes.count("served")
        rejected = outcomes.count("rejected")
        counters = gateway.counters_snapshot()
    assert rejected > 0, (
        "offered concurrency above the in-flight cap must trip 429s"
    )
    assert served > 0, "admitted requests must still be served correctly"
    assert counters["rejections"] == rejected
    return {
        "max_in_flight": shape["max_in_flight"],
        "offered_concurrency": shape["offered"],
        "requests": shape["requests"],
        "served": served,
        "rejected_429": rejected,
        "retry_after_seconds": retry_after,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale, parity + 429 only — no throughput floor (CI)",
    )
    args = parser.parse_args()

    shape = SMOKE_SHAPE if args.smoke else FULL_SHAPE
    trace_shape = SMOKE_TRACE if args.smoke else FULL_TRACE
    bundle = load_dataset(NETWORK, seed=SEED, **shape)
    pairs = generate_query_pairs(
        bundle,
        QuerySpec(count=trace_shape["unique"], degree_rank=0.8),
        seed=3,
    )
    trace = build_trace(pairs, trace_shape["unique"], trace_shape["length"])
    print(
        f"{NETWORK}-like network: |V|={bundle.graph.num_vertices()} "
        f"|E|={bundle.graph.num_edges()}; trace: {len(trace)} queries "
        f"({METHOD}), client concurrency {trace_shape['concurrency']}"
    )

    # ------------------------------------------------------------------
    # Parity gate: the wire changes nothing about the answers.
    # ------------------------------------------------------------------
    parity_directory = GraphDirectory(config=CONFIG, sharded=False)
    parity_directory.add("hot", bundle)
    parity_batch = trace[: min(24, len(trace))] + [
        Query(METHOD, (trace[0].vertices[0], "no-such-vertex"))
    ]
    local_rows = parity_directory.serve_many(
        "hot", parity_batch, on_error="return"
    )
    with Gateway(parity_directory, port=0) as gateway:
        remote_rows = GatewayClient(
            gateway.url, timeout_seconds=120.0
        ).search_many("hot", parity_batch, on_error="return")
    assert_parity(local_rows, remote_rows)
    print(f"  parity: {len(parity_batch)} wire rows equal in-process rows "
          f"(error row included)")

    # ------------------------------------------------------------------
    # Throughput: 1 replica vs N replicas over loopback HTTP.
    # ------------------------------------------------------------------
    samples = measure_modes(
        bundle,
        trace,
        concurrency=trace_shape["concurrency"],
        repeats=1 if args.smoke else 9,
    )
    single_seconds = statistics.median(samples["single"])
    replicated_seconds = statistics.median(samples["replicated"])
    throughput = {
        "single": len(trace) / single_seconds,
        "replicated": len(trace) / replicated_seconds,
    }
    speedup = paired_speedup(samples)
    print(
        f"  throughput: 1 replica {throughput['single']:7.1f} q/s, "
        f"{REPLICAS} replicas {throughput['replicated']:7.1f} q/s "
        f"({speedup:.2f}x)"
    )

    # ------------------------------------------------------------------
    # Backpressure: the 429 path engages under an undersized cap.
    # ------------------------------------------------------------------
    backpressure = demonstrate_backpressure(bundle, trace)
    print(
        f"  backpressure: cap {backpressure['max_in_flight']}, offered "
        f"{backpressure['offered_concurrency']} -> "
        f"{backpressure['rejected_429']}/{backpressure['requests']} requests "
        f"answered 429 (Retry-After {backpressure['retry_after_seconds']}s), "
        f"{backpressure['served']} served"
    )

    floors_met = speedup >= FLOOR_REPLICAS - NOISE_MARGIN
    payload = {
        "benchmark": "http_serving",
        "network": NETWORK,
        "shape": shape,
        "num_vertices": bundle.graph.num_vertices(),
        "num_edges": bundle.graph.num_edges(),
        "method": METHOD,
        "trace": dict(trace_shape, length=len(trace)),
        "replicas": REPLICAS,
        "smoke": args.smoke,
        "parity": "wire rows equal in-process rows position-for-position",
        "throughput_queries_per_second": {
            mode: round(value, 1) for mode, value in throughput.items()
        },
        "seconds": {
            "single": single_seconds,
            "replicated": replicated_seconds,
        },
        "speedup_replicas": round(speedup, 3),
        "floor_replicas": FLOOR_REPLICAS,
        "noise_margin": NOISE_MARGIN,
        "floors_met": None if args.smoke else floors_met,
        "backpressure": backpressure,
        "note": (
            "loopback HTTP/1.1 keep-alive through ThreadingHTTPServer "
            "(TCP_NODELAY on both sides; without it delayed-ACK stalls cap "
            "loopback at ~25 q/s/conn); speedup is the median of per-repeat "
            "paired single/replicated ratios, which cancels shared drift; "
            "pure-Python kernels under the GIL mean replication buys "
            "reduced lock contention and independent result caches "
            "(parity expected, ~2% routing overhead measured), not "
            "core-parallel compute; the 429 path proves bounded admission "
            "engages when offered concurrency exceeds the in-flight cap"
        ),
    }
    write_results(payload, RESULTS_PATH)
    print(f"[written to {RESULTS_PATH}]")

    if not args.smoke and not floors_met:
        print(
            f"FAIL: replicated speedup {speedup:.3f}x below the "
            f"{FLOOR_REPLICAS}x floor (noise margin {NOISE_MARGIN})"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
