"""Figure 7 (Exp-3): query time of the BCC variants vs. query inter-distance l.

Sweeps the hop distance between the two query vertices (l = 1..4) on the
Baidu-1-like and DBLP-like networks.
"""

from __future__ import annotations

import time
from typing import Dict

import pytest

from benchmarks.conftest import write_result
from repro.core.bc_index import BCIndex
from repro.eval.harness import BCC_METHOD_NAMES, run_method
from repro.eval.queries import QuerySpec, generate_query_pairs
from repro.eval.reporting import sweep_table

INTER_DISTANCES = (1, 2, 3, 4)
QUERIES_PER_POINT = 2


def sweep_inter_distance(bundle) -> Dict[str, Dict[int, float]]:
    index = BCIndex(bundle.graph)  # the offline BCindex is shared across queries
    series: Dict[str, Dict[int, float]] = {m: {} for m in BCC_METHOD_NAMES}
    for distance in INTER_DISTANCES:
        pairs = generate_query_pairs(
            bundle,
            QuerySpec(count=QUERIES_PER_POINT, inter_distance=distance),
            seed=7,
        )
        if not pairs:
            continue
        for method in BCC_METHOD_NAMES:
            start = time.perf_counter()
            for q_left, q_right in pairs:
                run_method(method, bundle, q_left, q_right, index=index)
            series[method][distance] = (time.perf_counter() - start) / len(pairs)
    return series


@pytest.fixture(scope="module")
def inter_distance_series(baidu_like, dblp_like):
    all_series = {}
    for name, bundle in (("baidu-1", baidu_like), ("dblp", dblp_like)):
        series = sweep_inter_distance(bundle)
        all_series[name] = series
        write_result(
            f"figure7_inter_distance_{name}",
            sweep_table(
                series,
                parameter_name="inter-distance l",
                title=f"Figure 7 ({name}): query time (s) vs. query inter-distance",
            ),
        )
    return all_series


def test_fig7_series_cover_reachable_distances(inter_distance_series, baidu_like, benchmark):
    """Benchmark the default l = 1 point and check the sweep produced data."""
    pairs = generate_query_pairs(baidu_like, QuerySpec(count=1, inter_distance=1), seed=7)
    q_left, q_right = pairs[0]
    benchmark(run_method, "L2P-BCC", baidu_like, q_left, q_right)
    for name, series in inter_distance_series.items():
        for method in BCC_METHOD_NAMES:
            assert 1 in series[method], (name, method)


def test_fig7_distance_two_queries_still_answered(dblp_like, benchmark):
    pairs = generate_query_pairs(dblp_like, QuerySpec(count=1, inter_distance=2), seed=7)
    if not pairs:
        pytest.skip("no distance-2 cross-label pair in this instance")
    q_left, q_right = pairs[0]
    outcome = benchmark(run_method, "LP-BCC", dblp_like, q_left, q_right)
    assert outcome.seconds >= 0
