"""Table 4 (Exp-5): Online-BCC vs. LP-BCC step-by-step breakdown on DBLP.

Regenerates the four rows of Table 4 — query-distance calculation time,
leader-pair update time, number of butterfly-counting invocations and total
time — for both methods, and reports the speedup factors.  The shape to
reproduce: LP-BCC needs far fewer butterfly-counting calls and less
query-distance time, translating into a clear end-to-end speedup.
"""

from __future__ import annotations

import time
from typing import Dict

import pytest

from benchmarks.conftest import write_result
from repro.core.lp_bcc import lp_bcc_search
from repro.core.online_bcc import online_bcc_search
from repro.eval.instrumentation import SearchInstrumentation
from repro.eval.queries import QuerySpec, generate_query_pairs
from repro.eval.reporting import breakdown_table, speedup

QUERY_COUNT = 4


@pytest.fixture(scope="module")
def breakdown(dblp_like) -> Dict[str, Dict[str, float]]:
    pairs = generate_query_pairs(dblp_like, QuerySpec(count=QUERY_COUNT), seed=42)
    online_inst = SearchInstrumentation()
    lp_inst = SearchInstrumentation()
    online_total = 0.0
    lp_total = 0.0
    for q_left, q_right in pairs:
        start = time.perf_counter()
        online_bcc_search(dblp_like.graph, q_left, q_right, b=1, instrumentation=online_inst)
        online_total += time.perf_counter() - start
        start = time.perf_counter()
        lp_bcc_search(dblp_like.graph, q_left, q_right, b=1, instrumentation=lp_inst)
        lp_total += time.perf_counter() - start
    rows = {
        "Query distance calculation (s)": {
            "Online-BCC": online_inst.query_distance_seconds,
            "LP-BCC": lp_inst.query_distance_seconds,
        },
        "Leader pair update (s)": {
            "Online-BCC": online_inst.leader_update_seconds,
            "LP-BCC": lp_inst.leader_update_seconds,
        },
        "#butterfly counting": {
            "Online-BCC": float(online_inst.butterfly_counting_calls),
            "LP-BCC": float(lp_inst.butterfly_counting_calls),
        },
        "Total time (s)": {"Online-BCC": online_total, "LP-BCC": lp_total},
    }
    lines = [
        breakdown_table(rows, title="Table 4: Online-BCC vs LP-BCC breakdown (DBLP-like)"),
        "",
        "Speedups (Online-BCC / LP-BCC):",
        f"  query distance: {speedup(rows['Query distance calculation (s)']['Online-BCC'], rows['Query distance calculation (s)']['LP-BCC']):.1f}x",
        f"  #butterfly counting: {speedup(rows['#butterfly counting']['Online-BCC'], rows['#butterfly counting']['LP-BCC']):.1f}x",
        f"  total: {speedup(rows['Total time (s)']['Online-BCC'], rows['Total time (s)']['LP-BCC']):.1f}x",
    ]
    write_result("table4_breakdown", "\n".join(lines))
    return rows


def test_table4_butterfly_counting_reduction(breakdown, dblp_like, benchmark):
    """LP-BCC must invoke Algorithm 3 far less often than Online-BCC."""
    pairs = generate_query_pairs(dblp_like, QuerySpec(count=1), seed=42)
    q_left, q_right = pairs[0]
    benchmark(lp_bcc_search, dblp_like.graph, q_left, q_right)
    assert breakdown["#butterfly counting"]["LP-BCC"] < breakdown["#butterfly counting"]["Online-BCC"]


def test_table4_total_time_speedup(breakdown, dblp_like, benchmark):
    """LP-BCC must not be slower end to end than Online-BCC on this workload."""
    pairs = generate_query_pairs(dblp_like, QuerySpec(count=1), seed=42)
    q_left, q_right = pairs[0]
    benchmark(online_bcc_search, dblp_like.graph, q_left, q_right)
    assert breakdown["Total time (s)"]["LP-BCC"] <= breakdown["Total time (s)"]["Online-BCC"] * 1.2
