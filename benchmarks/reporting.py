"""Shared result-writing for the standalone benchmark scripts.

Every bench writes its JSON payload to ``benchmarks/results/`` (the
git-ignored working directory) **and** mirrors it to a repo-root
``BENCH_<name>.json`` — the stable, discoverable location CI artifact
uploads and the acceptance checks read, with no knowledge of the bench's
internal layout.  One helper keeps the two copies byte-identical.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_results(payload: object, results_path: Path) -> List[Path]:
    """Write ``payload`` as JSON to ``results_path`` and mirror it repo-root.

    The mirror keeps the results file's own basename (``BENCH_*.json``),
    so a bench invoked with a custom ``--results`` path still lands a
    root copy under its canonical name.  Returns the written paths,
    results-directory copy first.
    """
    text = json.dumps(payload, indent=2) + "\n"
    results_path = Path(results_path)
    results_path.parent.mkdir(parents=True, exist_ok=True)
    results_path.write_text(text, encoding="utf-8")
    root_copy = REPO_ROOT / results_path.name
    root_copy.write_text(text, encoding="utf-8")
    return [results_path, root_copy]
