"""Observability overhead: the cost of instrumentation when nobody traces.

The tracing layer's contract (see :mod:`repro.obs.tracing`) is that every
``span(...)`` call site costs one ``ContextVar.get`` when no trace is
active — cheap enough to leave compiled into every hot path.  This bench
puts a number on that promise by serving the same uncached search workload
three ways:

``uninstrumented``
    ``repro.api.engine``'s ``obs_span`` swapped for a factory that returns
    a shared null object without even the ``ContextVar`` lookup — the
    counterfactual engine with no tracing hooks at all.
``tracing_off``
    The shipped engine, no active trace: the production default, and the
    path the acceptance floor governs.
``tracing_on``
    Every search under its own enabled :class:`~repro.obs.tracing.Trace`,
    span tree built and discarded — the worst case an operator opts into.

A micro row also times the raw disabled ``span()`` call so the per-site
cost is visible in nanoseconds, independent of kernel noise.

Results are written to ``benchmarks/results/BENCH_obs.json`` (mirrored to
the repo root by :mod:`reporting`) and echoed as a table.  Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py          # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke  # CI

``--smoke`` shrinks the workload to a few searches and one repetition; it
writes the JSON but does not enforce the overhead floor (CI runners are
too noisy for timing assertions).  The full mode records whether the PR's
acceptance floor — tracing-off overhead <= 3% over uninstrumented — was
met.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from reporting import write_results  # noqa: E402

import repro.api.engine as engine_mod  # noqa: E402
from repro.api import BCCEngine, Query, SearchConfig  # noqa: E402
from repro.graph.generators import random_labeled_graph  # noqa: E402
from repro.obs.tracing import Trace, span  # noqa: E402

RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_obs.json"

#: Acceptance floor: tracing-off may cost at most this much over the
#: uninstrumented engine (full mode only; --smoke skips enforcement).
MAX_OFF_OVERHEAD_PCT = 3.0
SEED = 2021
MICRO_CALLS = 200_000


class _NullCtx:
    """The uninstrumented counterfactual: no ContextVar lookup at all."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_CTX = _NullCtx()


def _null_span(name, **meta):
    return _NULL_CTX


def best_of(fn: Callable[[], object], repeats: int) -> float:
    """Return the best wall time of ``repeats`` runs of ``fn`` (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def build_workload(smoke: bool):
    """An engine (result cache off) and a list of distinct cross queries."""
    if smoke:
        graph = random_labeled_graph(60, 0.10, ["A", "B"], seed=SEED)
        limit = 6
    else:
        # Big enough that each search does milliseconds of kernel work —
        # the floor is about overhead on a serving workload, not on the
        # raw per-call cost (the micro row reports that separately).
        graph = random_labeled_graph(400, 0.04, ["A", "B"], seed=SEED)
        limit = 12
    engine = BCCEngine(
        graph,
        config=SearchConfig(backend="csr"),
        result_cache_size=0,  # every search runs the kernel
    )
    engine.prepare()
    queries = []
    for pair in graph.cross_edges():
        queries.append(Query("online-bcc", pair))
        if len(queries) >= limit:
            break
    if not queries:
        raise SystemExit("workload graph has no cross edges")
    return engine, queries


def serve_all(engine: BCCEngine, queries: List[Query]) -> None:
    for query in queries:
        engine.search(query)


def bench_modes(engine: BCCEngine, queries: List[Query], repeats: int) -> Dict:
    """Best-of wall time of the batch under each instrumentation mode."""
    serve_all(engine, queries)  # warm the CSR snapshot out of the timings

    shipped_span = engine_mod.obs_span
    engine_mod.obs_span = _null_span
    try:
        uninstrumented_s = best_of(lambda: serve_all(engine, queries), repeats)
    finally:
        engine_mod.obs_span = shipped_span

    tracing_off_s = best_of(lambda: serve_all(engine, queries), repeats)

    def traced() -> None:
        for index, query in enumerate(queries):
            with Trace(f"bench-{index}"):
                engine.search(query)

    tracing_on_s = best_of(traced, repeats)

    def overhead_pct(mode_s: float) -> float:
        if uninstrumented_s <= 0.0:
            return 0.0
        return round((mode_s / uninstrumented_s - 1.0) * 100.0, 2)

    return {
        "searches": len(queries),
        "uninstrumented_s": uninstrumented_s,
        "tracing_off_s": tracing_off_s,
        "tracing_on_s": tracing_on_s,
        "tracing_off_overhead_pct": overhead_pct(tracing_off_s),
        "tracing_on_overhead_pct": overhead_pct(tracing_on_s),
    }


def bench_micro(calls: int) -> Dict:
    """Nanoseconds per call: null factory vs the real disabled ``span()``."""

    def null_calls() -> None:
        for _ in range(calls):
            with _null_span("micro"):
                pass

    def disabled_calls() -> None:
        for _ in range(calls):
            with span("micro"):
                pass

    null_s = best_of(null_calls, 3)
    disabled_s = best_of(disabled_calls, 3)
    return {
        "calls": calls,
        "null_ns_per_call": round(null_s / calls * 1e9, 1),
        "disabled_ns_per_call": round(disabled_s / calls * 1e9, 1),
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, one repetition, no floor enforcement (for CI)",
    )
    parser.add_argument(
        "--results",
        type=Path,
        default=RESULTS_PATH,
        help="where to write the JSON payload",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.smoke else 3

    engine, queries = build_workload(args.smoke)
    first = engine.search(queries[0])
    if first.status not in ("ok", "empty"):
        raise SystemExit(f"workload sanity check failed: {first.status!r}")

    modes = bench_modes(engine, queries, repeats)
    micro = bench_micro(MICRO_CALLS // 20 if args.smoke else MICRO_CALLS)

    payload: Dict = {
        "bench": "obs_overhead",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "workload": modes,
        "micro": micro,
        "floors": {
            "max_tracing_off_overhead_pct": MAX_OFF_OVERHEAD_PCT,
            "enforced": not args.smoke,
            "tracing_off_met": (
                modes["tracing_off_overhead_pct"] <= MAX_OFF_OVERHEAD_PCT
            ),
        },
    }
    for path in write_results(payload, args.results):
        print(f"wrote {path}")

    print(json.dumps(payload, indent=2))
    print(
        f"\ntracing off: {modes['tracing_off_overhead_pct']:+.2f}% vs "
        f"uninstrumented ({modes['searches']} searches, best of {repeats}); "
        f"tracing on: {modes['tracing_on_overhead_pct']:+.2f}%; disabled "
        f"span(): {micro['disabled_ns_per_call']:.0f}ns/call"
    )
    if not args.smoke and not payload["floors"]["tracing_off_met"]:
        print(
            "FLOOR MISSED: tracing-off overhead "
            f"{modes['tracing_off_overhead_pct']:.2f}% > "
            f"{MAX_OFF_OVERHEAD_PCT}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
