"""Figure 8 (Exp-4): query time of the BCC variants vs. the core value k.

Sweeps k (applied to both k1 and k2, "due to their symmetry property") over
2..6 on the Baidu-1-like and DBLP-like networks.  The paper's observation to
reproduce: larger k yields a smaller candidate G0 and therefore less running
time for the global methods.
"""

from __future__ import annotations

import time
from typing import Dict

import pytest

from benchmarks.conftest import write_result
from repro.core.bc_index import BCIndex
from repro.eval.harness import BCC_METHOD_NAMES, run_method
from repro.eval.queries import QuerySpec, generate_query_pairs
from repro.eval.reporting import sweep_table

CORE_VALUES = (2, 3, 4, 5, 6)
QUERIES_PER_POINT = 2


def sweep_core_value(bundle) -> Dict[str, Dict[int, float]]:
    index = BCIndex(bundle.graph)  # the offline BCindex is shared across queries
    pairs = generate_query_pairs(bundle, QuerySpec(count=QUERIES_PER_POINT), seed=8)
    series: Dict[str, Dict[int, float]] = {m: {} for m in BCC_METHOD_NAMES}
    if not pairs:
        return series
    for k in CORE_VALUES:
        for method in BCC_METHOD_NAMES:
            start = time.perf_counter()
            for q_left, q_right in pairs:
                run_method(method, bundle, q_left, q_right, k=k, index=index)
            series[method][k] = (time.perf_counter() - start) / len(pairs)
    return series


@pytest.fixture(scope="module")
def core_value_series(baidu_like, dblp_like):
    all_series = {}
    for name, bundle in (("baidu-1", baidu_like), ("dblp", dblp_like)):
        series = sweep_core_value(bundle)
        all_series[name] = series
        write_result(
            f"figure8_core_k_{name}",
            sweep_table(
                series,
                parameter_name="core value k",
                title=f"Figure 8 ({name}): query time (s) vs. core value k",
            ),
        )
    return all_series


def test_fig8_series_complete(core_value_series, baidu_like, benchmark):
    """Benchmark the k = 4 point of the sweep for LP-BCC."""
    pairs = generate_query_pairs(baidu_like, QuerySpec(count=1), seed=8)
    q_left, q_right = pairs[0]
    benchmark(run_method, "LP-BCC", baidu_like, q_left, q_right, k=4)
    for name, series in core_value_series.items():
        for method in BCC_METHOD_NAMES:
            assert len(series[method]) == len(CORE_VALUES), (name, method)


def test_fig8_online_bcc_not_slower_for_large_k(core_value_series, dblp_like, benchmark):
    """Larger k shrinks G0, so Online-BCC at k = 6 must not be slower than at k = 2."""
    pairs = generate_query_pairs(dblp_like, QuerySpec(count=1), seed=8)
    q_left, q_right = pairs[0]
    benchmark(run_method, "Online-BCC", dblp_like, q_left, q_right, k=6)
    series = core_value_series["dblp"]["Online-BCC"]
    assert series[6] <= series[2] * 1.5
