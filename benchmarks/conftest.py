"""Shared fixtures and helpers for the benchmark suite.

Every file in this directory regenerates one table or figure of the paper's
evaluation (Section 8).  The synthetic datasets are generated once per
session at a scale a pure-Python implementation can sweep in minutes; the
*shape* of each figure (which method wins, and the trend across the swept
parameter) is what these benchmarks reproduce — see DESIGN.md and
EXPERIMENTS.md.

Each benchmark also writes the regenerated rows/series to
``benchmarks/results/<artifact>.txt`` so the output survives the run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import pytest

from repro.datasets import DatasetBundle, load_dataset

RESULTS_DIR = Path(__file__).parent / "results"

# The seven evaluation networks of Table 3, generated at benchmark scale.
# Overrides shrink the largest graphs so a full pure-Python sweep stays fast
# while preserving the relative size/density ordering of the paper.
BENCHMARK_NETWORKS: Dict[str, Dict] = {
    "baidu-1": {"name": "baidu-1", "kwargs": {}},
    "baidu-2": {"name": "baidu-2", "kwargs": {}},
    "amazon": {"name": "amazon", "kwargs": {"communities": 14, "community_size": 10}},
    "dblp": {"name": "dblp", "kwargs": {"communities": 12, "community_size": 14}},
    "youtube": {"name": "youtube", "kwargs": {"communities": 10, "community_size": 16}},
    "livejournal": {
        "name": "livejournal",
        "kwargs": {"communities": 10, "community_size": 20},
    },
    "orkut": {"name": "orkut", "kwargs": {"communities": 8, "community_size": 26}},
}

DEFAULT_SEED = 2021


def write_result(artifact: str, text: str) -> Path:
    """Persist a regenerated table/figure to benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{artifact}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")
    return path


@pytest.fixture(scope="session")
def benchmark_datasets() -> Dict[str, DatasetBundle]:
    """All seven evaluation networks at benchmark scale (generated once)."""
    bundles: Dict[str, DatasetBundle] = {}
    for key, spec in BENCHMARK_NETWORKS.items():
        bundles[key] = load_dataset(spec["name"], seed=DEFAULT_SEED, **spec["kwargs"])
    return bundles


@pytest.fixture(scope="session")
def dblp_like(benchmark_datasets) -> DatasetBundle:
    """The DBLP-like network used by the parameter sweeps and Table 4."""
    return benchmark_datasets["dblp"]


@pytest.fixture(scope="session")
def baidu_like(benchmark_datasets) -> DatasetBundle:
    """The Baidu-1-like network (ground-truth cross-team projects)."""
    return benchmark_datasets["baidu-1"]


@pytest.fixture(scope="session")
def case_study_datasets() -> Dict[str, DatasetBundle]:
    """The four case-study networks (Exp-6 ... Exp-8, Exp-11)."""
    return {
        name: load_dataset(name, seed=DEFAULT_SEED)
        for name in ("flight", "trade", "fiction", "academic")
    }
