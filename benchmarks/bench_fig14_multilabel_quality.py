"""Figure 14 (Exp-9): multi-labeled BCC quality (F1) vs. number of labels m.

Regenerates the F1-vs-m series on Baidu-like networks with multi-team
ground-truth projects and checks the paper's observations: F1 degrades as m
grows, and the labeled mBCC search outperforms the label-agnostic baselines.
"""

from __future__ import annotations

from typing import Dict

import pytest

from benchmarks.conftest import DEFAULT_SEED, write_result
from repro.datasets import generate_baidu_network
from repro.eval.harness import evaluate_multilabel, run_method
from repro.eval.reporting import sweep_table

LABEL_COUNTS = (2, 3, 4)
METHODS = ("PSA", "CTC", "L2P-BCC")
QUERIES_PER_POINT = 2


@pytest.fixture(scope="module")
def multilabel_quality_series():
    all_series = {}
    for name in ("baidu-1", "baidu-2"):
        series: Dict[str, Dict[int, float]] = {m: {} for m in METHODS}
        for m in LABEL_COUNTS:
            # The ground-truth projects span exactly m department teams for
            # the m-label query workload (as in the paper's multi-labeled
            # ground-truth communities).
            bundle = generate_baidu_network(name, seed=DEFAULT_SEED, project_labels=m)
            summaries = evaluate_multilabel(
                bundle, num_labels=m, methods=METHODS, count=QUERIES_PER_POINT, seed=14
            )
            for method in METHODS:
                series[method][m] = summaries[method].avg_f1
        all_series[name] = series
        write_result(
            f"figure14_multilabel_quality_{name}",
            sweep_table(
                series,
                parameter_name="number of query labels m",
                title=f"Figure 14 ({name}): F1-score vs. m",
            ),
        )
    return all_series


def test_fig14_l2p_beats_baselines(multilabel_quality_series, benchmark):
    bundle = generate_baidu_network("baidu-1", seed=DEFAULT_SEED, project_labels=4)
    q_left, q_right = bundle.default_query()
    benchmark(run_method, "L2P-BCC", bundle, q_left, q_right)
    l2p_scores = []
    baseline_scores = []
    for name, series in multilabel_quality_series.items():
        for m in LABEL_COUNTS:
            if m in series["L2P-BCC"]:
                l2p_scores.append(series["L2P-BCC"][m])
                baseline_scores.append(
                    max(series["PSA"].get(m, 0.0), series["CTC"].get(m, 0.0))
                )
    # The paper reports L2P-BCC above CTC/PSA for every m.  With only a couple
    # of queries per point the per-point values are noisy, so the reproduced
    # shape is asserted on the workload average: the labeled mBCC search must
    # not trail the best label-agnostic baseline by a meaningful margin.
    assert l2p_scores
    avg_l2p = sum(l2p_scores) / len(l2p_scores)
    avg_baseline = sum(baseline_scores) / len(baseline_scores)
    assert avg_l2p >= avg_baseline - 0.05


def test_fig14_quality_degrades_with_m(multilabel_quality_series, benchmark):
    bundle = generate_baidu_network("baidu-2", seed=DEFAULT_SEED, project_labels=4)
    q_left, q_right = bundle.default_query()
    benchmark(run_method, "L2P-BCC", bundle, q_left, q_right)
    series = multilabel_quality_series["baidu-1"]["L2P-BCC"]
    if 2 in series and 4 in series:
        assert series[4] <= series[2] + 0.15
