"""Figure 4 (Exp-1): F1-score of every method on networks with ground truth.

Regenerates the methods × datasets F1 grid and asserts the figure's headline
shape: the BCC methods dominate the label-agnostic baselines on every network,
and L2P-BCC is at least as good as Online-BCC on most networks.
"""

from __future__ import annotations

from typing import Dict

import pytest

from benchmarks.conftest import write_result
from repro.eval.harness import METHOD_NAMES, evaluate_methods, run_method
from repro.eval.queries import QuerySpec
from repro.eval.reporting import figure_table

# Quality evaluation runs on the networks with planted ground truth that are
# cheap enough to sweep with every method (the larger SNAP stand-ins appear in
# the efficiency figure).
QUALITY_NETWORKS = ("baidu-1", "baidu-2", "amazon", "dblp")
QUERIES_PER_NETWORK = 4


@pytest.fixture(scope="module")
def quality_grid(benchmark_datasets) -> Dict[str, Dict[str, object]]:
    summaries = {}
    for name in QUALITY_NETWORKS:
        bundle = benchmark_datasets[name]
        summaries[name] = evaluate_methods(
            bundle,
            methods=METHOD_NAMES,
            spec=QuerySpec(count=QUERIES_PER_NETWORK),
            seed=4,
        )
    write_result(
        "figure4_quality",
        figure_table(
            summaries,
            metric="avg_f1",
            title="Figure 4: average F1-score per method and network",
            datasets=list(QUALITY_NETWORKS),
            methods=list(METHOD_NAMES),
        ),
    )
    return summaries


def test_fig4_bcc_methods_beat_baselines(quality_grid, benchmark_datasets, benchmark):
    """Benchmark one representative quality evaluation query (LP-BCC, Baidu-1)."""
    bundle = benchmark_datasets["baidu-1"]
    q_left, q_right = bundle.default_query()
    outcome = benchmark(run_method, "LP-BCC", bundle, q_left, q_right)
    assert outcome.found
    wins = 0
    for dataset, per_method in quality_grid.items():
        best_baseline = max(per_method["PSA"].avg_f1, per_method["CTC"].avg_f1)
        best_bcc = max(
            per_method["Online-BCC"].avg_f1,
            per_method["LP-BCC"].avg_f1,
            per_method["L2P-BCC"].avg_f1,
        )
        if best_bcc >= best_baseline:
            wins += 1
        # Even on an unlucky small workload the BCC methods must stay close.
        assert best_bcc >= best_baseline - 0.15, dataset
    # The paper's headline shape: BCC methods win on (at least the vast
    # majority of) the evaluated networks; with only a handful of queries per
    # network we require a strict win on more than half of them.
    assert wins >= len(quality_grid) - 1


def test_fig4_l2p_is_competitive(quality_grid, benchmark_datasets, benchmark):
    """Benchmark the L2P-BCC query; assert L2P-BCC stays within reach of the
    best BCC variant on every network (the paper reports it as best on most)."""
    bundle = benchmark_datasets["baidu-1"]
    q_left, q_right = bundle.default_query()
    outcome = benchmark(run_method, "L2P-BCC", bundle, q_left, q_right)
    assert outcome.found
    for dataset, per_method in quality_grid.items():
        best = max(summary.avg_f1 for summary in per_method.values())
        assert per_method["L2P-BCC"].avg_f1 >= best - 0.25, dataset
