"""Batch-serving throughput: sequential vs concurrent ``search_many``.

Serves one repeat-heavy query trace (hot queries recur, as in any real
serving workload) over the largest Table-3 synthetic network through four
engine configurations:

* ``sequential_uncached`` — the pre-concurrency serving path (the baseline);
* ``sequential_cached``   — LRU result cache on;
* ``threaded_uncached``   — ``max_workers=8``, cache off;
* ``threaded_cached``     — ``max_workers=8``, cache on (the full stack).

Every mode must return position-for-position identical answers — the run
asserts parity before reporting a single number.  The headline
``speedup_threaded_batch`` compares the full concurrent stack against the
sequential uncached baseline; the pure thread-pool and pure cache effects
are recorded separately.  On a GIL build serving pure-Python kernels the
thread pool alone cannot beat 1.0x on a single core (recorded honestly as
``speedup_threads_only``) — the stack's gain comes from answering repeated
queries out of the result cache, and grows on multi-core / GIL-releasing
backends.

Results land in ``benchmarks/results/BENCH_batch.json``.  Usage::

    PYTHONPATH=src python benchmarks/bench_batch_concurrency.py          # full
    PYTHONPATH=src python benchmarks/bench_batch_concurrency.py --smoke  # CI

``--smoke`` shrinks the network and trace and skips the speed-up floor
(CI runners are too noisy for timing assertions); the full mode records
whether the acceptance floor (threaded batch >= 1.5x) was met.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from reporting import write_results  # noqa: E402

from repro.api import BCCEngine, Query, SearchConfig  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.eval.queries import QuerySpec, generate_query_pairs  # noqa: E402

RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_batch.json"

#: The largest (densest) Table-3 synthetic network, at the same full scale
#: as benchmarks/bench_backend_speed.py; --smoke shrinks it.
LARGEST = "orkut"
FULL_SCALE = {"communities": 8, "community_size": 128}
SMOKE_SCALE = {"communities": 4, "community_size": 20}
SEED = 2021

MAX_WORKERS = 8
METHOD = "lp-bcc"
FLOOR = 1.5  # acceptance: threaded-batch throughput >= 1.5x the baseline

#: Serving-trace shape: ``unique`` distinct query pairs, stretched to
#: ``length`` requests with a skewed repetition pattern (hot pairs recur).
FULL_TRACE = {"unique": 10, "length": 60}
SMOKE_TRACE = {"unique": 4, "length": 12}


def build_trace(bundle, unique: int, length: int) -> List[Query]:
    """A repeat-heavy trace of ``length`` queries over ``unique`` hot pairs."""
    pairs = generate_query_pairs(
        bundle, QuerySpec(count=unique, degree_rank=0.8), seed=3
    )
    config = SearchConfig(b=1, max_iterations=200)
    rng = random.Random(7)
    trace = [Query(METHOD, pair, config=config) for pair in pairs]
    while len(trace) < length:
        # Zipf-ish skew: low-rank (hot) pairs repeat far more often.
        rank = min(int(rng.paretovariate(1.2)) - 1, len(pairs) - 1)
        trace.append(Query(METHOD, pairs[rank], config=config))
    return trace[:length]


def serve_mode(graph, trace: List[Query], *, max_workers: int, cached: bool):
    """Time one fresh engine serving the whole trace; return (responses, s)."""
    engine = BCCEngine(graph, result_cache_size=256 if cached else 0)
    start = time.perf_counter()
    responses = engine.search_many(
        trace, max_workers=max_workers, on_error="return"
    )
    return responses, time.perf_counter() - start


def assert_parity(baseline, other, mode: str) -> None:
    """Every mode must serve position-aligned answers equal to the baseline."""
    assert len(baseline) == len(other), mode
    for position, (want, got) in enumerate(zip(baseline, other)):
        assert got.status == want.status, (mode, position)
        assert got.vertices == want.vertices, (mode, position)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale, parity only — no speed-up floor (CI)",
    )
    args = parser.parse_args()

    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    trace_shape = SMOKE_TRACE if args.smoke else FULL_TRACE
    bundle = load_dataset(LARGEST, seed=SEED, **scale)
    graph = bundle.graph
    graph.freeze()  # every mode serves the same warm snapshot
    trace = build_trace(bundle, **trace_shape)
    print(
        f"{LARGEST}-like network: |V|={graph.num_vertices()} "
        f"|E|={graph.num_edges()}; trace: {len(trace)} queries over "
        f"{trace_shape['unique']} hot pairs ({METHOD})"
    )

    modes = {
        "sequential_uncached": {"max_workers": 1, "cached": False},
        "sequential_cached": {"max_workers": 1, "cached": True},
        "threaded_uncached": {"max_workers": MAX_WORKERS, "cached": False},
        "threaded_cached": {"max_workers": MAX_WORKERS, "cached": True},
    }
    timings: Dict[str, float] = {}
    baseline_responses = None
    for mode, knobs in modes.items():
        responses, seconds = serve_mode(graph, trace, **knobs)
        if baseline_responses is None:
            baseline_responses = responses
        else:
            assert_parity(baseline_responses, responses, mode)
        timings[mode] = seconds
        print(
            f"  {mode:>20}: {seconds:8.3f}s  "
            f"({len(trace) / seconds:7.1f} queries/s)"
        )

    baseline = timings["sequential_uncached"]
    speedups = {
        "speedup_threaded_batch": baseline / timings["threaded_cached"],
        "speedup_threads_only": baseline / timings["threaded_uncached"],
        "speedup_cache_only": baseline / timings["sequential_cached"],
    }
    for name, value in speedups.items():
        print(f"  {name}: {value:.2f}x")

    floor_met = speedups["speedup_threaded_batch"] >= FLOOR
    payload = {
        "benchmark": "batch_concurrency",
        "network": LARGEST,
        "scale": scale,
        "num_vertices": graph.num_vertices(),
        "num_edges": graph.num_edges(),
        "method": METHOD,
        "trace": {**trace_shape, "repeats": len(trace) - trace_shape["unique"]},
        "max_workers": MAX_WORKERS,
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "parity": "all modes position-aligned equal",
        "seconds": timings,
        "queries_per_second": {
            mode: len(trace) / seconds for mode, seconds in timings.items()
        },
        **{name: round(value, 3) for name, value in speedups.items()},
        "floor": FLOOR,
        "floor_met": None if args.smoke else floor_met,
        "note": (
            "threads alone cannot exceed 1.0x for pure-Python kernels on a "
            "single GIL core; the threaded-batch gain comes from the LRU "
            "result cache on the repeat-heavy trace and scales further on "
            "GIL-releasing backends"
        ),
    }
    write_results(payload, RESULTS_PATH)
    print(f"[written to {RESULTS_PATH}]")

    if not args.smoke and not floor_met:
        print(
            f"FAIL: threaded-batch speed-up "
            f"{speedups['speedup_threaded_batch']:.2f}x below {FLOOR}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
