"""Sharded vs monolithic serving on a multi-component orkut-like network.

Real serving graphs are rarely one connected blob: an enterprise network is
many regions, a co-purchase graph many disconnected niches.  The BCC
searches are component-local by construction, so
:class:`repro.serving.ShardedBCCEngine` partitions the graph into
connected-component shards behind the same ``Query`` surface.  This
benchmark measures what that buys over one monolithic ``BCCEngine`` on a
synthetic network of several disjoint orkut-like components:

* **cold start** — time to serve the first query from a fresh engine: the
  monolithic engine freezes the whole graph, the sharded engine only the
  query's component;
* **steady state** — throughput over a warm repeat-heavy trace spanning all
  components (plus cross-component queries, which the sharded router
  answers without touching any shard): per-query core extraction runs over
  component-sized label groups instead of graph-sized ones;
* **laziness** — after a trace touching one component, the stats endpoint
  must show exactly one shard built and zero freezes anywhere else.

Every mode must return position-for-position identical answers — parity is
asserted before a single number is reported.  Results land in
``benchmarks/results/BENCH_sharded.json``.  Usage::

    PYTHONPATH=src python benchmarks/bench_sharded_serving.py          # full
    PYTHONPATH=src python benchmarks/bench_sharded_serving.py --smoke  # CI

``--smoke`` shrinks the network and skips the speed-up floors (CI runners
are too noisy for timing assertions); the full mode records whether the
acceptance floors (cold start >= 1.3x, steady state >= 1.0x) were met.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from reporting import write_results  # noqa: E402

from repro.api import BCCEngine, Query, SearchConfig  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.eval.queries import QuerySpec, generate_query_pairs  # noqa: E402
from repro.exceptions import REASON_CROSS_SHARD  # noqa: E402
from repro.graph.labeled_graph import LabeledGraph  # noqa: E402
from repro.serving import ShardedBCCEngine  # noqa: E402

RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_sharded.json"

NETWORK = "orkut"
SEED = 2021
METHOD = "lp-bcc"
CONFIG = SearchConfig(b=1, max_iterations=200)

#: Components in the multi-component network and the per-component scale.
FULL_SHAPE = {"components": 4, "communities": 4, "community_size": 56}
SMOKE_SHAPE = {"components": 2, "communities": 2, "community_size": 14}

#: Steady-state trace: per-component hot pairs, repeat-heavy, plus a slice
#: of cross-component queries the router short-circuits.
FULL_TRACE = {"unique_per_component": 3, "length": 64, "cross_fraction": 0.15}
SMOKE_TRACE = {"unique_per_component": 2, "length": 12, "cross_fraction": 0.2}

FLOOR_COLD = 1.3     # sharded cold start at least 1.3x faster
FLOOR_STEADY = 1.0   # sharded steady state at least as fast


def build_multi_component_network(
    components: int, communities: int, community_size: int
) -> Tuple[LabeledGraph, List[List[Tuple[str, str]]]]:
    """Disjoint orkut-like components in one graph, plus per-component pairs.

    Every component is an independently generated orkut-like network with
    its vertices prefixed ``r{i}:`` (think: one region each), so the
    composed graph has exactly ``components`` connected components and the
    returned ground-truth query pairs stay component-local.
    """
    graph = LabeledGraph()
    pairs_per_component: List[List[Tuple[str, str]]] = []
    for index in range(components):
        bundle = load_dataset(
            NETWORK,
            seed=SEED + index,
            communities=communities,
            community_size=community_size,
        )
        prefix = f"r{index}"
        for vertex in bundle.graph.vertices():
            graph.add_vertex(
                f"{prefix}:{vertex}", label=bundle.graph.label(vertex)
            )
        for u, v in bundle.graph.edges():
            graph.add_edge(f"{prefix}:{u}", f"{prefix}:{v}")
        raw_pairs = generate_query_pairs(
            bundle,
            QuerySpec(count=FULL_TRACE["unique_per_component"], degree_rank=0.8),
            seed=3 + index,
        )
        pairs_per_component.append(
            [(f"{prefix}:{u}", f"{prefix}:{v}") for u, v in raw_pairs]
        )
    return graph, pairs_per_component


def build_trace(
    graph: LabeledGraph,
    pairs_per_component: List[List[Tuple[str, str]]],
    unique_per_component: int,
    length: int,
    cross_fraction: float,
) -> List[Query]:
    """A repeat-heavy serving trace spanning every component.

    Hot pairs repeat with a Zipf-ish skew; a ``cross_fraction`` slice pairs
    vertices from different components — real multi-tenant traffic always
    contains some, and the router must answer them (empty) without cost.
    Cross-component pairs are picked with *distinct labels* so the query is
    structurally valid and both engines agree it is merely empty.
    """
    rng = random.Random(7)
    hot: List[Tuple[str, str]] = []
    for pairs in pairs_per_component:
        hot.extend(pairs[:unique_per_component])
    trace = [Query(METHOD, pair, config=CONFIG) for pair in hot]
    cross_count = int(length * cross_fraction)
    for _ in range(cross_count):
        left_component, right_component = rng.sample(
            range(len(pairs_per_component)), 2
        )
        left = rng.choice(pairs_per_component[left_component])[0]
        right_pair = rng.choice(pairs_per_component[right_component])
        right = next(
            (v for v in right_pair if graph.label(v) != graph.label(left)),
            None,
        )
        if right is None:
            continue
        trace.append(Query(METHOD, (left, right), config=CONFIG))
    while len(trace) < length:
        rank = min(int(rng.paretovariate(1.2)) - 1, len(hot) - 1)
        trace.append(Query(METHOD, hot[rank], config=CONFIG))
    rng.shuffle(trace)
    return trace[:length]


def assert_parity(baseline, other, mode: str) -> None:
    """Both engines must serve position-aligned equal answers."""
    assert len(baseline) == len(other), mode
    for position, (want, got) in enumerate(zip(baseline, other)):
        assert got.status == want.status, (mode, position, got.reason)
        assert got.vertices == want.vertices, (mode, position)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale, parity + laziness only — no speed-up floors (CI)",
    )
    args = parser.parse_args()

    shape = SMOKE_SHAPE if args.smoke else FULL_SHAPE
    trace_shape = SMOKE_TRACE if args.smoke else FULL_TRACE
    graph, pairs_per_component = build_multi_component_network(**shape)
    trace = build_trace(graph, pairs_per_component, **trace_shape)
    cold_query = Query(METHOD, pairs_per_component[0][0], config=CONFIG)
    print(
        f"{shape['components']}x {NETWORK}-like components: "
        f"|V|={graph.num_vertices()} |E|={graph.num_edges()}; "
        f"trace: {len(trace)} queries ({METHOD})"
    )

    # ------------------------------------------------------------------
    # Cold start: first query from a fresh engine.  The sharded engine is
    # measured first — it never freezes the parent graph, while the
    # monolithic engine's freeze is cached *on the graph* and must not be
    # warmed before its own cold measurement.
    # ------------------------------------------------------------------
    sharded = ShardedBCCEngine(graph, CONFIG)
    start = time.perf_counter()
    sharded_cold_responses = sharded.search_many([cold_query])
    sharded_cold = time.perf_counter() - start

    monolithic = BCCEngine(graph, CONFIG)
    start = time.perf_counter()
    monolithic_cold_responses = monolithic.search_many([cold_query])
    monolithic_cold = time.perf_counter() - start
    assert_parity(monolithic_cold_responses, sharded_cold_responses, "cold")

    print(
        f"  cold start: monolithic {monolithic_cold:.3f}s "
        f"(froze |V|={graph.num_vertices()}), sharded {sharded_cold:.3f}s "
        f"(froze one component)"
    )

    # Laziness proof off the stats endpoint: only one shard did any work.
    stats = sharded.stats()
    built = [block for block in stats.shards if block["built"]]
    untouched_freezes = sum(
        block["counters"]["csr_freezes"]
        for block in stats.shards
        if not block["built"]
    )
    assert len(built) == 1, "cold query must build exactly one shard"
    assert untouched_freezes == 0
    print(
        f"  laziness: {len(built)}/{stats.graph['components']} shards built "
        f"after the cold query; untouched shards froze {untouched_freezes} times"
    )

    # ------------------------------------------------------------------
    # Steady state: both engines warm, same repeat-heavy trace.  The result
    # caches are disabled so the comparison measures the serving path (label
    # groups, core extraction), not cache lookups both sides share.
    # ------------------------------------------------------------------
    warm_sharded = ShardedBCCEngine(graph, CONFIG, result_cache_size=0)
    warm_monolithic = BCCEngine(graph, CONFIG, result_cache_size=0)
    warm_sharded.search_many(trace[:1])
    warm_monolithic.search_many(trace[:1])

    start = time.perf_counter()
    monolithic_responses = warm_monolithic.search_many(trace)
    monolithic_steady = time.perf_counter() - start
    start = time.perf_counter()
    sharded_responses = warm_sharded.search_many(trace)
    sharded_steady = time.perf_counter() - start
    assert_parity(monolithic_responses, sharded_responses, "steady")
    cross_rows = sum(
        1 for r in sharded_responses if r.reason == REASON_CROSS_SHARD
    )

    throughput = {
        "monolithic": len(trace) / monolithic_steady,
        "sharded": len(trace) / sharded_steady,
    }
    speedups = {
        "speedup_cold_start": monolithic_cold / sharded_cold,
        "speedup_steady_state": monolithic_steady / sharded_steady,
    }
    print(
        f"  steady state: monolithic {throughput['monolithic']:7.1f} q/s, "
        f"sharded {throughput['sharded']:7.1f} q/s "
        f"({cross_rows} cross-component rows short-circuited)"
    )
    for name, value in speedups.items():
        print(f"  {name}: {value:.2f}x")

    floors_met = (
        speedups["speedup_cold_start"] >= FLOOR_COLD
        and speedups["speedup_steady_state"] >= FLOOR_STEADY
    )
    payload = {
        "benchmark": "sharded_serving",
        "network": NETWORK,
        "shape": shape,
        "num_vertices": graph.num_vertices(),
        "num_edges": graph.num_edges(),
        "method": METHOD,
        "trace": {**trace_shape, "length": len(trace), "cross_rows": cross_rows},
        "smoke": args.smoke,
        "parity": "cold + steady responses position-aligned equal",
        "laziness": {
            "components": stats.graph["components"],
            "shards_built_after_cold_query": len(built),
            "untouched_shard_freezes": untouched_freezes,
        },
        "cold_start_seconds": {
            "monolithic": monolithic_cold,
            "sharded": sharded_cold,
        },
        "steady_state_seconds": {
            "monolithic": monolithic_steady,
            "sharded": sharded_steady,
        },
        "steady_state_queries_per_second": {
            mode: round(value, 1) for mode, value in throughput.items()
        },
        **{name: round(value, 3) for name, value in speedups.items()},
        "floors": {"cold_start": FLOOR_COLD, "steady_state": FLOOR_STEADY},
        "floors_met": None if args.smoke else floors_met,
        "note": (
            "cold start wins because the sharded engine freezes one "
            "component instead of the whole graph; steady state is at "
            "parity or slightly better (search cost is component-local "
            "either way once warm — the connected cores never leave the "
            "query's component) with cross-component queries "
            "short-circuited at the router for free"
        ),
    }
    write_results(payload, RESULTS_PATH)
    print(f"[written to {RESULTS_PATH}]")

    if not args.smoke and not floors_met:
        print(
            f"FAIL: speed-ups {speedups} below floors "
            f"(cold {FLOOR_COLD}x, steady {FLOOR_STEADY}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
