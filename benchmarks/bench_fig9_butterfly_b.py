"""Figure 9 (Exp-4): query time of the BCC variants vs. the butterfly value b.

Sweeps b over 1..5 on the Baidu-1-like and DBLP-like networks.  The paper
reports stable running time across b; the assertion below checks the series
stays within a small factor between its fastest and slowest point.
"""

from __future__ import annotations

import time
from typing import Dict

import pytest

from benchmarks.conftest import write_result
from repro.core.bc_index import BCIndex
from repro.eval.harness import BCC_METHOD_NAMES, run_method
from repro.eval.queries import QuerySpec, generate_query_pairs
from repro.eval.reporting import sweep_table

BUTTERFLY_VALUES = (1, 2, 3, 4, 5)
QUERIES_PER_POINT = 2


def sweep_butterfly_value(bundle) -> Dict[str, Dict[int, float]]:
    index = BCIndex(bundle.graph)  # the offline BCindex is shared across queries
    pairs = generate_query_pairs(bundle, QuerySpec(count=QUERIES_PER_POINT), seed=9)
    series: Dict[str, Dict[int, float]] = {m: {} for m in BCC_METHOD_NAMES}
    if not pairs:
        return series
    for b in BUTTERFLY_VALUES:
        for method in BCC_METHOD_NAMES:
            start = time.perf_counter()
            for q_left, q_right in pairs:
                run_method(method, bundle, q_left, q_right, b=b, index=index)
            series[method][b] = (time.perf_counter() - start) / len(pairs)
    return series


@pytest.fixture(scope="module")
def butterfly_series(baidu_like, dblp_like):
    all_series = {}
    for name, bundle in (("baidu-1", baidu_like), ("dblp", dblp_like)):
        series = sweep_butterfly_value(bundle)
        all_series[name] = series
        write_result(
            f"figure9_butterfly_b_{name}",
            sweep_table(
                series,
                parameter_name="butterfly value b",
                title=f"Figure 9 ({name}): query time (s) vs. butterfly value b",
            ),
        )
    return all_series


def test_fig9_series_complete(butterfly_series, baidu_like, benchmark):
    """Benchmark the default b = 1 point for L2P-BCC."""
    pairs = generate_query_pairs(baidu_like, QuerySpec(count=1), seed=9)
    q_left, q_right = pairs[0]
    benchmark(run_method, "L2P-BCC", baidu_like, q_left, q_right, b=1)
    for name, series in butterfly_series.items():
        for method in BCC_METHOD_NAMES:
            assert len(series[method]) == len(BUTTERFLY_VALUES), (name, method)


def test_fig9_running_time_is_stable_in_b(butterfly_series, baidu_like, benchmark):
    pairs = generate_query_pairs(baidu_like, QuerySpec(count=1), seed=9)
    q_left, q_right = pairs[0]
    benchmark(run_method, "LP-BCC", baidu_like, q_left, q_right, b=3)
    series = butterfly_series["baidu-1"]["LP-BCC"]
    fastest, slowest = min(series.values()), max(series.values())
    # "Our approach achieves a stable efficiency performance on different b".
    assert slowest <= max(10 * fastest, fastest + 0.5)
