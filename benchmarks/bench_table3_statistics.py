"""Table 3: network statistics of the seven evaluation networks.

Regenerates the |V| / |E| / labels / k_max / d_max rows for every benchmark
dataset and benchmarks the statistics computation itself.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.graph.statistics import compute_statistics, statistics_table


@pytest.fixture(scope="module")
def statistics_rows(benchmark_datasets):
    rows = [
        compute_statistics(bundle.graph, name=name)
        for name, bundle in benchmark_datasets.items()
    ]
    write_result("table3_statistics", statistics_table(rows))
    return rows


def test_table3_rows_cover_every_network(statistics_rows, benchmark_datasets, benchmark):
    """Benchmark: recompute the statistics of the Baidu-1-like network."""
    bundle = benchmark_datasets["baidu-1"]
    result = benchmark(compute_statistics, bundle.graph, "baidu-1")
    assert result.num_vertices == bundle.graph.num_vertices()
    assert len(statistics_rows) == len(benchmark_datasets)
    # The paper's ordering: Baidu-2 is denser than Baidu-1; Orkut-like is the
    # densest SNAP stand-in.
    by_name = {row.name: row for row in statistics_rows}
    assert by_name["baidu-2"].num_edges > by_name["baidu-1"].num_edges
    assert (
        by_name["orkut"].extra["avg_degree"] > by_name["amazon"].extra["avg_degree"]
    )


def test_table3_statistics_of_largest_network(benchmark_datasets, benchmark):
    """Benchmark: statistics of the Orkut-like (densest) network."""
    bundle = benchmark_datasets["orkut"]
    result = benchmark(compute_statistics, bundle.graph, "orkut")
    assert result.max_coreness >= 1
    assert result.max_butterfly_degree >= 1
