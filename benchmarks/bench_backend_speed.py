"""Old-vs-new kernel timings: object-graph vs CSR fast-path backend.

Times the three hot kernels of the BCC pipeline — butterfly-degree counting
(Algorithm 3), k-core extraction (Algorithm 2's peeling primitive, swept
over k as Fig. 8 does) and the BFS distance sweep (Algorithm 1/5) — on the
seven Table-3 synthetic networks, comparing the pre-existing object-graph
implementations against the CSR fast path of :mod:`repro.graph.csr`.
Every timed pair is also checked for exact value equality, so the benchmark
doubles as an end-to-end parity test.

Results are written to ``benchmarks/results/BENCH_backend.json`` (the
results directory is git-ignored) and echoed as a table.  Usage::

    PYTHONPATH=src python benchmarks/bench_backend_speed.py          # full
    PYTHONPATH=src python benchmarks/bench_backend_speed.py --smoke  # CI

``--smoke`` runs every network at a reduced scale with a single repetition:
it asserts parity and writes the JSON but does not enforce the speed-up
floors (CI runners are too noisy for timing assertions).  The full mode
records, for the largest network, whether the PR's acceptance floors
(butterfly >= 3x, k-core and BFS >= 2x) were met.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from itertools import compress
from pathlib import Path
from typing import Callable, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from reporting import write_results  # noqa: E402

from repro.core.butterfly import butterfly_degrees  # noqa: E402
from repro.core.kcore import core_decomposition, k_core_vertices  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.graph.bipartite import extract_label_bipartite  # noqa: E402
from repro.graph.csr import (  # noqa: E402
    CSRBipartiteView,
    CSRGraph,
    csr_bfs_distances,
    csr_butterfly_degrees,
    csr_k_core_alive,
)
from repro.graph.traversal import bfs_distances  # noqa: E402

RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_backend.json"

# The seven evaluation networks of Table 3 at benchmark scale.  The full
# mode is larger than the figure-sweep scale of benchmarks/conftest.py so
# the kernels dominate interpreter noise; --smoke shrinks everything.
FULL_SCALES: Dict[str, Dict] = {
    "baidu-1": {},
    "baidu-2": {},
    "amazon": {"communities": 14, "community_size": 24},
    "dblp": {"communities": 12, "community_size": 32},
    "youtube": {"communities": 10, "community_size": 40},
    "livejournal": {"communities": 10, "community_size": 64},
    "orkut": {"communities": 8, "community_size": 128},
}
SMOKE_SCALES: Dict[str, Dict] = {
    "baidu-1": {},
    "baidu-2": {},
    "amazon": {"communities": 6, "community_size": 10},
    "dblp": {"communities": 6, "community_size": 12},
    "youtube": {"communities": 5, "community_size": 14},
    "livejournal": {"communities": 5, "community_size": 16},
    "orkut": {"communities": 4, "community_size": 20},
}
#: The largest (densest) Table-3 synthetic network; acceptance floors are
#: evaluated on it.
LARGEST = "orkut"
FLOORS = {"butterfly": 3.0, "kcore_sweep": 2.0, "bfs_sweep": 2.0}
SEED = 2021
MAX_SWEEP_KS = 24
MAX_BFS_SOURCES = 100


def best_of(fn: Callable[[], object], repeats: int) -> float:
    """Return the best wall time of ``repeats`` runs of ``fn`` (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_network(name: str, kwargs: Dict, repeats: int) -> Dict:
    """Time old-vs-new kernels on one Table-3 network; assert exact parity."""
    bundle = load_dataset(name, seed=SEED, **kwargs)
    graph = bundle.graph
    label_a, label_b = sorted(graph.labels(), key=str)[:2]
    view = extract_label_bipartite(graph, label_a, label_b)
    row: Dict = {
        "num_vertices": graph.num_vertices(),
        "num_edges": graph.num_edges(),
        "bipartite_edges": view.num_edges(),
    }

    # -- butterfly counting (Algorithm 3) -------------------------------
    def butterfly_old():
        return butterfly_degrees(view, backend="object")

    def butterfly_new():
        return butterfly_degrees(view, backend="csr")  # freeze included

    assert butterfly_new() == butterfly_old(), f"butterfly parity broke on {name}"
    row["butterfly"] = {
        "old_s": best_of(butterfly_old, repeats),
        "new_s": best_of(butterfly_new, repeats),
    }

    # -- k-core extraction sweep (Algorithm 2 / Fig. 8) -----------------
    coreness_values = sorted(set(core_decomposition(graph, backend="object").values()))
    if len(coreness_values) > MAX_SWEEP_KS:
        step = len(coreness_values) / MAX_SWEEP_KS
        coreness_values = [
            coreness_values[int(i * step)] for i in range(MAX_SWEEP_KS)
        ]
    ks = [k for k in coreness_values if k > 0] or [1]

    def kcore_old():
        return [k_core_vertices(graph, k, backend="object") for k in ks]

    def kcore_new():
        frozen = CSRGraph.freeze(graph)  # cold snapshot every run
        frozen.coreness()
        vertices = frozen.interner.vertices()
        return [
            set(compress(vertices, csr_k_core_alive(frozen, k))) for k in ks
        ]

    assert kcore_new() == kcore_old(), f"k-core parity broke on {name}"
    row["kcore_sweep"] = {
        "k_values": ks,
        "old_s": best_of(kcore_old, repeats),
        "new_s": best_of(kcore_new, repeats),
    }

    # -- single coreness decomposition (BCindex build step) -------------
    def coreness_old():
        return core_decomposition(graph, backend="object")

    def coreness_new():
        frozen = CSRGraph.freeze(graph)
        vertex_of = frozen.vertex_of
        return {vertex_of(i): c for i, c in enumerate(frozen.coreness())}

    assert coreness_new() == coreness_old(), f"coreness parity broke on {name}"
    row["coreness"] = {
        "old_s": best_of(coreness_old, repeats),
        "new_s": best_of(coreness_new, repeats),
    }

    # -- BFS distance sweep (Algorithms 1 and 5) ------------------------
    vertices = list(graph.vertices())
    stride = max(1, len(vertices) // MAX_BFS_SOURCES)
    sources = vertices[::stride][:MAX_BFS_SOURCES]

    def bfs_old():
        return [bfs_distances(graph, s, backend="object") for s in sources]

    def bfs_new():
        frozen = CSRGraph.freeze(graph)  # freeze amortized over the sweep
        vertex_of = frozen.vertex_of
        out = []
        for s in sources:
            dist = csr_bfs_distances(frozen, frozen.id_of(s))
            out.append({vertex_of(i): d for i, d in enumerate(dist) if d >= 0})
        return out

    assert bfs_new() == bfs_old(), f"BFS parity broke on {name}"
    row["bfs_sweep"] = {
        "sources": len(sources),
        "old_s": best_of(bfs_old, repeats),
        "new_s": best_of(bfs_new, repeats),
    }

    for metric in ("butterfly", "kcore_sweep", "coreness", "bfs_sweep"):
        cell = row[metric]
        cell["speedup"] = round(cell["old_s"] / cell["new_s"], 2) if cell["new_s"] else 0.0
    return row


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced scale, one repetition, parity-only (for CI)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repetitions (best-of)"
    )
    args = parser.parse_args(argv)

    scales = SMOKE_SCALES if args.smoke else FULL_SCALES
    repeats = args.repeats or (1 if args.smoke else 3)

    networks: Dict[str, Dict] = {}
    for name, kwargs in scales.items():
        started = time.perf_counter()
        networks[name] = bench_network(name, kwargs, repeats)
        print(
            f"[{name}] |V|={networks[name]['num_vertices']} "
            f"|E|={networks[name]['num_edges']} "
            f"({time.perf_counter() - started:.1f}s)"
        )

    largest = networks[LARGEST]
    floor_check = {
        metric: {
            "floor": floor,
            "speedup": largest[metric]["speedup"],
            "met": largest[metric]["speedup"] >= floor,
        }
        for metric, floor in FLOORS.items()
    }
    payload = {
        "mode": "smoke" if args.smoke else "full",
        "seed": SEED,
        "repeats": repeats,
        "largest_network": LARGEST,
        "networks": networks,
        "floor_check_on_largest": floor_check,
    }
    write_results(payload, RESULTS_PATH)

    header = f"{'network':<12} {'kernel':<12} {'old (ms)':>10} {'new (ms)':>10} {'speedup':>8}"
    print("\n" + header)
    print("-" * len(header))
    for name, row in networks.items():
        for metric in ("butterfly", "kcore_sweep", "coreness", "bfs_sweep"):
            cell = row[metric]
            print(
                f"{name:<12} {metric:<12} {cell['old_s'] * 1000:>10.2f} "
                f"{cell['new_s'] * 1000:>10.2f} {cell['speedup']:>7.2f}x"
            )
    print(f"\n[written to {RESULTS_PATH}]")

    if not args.smoke:
        for metric, check in floor_check.items():
            status = "OK" if check["met"] else "BELOW FLOOR"
            print(
                f"floor {metric} on {LARGEST}: {check['speedup']:.2f}x "
                f"(>= {check['floor']}x required) {status}"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
