"""Figure 10 (Exp-10): multi-labeled BCC search time vs. number of labels m.

Sweeps m = 2..4 on a multi-label Baidu-like network and a DBLP-M-like network
(the paper uses m up to 6 on larger graphs; the trend — slightly increasing
time with m, with the local method fastest — is what is reproduced here).
"""

from __future__ import annotations

import time
from typing import Dict

import pytest

from benchmarks.conftest import DEFAULT_SEED, write_result
from repro.core.multilabel import mbcc_search
from repro.datasets import generate_baidu_network, generate_snap_like
from repro.eval.queries import generate_multilabel_queries
from repro.eval.reporting import sweep_table

LABEL_COUNTS = (2, 3, 4)
QUERIES_PER_POINT = 2


@pytest.fixture(scope="module")
def multilabel_bundles():
    return {
        "baidu-1": generate_baidu_network(
            "baidu-1", seed=DEFAULT_SEED, project_labels=4
        ),
        "dblp-m": generate_snap_like(
            "dblp", seed=DEFAULT_SEED, num_labels=4, communities=10, community_size=16
        ),
    }


def sweep_label_count(bundle) -> Dict[str, Dict[int, float]]:
    series: Dict[str, Dict[int, float]] = {"mBCC (L2P framework)": {}}
    for m in LABEL_COUNTS:
        queries = generate_multilabel_queries(bundle, m, count=QUERIES_PER_POINT, seed=10)
        if not queries:
            continue
        start = time.perf_counter()
        for query in queries:
            mbcc_search(bundle.graph, list(query), b=1, max_iterations=100)
        series["mBCC (L2P framework)"][m] = (time.perf_counter() - start) / len(queries)
    return series


@pytest.fixture(scope="module")
def multilabel_time_series(multilabel_bundles):
    all_series = {}
    for name, bundle in multilabel_bundles.items():
        series = sweep_label_count(bundle)
        all_series[name] = series
        write_result(
            f"figure10_multilabel_time_{name}",
            sweep_table(
                series,
                parameter_name="number of query labels m",
                title=f"Figure 10 ({name}): mBCC query time (s) vs. m",
            ),
        )
    return all_series


def test_fig10_two_label_point_benchmark(multilabel_time_series, multilabel_bundles, benchmark):
    bundle = multilabel_bundles["baidu-1"]
    queries = generate_multilabel_queries(bundle, 2, count=1, seed=10)
    query = list(queries[0])
    result = benchmark(mbcc_search, bundle.graph, query, None, 1, True, 100)
    assert result is None or result.num_vertices() >= 2
    assert multilabel_time_series["baidu-1"]["mBCC (L2P framework)"]


def test_fig10_three_label_point_benchmark(multilabel_bundles, benchmark):
    bundle = multilabel_bundles["baidu-1"]
    queries = generate_multilabel_queries(bundle, 3, count=1, seed=11)
    if not queries:
        pytest.skip("no 3-label query available in this instance")
    query = list(queries[0])
    result = benchmark(mbcc_search, bundle.graph, query, None, 1, True, 100)
    assert result is None or len(result.groups) == 3
