"""Tracing unit tests: null-span surface, fake-clock trees, deadlines."""

from __future__ import annotations

import contextvars
import threading

import pytest

from repro.api.engine import run_with_deadline
from repro.exceptions import DeadlineExceededError
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import (
    Trace,
    Tracer,
    TRACER_COUNTER_NAMES,
    current_span,
    current_trace,
    format_trace,
    span,
)


# ----------------------------------------------------------------------
# disabled path: the shared null span
# ----------------------------------------------------------------------
class TestNullSpan:
    def test_span_without_active_trace_is_shared_noop(self):
        assert current_span() is None
        first = span("engine.kernel", method="online-bcc")
        second = span("something.else")
        assert first is second  # one shared object, no allocation per call

    def test_null_span_answers_the_whole_span_surface(self):
        with span("outer") as outer:
            # Call sites never branch on "is tracing on?": annotate/child/
            # finish all answer on the null object too.
            assert outer.annotate(status="ok") is outer
            assert outer.child("inner", worker=0) is outer
            assert outer.finish() is outer
            assert outer.attach_remote([{"name": "w"}]) is None
            assert current_span() is None  # the null span never activates

    def test_disabled_tracer_returns_noop_and_counts_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.trace("req-1", path="/x"):
            assert current_trace() is None
        assert tracer.counters_snapshot() == {
            name: 0 for name in TRACER_COUNTER_NAMES
        }


# ----------------------------------------------------------------------
# enabled path: trees on a fake clock
# ----------------------------------------------------------------------
class TestTraceTree:
    def test_nested_spans_build_a_timed_tree(self, clock):
        trace = Trace("req-7", clock=clock, path="/graphs/g/search")
        with trace:
            clock.advance(0.001)
            with span("engine.search", method="online-bcc") as search:
                clock.advance(0.002)
                with span("engine.kernel"):
                    clock.advance(0.003)
                search.annotate(status="ok")
            clock.advance(0.0005)

        doc = trace.to_dict()
        assert doc["request_id"] == "req-7"
        assert doc["duration_ms"] == pytest.approx(6.5)
        root = doc["spans"]
        assert root["name"] == "request"
        assert root["meta"] == {"path": "/graphs/g/search"}
        (search_doc,) = root["children"]
        assert search_doc["name"] == "engine.search"
        assert search_doc["start_ms"] == pytest.approx(1.0)
        assert search_doc["duration_ms"] == pytest.approx(5.0)
        assert search_doc["meta"] == {"method": "online-bcc", "status": "ok"}
        (kernel_doc,) = search_doc["children"]
        assert kernel_doc["duration_ms"] == pytest.approx(3.0)

    def test_span_context_activates_and_restores(self, clock):
        trace = Trace("req-8", clock=clock)
        with trace:
            assert current_span() is trace.root
            assert current_trace() is trace
            with span("phase") as phase:
                assert current_span() is phase
            assert current_span() is trace.root
        assert current_span() is None
        assert trace.finished

    def test_unfinished_span_is_cut_at_trace_end(self, clock):
        trace = Trace("req-9", clock=clock)
        with trace:
            trace.root.child("stuck")  # never finished by anyone
            clock.advance(0.004)
        clock.advance(10.0)  # time after the trace must not leak in

        (stuck_doc,) = trace.to_dict()["spans"]["children"]
        assert stuck_doc["unfinished"] is True
        assert stuck_doc["duration_ms"] == pytest.approx(4.0)

    def test_attach_remote_grafts_worker_payloads(self, clock):
        trace = Trace("req-10", clock=clock)
        with trace:
            row = trace.root.child("row", worker=0)
            row.attach_remote([{"name": "worker", "duration_ms": 1.5}])
            row.attach_remote("garbage")  # non-list payloads are ignored
            row.attach_remote([17, {"name": "worker2"}])  # non-dict rows too
            row.finish()

        (row_doc,) = trace.to_dict()["spans"]["children"]
        names = [child["name"] for child in row_doc["children"]]
        assert names == ["worker", "worker2"]

    def test_trace_context_survives_an_explicit_context_hop(self, clock):
        # Fresh threads do not inherit contextvars; the serving stack
        # carries them across with copy_context().run — same mechanism,
        # asserted without a real thread.
        trace = Trace("req-11", clock=clock)
        seen = {}

        def hop():
            with span("hopped"):
                seen["span"] = current_span().name

        with trace:
            context = contextvars.copy_context()
        context.run(hop)
        assert seen["span"] == "hopped"
        assert [c["name"] for c in trace.to_dict()["spans"]["children"]] == [
            "hopped"
        ]


# ----------------------------------------------------------------------
# the tracer switchboard + slow-log handoff
# ----------------------------------------------------------------------
class TestTracer:
    def test_enabled_tracer_counts_and_retains_slow_traces(self, clock):
        slow_log = SlowQueryLog(threshold_ms=3.0, capacity=4)
        tracer = Tracer(enabled=True, clock=clock, slow_log=slow_log)

        with tracer.trace("fast"):
            clock.advance(0.001)  # 1ms < 3ms: not retained
        with tracer.trace("slow"):
            clock.advance(0.010)  # 10ms >= 3ms: retained

        assert tracer.counters_snapshot() == {
            "traces_started": 2,
            "traces_finished": 2,
            "traces_retained": 1,
        }
        (entry,) = slow_log.snapshot()
        assert entry["request_id"] == "slow"

    def test_enable_disable_round_trip(self):
        tracer = Tracer()
        assert not tracer.enabled
        assert tracer.enable().enabled
        assert not tracer.disable().enabled


# ----------------------------------------------------------------------
# the acceptance path: a deadline-exceeded trace names the culprit
# ----------------------------------------------------------------------
class TestDeadlineTrace:
    def test_deadline_exceeded_trace_shows_budget_consuming_span(self):
        release = threading.Event()

        def stuck_kernel():
            with span("engine.kernel", method="online-bcc"):
                release.wait(10.0)

        trace = Trace("req-dl")
        with trace:
            with pytest.raises(DeadlineExceededError):
                run_with_deadline(stuck_kernel, 0.05, what="row:online-bcc")

        # Snapshot before releasing the abandoned worker: the kernel span
        # is deterministically still open here.
        doc = trace.to_dict()
        release.set()

        (deadline_doc,) = doc["spans"]["children"]
        assert deadline_doc["name"] == "deadline"
        assert deadline_doc["meta"]["exceeded"] is True
        assert deadline_doc["meta"]["budget_ms"] == pytest.approx(50.0)
        (kernel_doc,) = deadline_doc["children"]
        assert kernel_doc["name"] == "engine.kernel"
        assert kernel_doc["unfinished"] is True

    def test_deadline_without_budget_runs_inline_and_unspanned(self, clock):
        trace = Trace("req-inline", clock=clock)
        with trace:
            assert run_with_deadline(lambda: 41 + 1, None) == 42
        assert "children" not in trace.to_dict()["spans"]


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
class TestFormatTrace:
    def test_renders_an_indented_tree_with_markers(self, clock):
        trace = Trace("req-fmt", clock=clock)
        with trace:
            clock.advance(0.001)
            with span("engine.search", method="online-bcc"):
                trace.root.child("stuck")
                clock.advance(0.002)

        text = format_trace(trace.to_dict())
        lines = text.splitlines()
        assert lines[0].startswith("request req-fmt")
        assert lines[1].lstrip().startswith("request")
        assert any(
            line.lstrip().startswith("engine.search")
            and "method='online-bcc'" in line
            for line in lines
        )
        assert any("(unfinished)" in line for line in lines)
        # children indent one level deeper than their parent
        search_line = next(l for l in lines if "engine.search" in l)
        root_line = lines[1]
        indent = len(search_line) - len(search_line.lstrip())
        assert indent > len(root_line) - len(root_line.lstrip())
