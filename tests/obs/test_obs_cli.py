"""``python -m repro.obs`` CLI and the Observability bundle glue."""

from __future__ import annotations

import json

from repro.obs import Observability
from repro.obs.__main__ import main
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import Trace


def slow_document(clock):
    """A ``/debug/slow``-shaped document with one deterministic trace."""
    log = SlowQueryLog(threshold_ms=0.0)
    trace = Trace("req-cli", clock=clock)
    with trace:
        with trace.root.child("engine.search", method="online-bcc"):
            clock.advance(0.002)
    log.offer(trace)
    return log.payload()


class TestCli:
    def test_renders_slow_log_document_from_file(self, tmp_path, clock, capsys):
        path = tmp_path / "slow.json"
        path.write_text(json.dumps(slow_document(clock)), encoding="utf-8")
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "slow-query log: 1 retained" in out
        assert "threshold 0.0ms" in out
        assert "request req-cli" in out
        assert "engine.search" in out
        assert "method='online-bcc'" in out

    def test_accepts_bare_trace_and_list_shapes(self, tmp_path, clock, capsys):
        document = slow_document(clock)
        path = tmp_path / "one.json"
        path.write_text(json.dumps(document["traces"][0]), encoding="utf-8")
        assert main([str(path)]) == 0
        assert "request req-cli" in capsys.readouterr().out

        path.write_text(json.dumps(document["traces"]), encoding="utf-8")
        assert main([str(path)]) == 0
        assert "request req-cli" in capsys.readouterr().out

    def test_limit_and_empty_document(self, tmp_path, clock, capsys):
        document = slow_document(clock)
        document["traces"] = []
        document["retained"] = 0
        path = tmp_path / "empty.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        assert main([str(path), "--limit", "3"]) == 0
        assert "no traces retained" in capsys.readouterr().out


class TestObservabilityBundle:
    def test_default_bundle_is_metrics_on_tracing_off(self):
        obs = Observability()
        assert not obs.tracer.enabled
        block = obs.trace_block()
        assert block["enabled"] is False
        assert block["slow_retained"] == 0
        assert block["counters"]["traces_started"] == 0
        assert block["counters"]["slow_offered"] == 0

    def test_bundle_wires_tracer_into_slow_log_and_registry(self, clock):
        obs = Observability(trace=True, slow_threshold_ms=1.0, clock=clock)
        with obs.tracer.trace("req-slow"):
            clock.advance(0.010)
        assert len(obs.slow_log) == 1
        block = obs.trace_block()
        assert block["counters"]["traces_retained"] == 1
        assert block["counters"]["slow_retained"] == 1

        text = obs.registry.render_prometheus()
        assert "bcc_obs_tracer_traces_started_total 1" in text
        assert "bcc_obs_slowlog_retained 1" in text
        assert "bcc_obs_tracing_enabled 1" in text

    def test_metrics_block_is_the_registry_snapshot(self):
        obs = Observability()
        block = obs.metrics_block()
        assert "obs" in block["sources"]
        assert block["series"] > 0
        assert "bcc_obs_tracing_enabled" in block["names"]
