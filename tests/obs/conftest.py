"""Shared fixtures for the observability suite: fake clocks, trace builders.

Everything here runs on injected clocks (BCC002's whole point for the obs
package): span durations are exact arithmetic on a counter the test
advances, never wall clock.
"""

from __future__ import annotations

import pytest

from repro.obs.tracing import Trace


class FakeClock:
    """A monotonic counter the test advances by hand."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def make_trace(clock):
    """``make_trace(duration_ms)`` -> a finished fake-clock trace."""

    def _make(duration_ms: float, request_id: str = "req") -> Trace:
        trace = Trace(request_id, clock=clock)
        with trace:
            clock.advance(duration_ms / 1000.0)
        return trace

    return _make
