"""Slow-query log tests: threshold, ring eviction, payload shape."""

from __future__ import annotations

import pytest

from repro.obs.slowlog import SLOWLOG_COUNTER_NAMES, SlowQueryLog


class TestThreshold:
    def test_fast_traces_are_not_retained(self, make_trace):
        log = SlowQueryLog(threshold_ms=5.0)
        assert log.offer(make_trace(1.0)) is False
        assert len(log) == 0
        assert log.counters_snapshot() == {
            "slow_offered": 1,
            "slow_retained": 0,
            "slow_evicted": 0,
        }

    def test_slow_traces_are_retained_as_documents(self, make_trace):
        log = SlowQueryLog(threshold_ms=5.0)
        trace = make_trace(9.0, request_id="slow-1")
        assert log.offer(trace) is True
        (entry,) = log.snapshot()
        assert entry["request_id"] == "slow-1"
        assert entry["duration_ms"] == pytest.approx(9.0)
        assert entry["seq"] == 1
        # The document is a detached copy, not the live trace object.
        assert entry is not trace.to_dict()

    def test_threshold_is_adjustable_at_runtime(self, make_trace):
        log = SlowQueryLog(threshold_ms=1000.0)
        assert log.offer(make_trace(9.0)) is False
        log.set_threshold_ms(0.0)
        assert log.offer(make_trace(0.0)) is True
        assert log.threshold_ms == 0.0


class TestRing:
    def test_capacity_bounds_retention_and_counts_evictions(self, make_trace):
        log = SlowQueryLog(threshold_ms=0.0, capacity=2)
        for index in range(3):
            log.offer(make_trace(1.0, request_id=f"req-{index}"))
        assert len(log) == 2
        counters = log.counters_snapshot()
        assert counters["slow_retained"] == 3
        assert counters["slow_evicted"] == 1
        # Newest first; the oldest (req-0) was evicted.
        assert [e["request_id"] for e in log.snapshot()] == ["req-2", "req-1"]
        assert [e["seq"] for e in log.snapshot()] == [3, 2]

    def test_snapshot_limit(self, make_trace):
        log = SlowQueryLog(threshold_ms=0.0, capacity=8)
        for index in range(4):
            log.offer(make_trace(1.0, request_id=f"req-{index}"))
        assert [e["request_id"] for e in log.snapshot(limit=2)] == [
            "req-3",
            "req-2",
        ]
        assert log.snapshot(limit=0) == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_clear_drops_entries_but_keeps_counters(self, make_trace):
        log = SlowQueryLog(threshold_ms=0.0)
        log.offer(make_trace(1.0))
        log.clear()
        assert len(log) == 0
        assert log.counters_snapshot()["slow_retained"] == 1


class TestPayload:
    def test_debug_endpoint_document_shape(self, make_trace):
        log = SlowQueryLog(threshold_ms=2.0, capacity=16)
        log.offer(make_trace(3.0, request_id="kept"))
        payload = log.payload()
        assert payload["threshold_ms"] == 2.0
        assert payload["capacity"] == 16
        assert payload["retained"] == 1
        assert set(payload["counters"]) == set(SLOWLOG_COUNTER_NAMES)
        assert payload["traces"][0]["request_id"] == "kept"
