"""Metrics registry tests: manifest coverage, collection, exposition."""

from __future__ import annotations

import re

import pytest

from repro.api.engine import ENGINE_COUNTER_NAMES
from repro.obs.metrics import (
    EXPORTED_COUNTERS,
    MetricsRegistry,
    REGISTRY_COUNTER_NAMES,
    Sample,
    counter_samples,
)
from repro.obs.slowlog import SLOWLOG_COUNTER_NAMES
from repro.obs.tracing import TRACER_COUNTER_NAMES
from repro.parallel.pool import POOL_COUNTER_NAMES
from repro.store.store import STORE_COUNTER_NAMES

#: One exposition line: ``name{labels} value`` or ``name value``.
EXPOSITION_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"  # optional label set
    r" -?[0-9]"  # a numeric value follows
)


def assert_valid_exposition(text: str) -> None:
    """Every line is a comment or a well-formed sample row."""
    assert text.endswith("\n")
    for line in text.rstrip("\n").splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert EXPOSITION_LINE.match(line), f"malformed exposition line: {line!r}"


# ----------------------------------------------------------------------
# the manifest
# ----------------------------------------------------------------------
class TestExportedCounters:
    def test_manifest_covers_every_live_counter_name_tuple(self):
        declared = set(EXPORTED_COUNTERS)
        for names in (
            ENGINE_COUNTER_NAMES,
            POOL_COUNTER_NAMES,
            STORE_COUNTER_NAMES,
            TRACER_COUNTER_NAMES,
            SLOWLOG_COUNTER_NAMES,
            REGISTRY_COUNTER_NAMES,
        ):
            missing = set(names) - declared
            assert not missing, f"undeclared counters: {sorted(missing)}"

    def test_manifest_matches_what_the_checker_reads(self):
        # The BCC006 checker parses the assignment lexically; the live
        # frozenset and the parsed literal must be the same set.
        import ast
        import inspect

        import repro.obs.metrics as metrics_mod
        from repro.analysis.checkers.metrics_coverage import declared_counters

        tree = ast.parse(inspect.getsource(metrics_mod))
        assert declared_counters(tree) == EXPORTED_COUNTERS


# ----------------------------------------------------------------------
# counter_samples
# ----------------------------------------------------------------------
class TestCounterSamples:
    def test_names_values_and_labels(self):
        samples = counter_samples(
            "engine",
            {"searches": 3, "hits": 0},
            labels={"graph": "paper"},
            help="engine counters",
        )
        assert [s.name for s in samples] == [
            "bcc_engine_hits_total",
            "bcc_engine_searches_total",
        ]
        by_name = {s.name: s for s in samples}
        assert by_name["bcc_engine_searches_total"].value == 3.0
        assert by_name["bcc_engine_searches_total"].labels == (
            ("graph", "paper"),
        )
        assert all(s.kind == "counter" for s in samples)

    def test_non_numeric_and_bool_values_are_skipped(self):
        samples = counter_samples(
            "pool", {"alive": True, "pid": 123, "state": "up"}
        )
        assert [s.name for s in samples] == ["bcc_pool_pid_total"]

    def test_hostile_key_is_sanitized(self):
        (sample,) = counter_samples("x", {"bad key!": 1})
        assert sample.name == "bcc_x_bad_key__total"


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_owned_metrics_collect_and_are_idempotent_per_name(self):
        registry = MetricsRegistry()
        counter = registry.counter("bcc_test_ops_total", help="ops")
        counter.inc()
        counter.inc(2.0)
        assert registry.counter("bcc_test_ops_total") is counter
        gauge = registry.gauge("bcc_test_depth")
        gauge.set(7.0)
        histogram = registry.histogram(
            "bcc_test_latency_seconds", bounds=(0.1, 1.0)
        )
        histogram.observe(0.05)

        by_name = {s.name: s for s in registry.collect()}
        assert by_name["bcc_test_ops_total"].value == 3.0
        assert by_name["bcc_test_depth"].value == 7.0
        assert by_name["bcc_test_latency_seconds"].histogram["count"] == 1

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("bcc_test_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_name_collision_across_kinds_raises(self):
        registry = MetricsRegistry()
        registry.counter("bcc_test_thing")
        with pytest.raises(TypeError):
            registry.gauge("bcc_test_thing")

    def test_sources_collect_in_registration_order(self):
        registry = MetricsRegistry()
        registry.register_source("b", lambda: [Sample(name="bcc_from_b")])
        registry.register_counters("a", "layer_a", lambda: {"ticks": 2})
        names = [s.name for s in registry.collect()]
        assert names.index("bcc_from_b") < names.index(
            "bcc_layer_a_ticks_total"
        )
        assert registry.sources() == ["b", "a"]

    def test_raising_source_is_skipped_and_counted(self):
        registry = MetricsRegistry()
        registry.register_source("good", lambda: [Sample(name="bcc_good")])

        def broken():
            raise RuntimeError("snapshot exploded")

        registry.register_source("broken", broken)
        names = [s.name for s in registry.collect()]
        assert "bcc_good" in names  # one bad source never hides the rest
        assert registry.counters_snapshot() == {"scrapes": 1, "source_errors": 1}
        registry.collect()
        assert registry.counters_snapshot() == {"scrapes": 2, "source_errors": 2}

    def test_unregister_source(self):
        registry = MetricsRegistry()
        registry.register_source("gone", lambda: [Sample(name="bcc_gone")])
        registry.unregister_source("gone")
        assert "bcc_gone" not in [s.name for s in registry.collect()]

    def test_snapshot_is_a_summary_not_the_samples(self):
        registry = MetricsRegistry()
        registry.register_counters("layer", "layer", lambda: {"ticks": 1})
        snapshot = registry.snapshot()
        assert snapshot["sources"] == ["layer"]
        assert snapshot["series"] == len(snapshot["names"]) == 3
        assert snapshot["names"] == sorted(snapshot["names"])
        assert snapshot["counters"]["scrapes"] == 1


# ----------------------------------------------------------------------
# text exposition
# ----------------------------------------------------------------------
class TestPrometheusRendering:
    def test_help_type_and_value_lines(self):
        registry = MetricsRegistry()
        registry.counter("bcc_test_ops_total", help="operations\nserved").inc()
        text = registry.render_prometheus()
        assert "# HELP bcc_test_ops_total operations\\nserved" in text
        assert "# TYPE bcc_test_ops_total counter" in text
        assert "\nbcc_test_ops_total 1\n" in text
        assert_valid_exposition(text)

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("bcc_test_depth", graph='pa"per\\x').set(1.0)
        text = registry.render_prometheus()
        assert 'bcc_test_depth{graph="pa\\"per\\\\x"} 1' in text

    def test_histogram_buckets_are_cumulated_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "bcc_test_latency_seconds", bounds=(0.1, 1.0)
        )
        for seconds in (0.05, 0.5, 5.0):
            histogram.observe(seconds)
        text = registry.render_prometheus()
        # per-bucket counts 1/1/1 cumulate to 1/2/3
        assert 'bcc_test_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'bcc_test_latency_seconds_bucket{le="1"} 2' in text
        assert 'bcc_test_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "bcc_test_latency_seconds_sum 5.55" in text
        assert "bcc_test_latency_seconds_count 3" in text
        assert_valid_exposition(text)

    def test_registry_self_counters_are_exposed(self):
        text = MetricsRegistry().render_prometheus()
        assert "bcc_obs_registry_scrapes_total 1" in text
        assert "bcc_obs_registry_source_errors_total 0" in text
