"""Span-tree parity: the process transport traces the same logical shape.

One batch served through ``backend="process"`` and through the threaded
path must tell the same timing story at the dispatch level — one
``batch`` span whose ``row`` children carry the same methods — with only
the transport annotation (and the workers' own remote subtrees) differing.
An operator reading a slow-query trace should not have to know which
transport served it to navigate the tree.
"""

from __future__ import annotations

import random

import pytest

from repro.api import BCCEngine, Query, SearchConfig
from repro.graph.generators import random_labeled_graph
from repro.obs.tracing import Trace
from tests.obs.conftest import FakeClock

pytestmark = pytest.mark.parallel


@pytest.fixture(scope="module")
def parity_graph():
    rng = random.Random(2024)
    graph = random_labeled_graph(40, 0.2, ["A", "B"], seed=rng.randint(0, 999))
    assert any(True for _ in graph.cross_edges()), "needs a cross edge"
    return graph


def cross_pairs(graph, limit):
    pairs = []
    for u, v in graph.cross_edges():
        pairs.append((u, v))
        if len(pairs) >= limit:
            break
    return pairs


def find_spans(doc, name):
    """Every span dict named ``name`` in a trace document, depth-first."""
    found = []
    stack = [doc["spans"]]
    while stack:
        node = stack.pop()
        if node.get("name") == name:
            found.append(node)
        stack.extend(
            child for child in node.get("children", ())
            if isinstance(child, dict)
        )
    return found


def batch_shape(trace):
    """``(transport, sorted row methods)`` of the one batch span."""
    doc = trace.to_dict()
    (batch,) = find_spans(doc, "batch")
    rows = [c for c in batch.get("children", ()) if c.get("name") == "row"]
    methods = sorted(row.get("meta", {}).get("method") for row in rows)
    return batch["meta"]["transport"], len(rows), methods


def traced_batch(engine, queries, backend):
    trace = Trace("parity", clock=FakeClock())
    with trace:
        responses = engine.search_many(
            queries, max_workers=2, on_error="return", backend=backend
        )
    return trace, responses


def test_process_and_thread_batches_trace_the_same_logical_shape(
    parity_graph,
):
    queries = [
        Query("online-bcc", pair) for pair in cross_pairs(parity_graph, 4)
    ]
    engine = BCCEngine(parity_graph, config=SearchConfig(backend="csr"))
    engine.prepare()
    try:
        thread_trace, thread_responses = traced_batch(engine, queries, "csr")
        process_trace, process_responses = traced_batch(
            engine, queries, "process"
        )
    finally:
        engine.close_process_pool()

    # The answers agree (the transport is invisible) ...
    assert [r.status for r in process_responses] == [
        r.status for r in thread_responses
    ]

    # ... and so does the logical span tree: one batch, same row fan-out.
    thread_transport, thread_rows, thread_methods = batch_shape(thread_trace)
    process_transport, process_rows, process_methods = batch_shape(
        process_trace
    )
    assert thread_transport == "thread"
    assert process_transport == "process"
    assert process_rows == thread_rows == len(queries)
    assert process_methods == thread_methods


def test_process_rows_graft_remote_worker_spans(parity_graph):
    queries = [
        Query("online-bcc", pair) for pair in cross_pairs(parity_graph, 2)
    ]
    engine = BCCEngine(parity_graph, config=SearchConfig(backend="csr"))
    engine.prepare()
    try:
        trace, _ = traced_batch(engine, queries, "process")
    finally:
        engine.close_process_pool()

    rows = find_spans(trace.to_dict(), "row")
    assert rows, "process batch produced no row spans"
    worker_roots = [
        child
        for row in rows
        for child in row.get("children", ())
        if child.get("name") == "worker"
    ]
    # Every row's reply piggybacked the worker-side span tree.
    assert len(worker_roots) == len(rows)
    for remote in worker_roots:
        names = {c.get("name") for c in remote.get("children", ())}
        assert "engine.search" in names
