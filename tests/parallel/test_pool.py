"""ProcessWorkerPool: zero-copy transport, parity, deadlines, crash safety.

Everything here runs against real spawned worker processes — these tests
are the subsystem's ground truth, below the engine/serving integration in
``test_process_engine.py``.  The chaos cases SIGKILL live workers and
assert the batch still completes position-aligned with bounded wall
clock: a killed worker must cost at most its in-flight task, never a
hang.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.api import BCCEngine, Query, SearchConfig
from repro.exceptions import (
    DeadlineExceededError,
    VertexNotFoundError,
    WorkerCrashedError,
)
from repro.parallel import (
    ProcessBackendUnavailable,
    ProcessWorkerPool,
    attach_graph,
    export_graph,
    shared_memory_available,
)
from repro.server.protocol import encode_config, encode_response

pytestmark = pytest.mark.parallel


def cross_pairs(graph, limit):
    """Up to ``limit`` (left, right) cross-label query pairs."""
    pairs = []
    for u, v in graph.cross_edges():
        pairs.append((u, v))
        if len(pairs) >= limit:
            break
    return pairs

#: Generous wall-clock ceiling for "the batch never hangs" assertions —
#: orders of magnitude above the honest cost of these tiny batches, far
#: below any timeout a wedged gather would hit.
NO_HANG_SECONDS = 60.0


def canonical(response):
    """The wire payload minus timings: the value-for-value parity surface."""
    payload = encode_response(response)
    payload.pop("timings")
    return payload


class FirstDispatchKiller:
    """Fault hook: SIGKILL the worker handling the first dispatched task."""

    def __init__(self):
        self.fired = False
        self.killed_pid = None

    def on(self, site, **attrs):
        if site == "pool.dispatch" and not self.fired:
            self.fired = True
            self.killed_pid = attrs["pid"]
            os.kill(attrs["pid"], signal.SIGKILL)


def test_shared_memory_is_available_here():
    # The rest of the suite assumes the substrate; fail loudly if the
    # environment lost /dev/shm rather than skipping everything silently.
    assert shared_memory_available()


def test_export_attach_roundtrip(pair_graph):
    export = export_graph(pair_graph, encode_config(SearchConfig()))
    try:
        attachment = attach_graph(export.handle)
        try:
            thawed = attachment.graph
            assert thawed.num_vertices() == pair_graph.num_vertices()
            assert thawed.num_edges() == pair_graph.num_edges()
            assert thawed.has_frozen()
            for vertex in pair_graph.vertices():
                assert thawed.label(vertex) == pair_graph.label(vertex)
                assert set(thawed.neighbors(vertex)) == set(
                    pair_graph.neighbors(vertex)
                )
        finally:
            thawed._frozen = None
            attachment.release()
    finally:
        export.close()


def test_pool_parity_with_sequential_engine(pair_graph):
    engine = BCCEngine(pair_graph).prepare()
    queries = [
        Query("online-bcc", pair) for pair in cross_pairs(pair_graph, 6)
    ]
    expected = [engine.search(query) for query in queries]
    with ProcessWorkerPool(pair_graph, engine.config, workers=2) as pool:
        got = pool.run_batch([(q, None, None) for q in queries])
    assert [canonical(r) for r in got] == [canonical(r) for r in expected]


def test_caller_error_rows_are_position_aligned(pair_graph):
    engine = BCCEngine(pair_graph).prepare()
    pair = cross_pairs(pair_graph, 1)[0]
    queries = [
        Query("online-bcc", pair),
        Query("online-bcc", ("no-such-vertex", pair[1])),
        Query("definitely-not-a-method", pair),
        Query("online-bcc", pair),
    ]
    expected = engine.search_many(queries, on_error="return")
    with ProcessWorkerPool(pair_graph, engine.config, workers=2) as pool:
        got = pool.run_batch([(q, None, None) for q in queries])
    assert [canonical(r) for r in got] == [canonical(r) for r in expected]
    assert got[1].status == "error" and got[1].reason == "missing-query-vertex"
    assert got[2].status == "error" and got[2].reason == "unknown-method"


def test_caller_errors_raise_under_raise_policy(pair_graph):
    pair = cross_pairs(pair_graph, 1)[0]
    with ProcessWorkerPool(pair_graph, SearchConfig(), workers=1) as pool:
        with pytest.raises(VertexNotFoundError):
            pool.run_batch(
                [(Query("online-bcc", ("ghost", pair[1])), None, None)],
                on_error="raise",
            )
        # The pool survives the raise: later batches still serve.
        rows = pool.run_batch([(Query("online-bcc", pair), None, None)])
        assert rows[0].status in ("ok", "empty")


def test_deadline_becomes_error_row(slow_graph):
    pair = cross_pairs(slow_graph, 1)[0]
    # A deadline far below this graph's real query cost (~tens of ms):
    # the worker's own run_with_deadline trips and reports the row — no
    # kill involved.  use_cache=False so the second run can't be served
    # from the worker's result cache before the deadline engages.
    config = SearchConfig(deadline_ms=0.0001)
    with ProcessWorkerPool(slow_graph, SearchConfig(), workers=1) as pool:
        rows = pool.run_batch(
            [(Query("online-bcc", pair), config, None)], use_cache=False
        )
        assert rows[0].status == "error"
        assert rows[0].reason == "deadline-exceeded"
        with pytest.raises(DeadlineExceededError):
            pool.run_batch(
                [(Query("online-bcc", pair), config, None)],
                on_error="raise",
                use_cache=False,
            )


@pytest.mark.chaos
def test_sigkill_mid_batch_never_hangs(pair_graph):
    queries = [
        Query("online-bcc", pair) for pair in cross_pairs(pair_graph, 6)
    ]
    killer = FirstDispatchKiller()
    start = time.monotonic()
    with ProcessWorkerPool(
        pair_graph, SearchConfig(), workers=2, fault_plan=killer
    ) as pool:
        rows = pool.run_batch([(q, None, None) for q in queries])
        elapsed = time.monotonic() - start
        assert elapsed < NO_HANG_SECONDS
        assert len(rows) == len(queries)
        # The kill costs at most the one in-flight task; every other row
        # is a real answer.  (A kill that lands before the send is
        # detected as a broken pipe and the task is retried — zero rows.)
        errors = [r for r in rows if r.status == "error"]
        assert len(errors) <= 1
        for row in errors:
            assert row.reason == "worker-crashed"
        counters = pool.counters_snapshot()
        assert killer.fired
        assert counters["crashes"] >= 1
        assert counters["respawns"] >= 1
        assert counters["completed"] + counters["error_rows"] == len(queries)
        # The respawned worker serves the next batch like nothing happened.
        again = pool.run_batch([(queries[0], None, None)])
        assert again[0].status in ("ok", "empty")


@pytest.mark.chaos
def test_sigkill_under_raise_policy_raises_worker_crashed(pair_graph):
    queries = [
        Query("online-bcc", pair) for pair in cross_pairs(pair_graph, 4)
    ]
    killer = FirstDispatchKiller()
    with ProcessWorkerPool(
        pair_graph, SearchConfig(), workers=1, fault_plan=killer
    ) as pool:
        try:
            rows = pool.run_batch(
                [(q, None, None) for q in queries], on_error="raise"
            )
        except WorkerCrashedError as exc:
            assert exc.pid == killer.killed_pid
        else:
            # Pre-send kill: broken pipe, retried on the respawn — the
            # batch legitimately completes with no error at all.
            assert [r.status for r in rows] == ["ok"] * len(rows) or all(
                r.status in ("ok", "empty") for r in rows
            )
        assert pool.counters_snapshot()["respawns"] >= 1


def test_pinning_routes_every_task_to_its_worker(pair_graph):
    queries = [
        Query("online-bcc", pair) for pair in cross_pairs(pair_graph, 5)
    ]
    with ProcessWorkerPool(pair_graph, SearchConfig(), workers=2) as pool:
        pool.run_batch([(q, None, 1) for q in queries])
        stats = pool.stats()
        by_worker = {block["worker"]: block for block in stats["workers"]}
        assert by_worker[1]["dispatched"] == len(queries)
        assert by_worker[0]["dispatched"] == 0


def test_stats_shape_and_piggybacked_engine_counters(pair_graph):
    pair = cross_pairs(pair_graph, 1)[0]
    with ProcessWorkerPool(pair_graph, SearchConfig(), workers=2) as pool:
        pool.run_batch([(Query("online-bcc", pair), None, None)])
        stats = pool.stats()
        assert stats["size"] == 2
        assert set(stats["counters"]) == {
            "batches",
            "tasks",
            "completed",
            "error_rows",
            "crashes",
            "respawns",
            "deadline_kills",
            "stale_results",
        }
        assert stats["counters"]["batches"] == 1
        assert stats["counters"]["completed"] == 1
        pids = pool.worker_pids()
        assert len(pids) == 2 and all(isinstance(p, int) for p in pids)
        served = [b for b in stats["workers"] if b["engine"]]
        assert served, "the serving worker must piggyback engine counters"
        assert served[0]["engine"]["searches"] >= 1


def test_explain_round_trips_through_a_worker(pair_graph):
    pair = cross_pairs(pair_graph, 1)[0]
    reference = BCCEngine(pair_graph).prepare().explain(
        Query("online-bcc", pair)
    )
    with ProcessWorkerPool(pair_graph, SearchConfig(), workers=1) as pool:
        info = pool.explain(Query("online-bcc", pair), None)
    assert info["method"]["name"] == reference["method"]["name"]
    assert tuple(info["query"]) == tuple(reference["query"])
    assert info["resolved"].keys() == reference["resolved"].keys()


def test_snapshot_handle_attaches_without_shm(pair_graph, tmp_path):
    from repro.store.snapshot import persist_engine

    engine = BCCEngine(pair_graph).prepare()
    path = tmp_path / "pool.bccsnap"
    persist_engine(engine, path)
    pair = cross_pairs(pair_graph, 1)[0]
    expected = engine.search(Query("online-bcc", pair))
    with ProcessWorkerPool(
        pair_graph, engine.config, workers=1, snapshot_path=str(path)
    ) as pool:
        assert pool.handle.kind == "snapshot"
        assert not pool.handle.segments  # no shared-memory blocks at all
        rows = pool.run_batch([(Query("online-bcc", pair), None, None)])
    assert canonical(rows[0]) == canonical(expected)


def test_unavailable_substrate_raises_cleanly(pair_graph, monkeypatch):
    import repro.parallel.shm as shm

    def broken():
        raise ProcessBackendUnavailable("forced by test")

    monkeypatch.setattr(shm, "_probe_shared_memory", broken)
    monkeypatch.setattr(shm, "_AVAILABLE", None)
    with pytest.raises(ProcessBackendUnavailable):
        ProcessWorkerPool(pair_graph, SearchConfig(), workers=1)
    monkeypatch.setattr(shm, "_AVAILABLE", None)
