"""Process backend behind the serving seams: engine, sharded, replicas.

``test_pool.py`` proves the transport; this file proves the integration
contracts: ``backend="process"`` is invisible in answers (value-for-value
parity with the threaded path), the ``auto`` heuristic never engages on
shapes it cannot help, unavailability degrades with one warning and a
counter — never an error — and process-backed replica members live and
die inside the PR 6 health lifecycle.
"""

from __future__ import annotations

import os
import signal
import warnings

import pytest

import repro.api.engine as engine_mod
from repro.api import BCCEngine, Query, SearchConfig
from repro.exceptions import QueryError, WorkerCrashedError
from repro.parallel import ProcessEngine
from repro.serving import GraphDirectory, ShardedBCCEngine
from repro.server.replicas import ReplicaSet
from repro.server.protocol import encode_response

from tests.serving.conftest import random_multi_component_graph

pytestmark = pytest.mark.parallel


def cross_pairs(graph, limit):
    pairs = []
    for u, v in graph.cross_edges():
        pairs.append((u, v))
        if len(pairs) >= limit:
            break
    return pairs


def canonical(response):
    payload = encode_response(response)
    payload.pop("timings")
    return payload


@pytest.fixture()
def fresh_fallback_state(monkeypatch):
    """Reset the one-time-warning latch and the shm availability cache."""
    import repro.parallel.shm as shm

    monkeypatch.setattr(engine_mod, "_PROCESS_FALLBACK_WARNED", False)
    monkeypatch.setattr(shm, "_AVAILABLE", None)
    yield shm
    shm._AVAILABLE = None  # force a clean re-probe for later tests


# ----------------------------------------------------------------------
# ProcessEngine: the ServingEngine-shaped wrapper
# ----------------------------------------------------------------------
class TestProcessEngine:
    def test_search_and_explain_parity(self, pair_graph):
        reference = BCCEngine(pair_graph).prepare()
        pairs = cross_pairs(pair_graph, 3)
        with ProcessEngine(pair_graph, workers=1) as engine:
            assert engine.prepare() is engine
            assert engine.is_prepared()
            for pair in pairs:
                query = Query("online-bcc", pair)
                assert canonical(engine.search(query)) == canonical(
                    reference.search(query)
                )
            info = engine.explain(Query("online-bcc", pairs[0]))
            want = reference.explain(Query("online-bcc", pairs[0]))
            assert info["method"]["name"] == want["method"]["name"]

    def test_search_many_matches_serve_batch_semantics(self, pair_graph):
        reference = BCCEngine(pair_graph).prepare()
        pair = cross_pairs(pair_graph, 1)[0]
        queries = [
            Query("online-bcc", pair),
            Query("online-bcc", ("ghost", pair[1])),
            Query("no-such-method", pair),
        ]
        expected = reference.search_many(queries, on_error="return")
        with ProcessEngine(pair_graph, workers=2) as engine:
            got = engine.search_many(queries, on_error="return")
            assert [canonical(r) for r in got] == [
                canonical(r) for r in expected
            ]
            with pytest.raises(QueryError):
                engine.search_many(queries, on_error="sideways")
            with pytest.raises(QueryError):
                engine.search_many(queries, max_workers=0)

    def test_instrumentation_is_rejected_not_silently_dropped(
        self, pair_graph
    ):
        pair = cross_pairs(pair_graph, 1)[0]
        with ProcessEngine(pair_graph, workers=1) as engine:
            with pytest.raises(QueryError):
                engine.search(
                    Query("online-bcc", pair), instrumentation=object()
                )
            with pytest.raises(QueryError):
                engine.search_many(
                    [Query("online-bcc", pair)], instrumentation=object()
                )

    def test_counters_aggregate_across_workers(self, pair_graph):
        pairs = cross_pairs(pair_graph, 4)
        with ProcessEngine(pair_graph, workers=2) as engine:
            engine.search_many(
                [Query("online-bcc", p) for p in pairs], on_error="return"
            )
            counters = engine.counters_snapshot()
            assert counters["searches"] >= len(pairs)
            cache = engine.result_cache_info()
            assert set(cache) >= {"hits", "misses", "hit_rate", "capacity"}
            assert len(engine.worker_pids()) == 2


# ----------------------------------------------------------------------
# BCCEngine.search_many(backend="process")
# ----------------------------------------------------------------------
class TestEngineBackend:
    def test_explicit_process_backend_parity_and_counters(self, pair_graph):
        engine = BCCEngine(pair_graph)
        pair = cross_pairs(pair_graph, 1)[0]
        queries = [
            Query("online-bcc", p) for p in cross_pairs(pair_graph, 4)
        ] + [Query("no-such-method", pair)]
        expected = engine.search_many(queries, on_error="return")
        got = engine.search_many(
            queries, on_error="return", backend="process", max_workers=2
        )
        try:
            assert [canonical(r) for r in got] == [
                canonical(r) for r in expected
            ]
            counters = engine.counters_snapshot()
            assert counters["process_batches"] == 1
            assert counters["process_tasks"] == len(queries)
            assert counters["process_fallbacks"] == 0
            stats = engine.process_pool_stats()
            assert stats is not None and stats["size"] == 2
        finally:
            engine.close_process_pool()
        assert engine.process_pool_stats() is None
        # The pool respawns lazily on the next process batch.
        again = engine.search_many(
            queries[:2], on_error="return", backend="process"
        )
        try:
            assert [canonical(r) for r in again] == [
                canonical(r) for r in expected[:2]
            ]
        finally:
            engine.close_process_pool()

    def test_auto_never_engages_below_the_edge_floor(self, pair_graph):
        # pair_graph is far under PROCESS_AUTO_MIN_EDGES: auto must keep
        # the threaded path and never pay a pool spawn (or a fallback).
        assert pair_graph.num_edges() < engine_mod.PROCESS_AUTO_MIN_EDGES
        engine = BCCEngine(pair_graph)
        queries = [
            Query("online-bcc", p) for p in cross_pairs(pair_graph, 4)
        ]
        engine.search_many(queries, on_error="return", max_workers=4)
        assert engine.process_pool_stats() is None
        assert engine.counters_snapshot()["process_fallbacks"] == 0

    def test_unavailable_substrate_falls_back_with_one_warning(
        self, pair_graph, fresh_fallback_state
    ):
        shm = fresh_fallback_state

        def broken():
            from repro.parallel.shm import ProcessBackendUnavailable

            raise ProcessBackendUnavailable("forced by test")

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(shm, "_probe_shared_memory", broken)
            engine = BCCEngine(pair_graph)
            queries = [
                Query("online-bcc", p) for p in cross_pairs(pair_graph, 3)
            ]
            expected = engine.search_many(queries, on_error="return")
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                first = engine.search_many(
                    queries, on_error="return", backend="process"
                )
                second = engine.search_many(
                    queries, on_error="return", backend="process"
                )
            runtime = [
                w for w in caught if issubclass(w.category, RuntimeWarning)
            ]
            assert len(runtime) == 1  # warned once, not per batch
            assert "process backend unavailable" in str(runtime[0].message)
            for got in (first, second):
                assert [canonical(r) for r in got] == [
                    canonical(r) for r in expected
                ]
            assert engine.counters_snapshot()["process_fallbacks"] == 2
            assert engine.process_pool_stats() is None


# ----------------------------------------------------------------------
# ShardedBCCEngine: shard-pinned workers
# ----------------------------------------------------------------------
class TestShardedBackend:
    def test_process_parity_including_cross_shard_rows(self):
        graph, parts = random_multi_component_graph(90125, num_components=3)
        sharded = ShardedBCCEngine(graph)
        same_shard = cross_pairs(graph, 4)
        queries = [Query("online-bcc", p) for p in same_shard]
        # Cross-component row: answered parent-side, never dispatched.
        queries.append(Query("online-bcc", (parts[0][0], parts[1][0])))
        queries.append(Query("no-such-method", same_shard[0]))
        expected = sharded.search_many(queries, on_error="return")
        got = sharded.search_many(
            queries, on_error="return", backend="process", max_workers=2
        )
        try:
            assert [canonical(r) for r in got] == [
                canonical(r) for r in expected
            ]
            counters = sharded.counters_snapshot()
            assert counters["process_batches"] == 1
            # The cross-shard and unknown-method rows never went remote.
            assert counters["process_tasks"] == len(same_shard)
            stats = sharded.stats()
            assert stats.workers is not None
            assert "workers" in stats.to_dict()
        finally:
            sharded.close_process_pool()
        assert sharded.stats().workers is None


# ----------------------------------------------------------------------
# ReplicaSet: process-backed members
# ----------------------------------------------------------------------
class TestReplicaProcessMembers:
    def test_members_share_one_export_and_answer_identically(
        self, pair_graph
    ):
        reference = BCCEngine(pair_graph).prepare()
        pairs = cross_pairs(pair_graph, 4)
        with ReplicaSet(
            pair_graph, replicas=2, member_backend="process"
        ) as replica_set:
            assert replica_set.member_backend == "process"
            for pair in pairs:
                query = Query("online-bcc", pair)
                assert canonical(replica_set.search(query)) == canonical(
                    reference.search(query)
                )
            stats = replica_set.stats().to_dict()
            blocks = stats["replicas"]
            assert len(blocks) == 2
            for block in blocks:
                assert "workers" in block
                assert block["health"]["state"] == "ok"
        # close() is idempotent.
        replica_set.close()

    def test_worker_crashed_is_a_replica_failure_that_fails_over(
        self, pair_graph
    ):
        pair = cross_pairs(pair_graph, 1)[0]
        query = Query("online-bcc", pair)
        with ReplicaSet(
            pair_graph, replicas=2, member_backend="process"
        ) as replica_set:
            expected = canonical(replica_set.search(query))
            victim = replica_set.replica_engine(0)
            real_search = victim.search
            fired = {"n": 0}

            def crash_once(*args, **kwargs):
                if fired["n"] == 0:
                    fired["n"] += 1
                    raise WorkerCrashedError(worker=0, pid=12345)
                return real_search(*args, **kwargs)

            victim.search = crash_once
            try:
                # Replica 0 is least-loaded and claims the query; the
                # crash is a non-caller error, so the set fails over.
                response = replica_set.search(query, use_cache=False)
            finally:
                victim.search = real_search
            assert fired["n"] == 1
            assert canonical(response) == expected
            counters = replica_set.counters_snapshot()
            assert counters["failovers"] >= 1
            assert counters["replica_failures"] >= 1
            assert (
                replica_set.replica_health(0).snapshot()[
                    "consecutive_failures"
                ]
                >= 1
            )

    @pytest.mark.chaos
    def test_killed_member_process_respawns_transparently(self, pair_graph):
        pair = cross_pairs(pair_graph, 1)[0]
        query = Query("online-bcc", pair)
        with ReplicaSet(
            pair_graph, replicas=2, member_backend="process"
        ) as replica_set:
            expected = canonical(replica_set.search(query))
            victim = replica_set.replica_engine(0)
            victim.prepare()
            os.kill(victim.worker_pids()[0], signal.SIGKILL)
            # An idle-killed worker is detected at the next send (broken
            # pipe), respawned, and the task retried: the caller sees a
            # correct answer, not an error.
            for _ in range(4):
                got = replica_set.search(query, use_cache=False)
                assert canonical(got) == expected
            counters = victim.worker_stats()["counters"]
            assert counters["crashes"] >= 1
            assert counters["respawns"] >= 1


# ----------------------------------------------------------------------
# GraphDirectory wiring
# ----------------------------------------------------------------------
class TestDirectory:
    def test_add_process_replicas_and_remove_closes_them(self, pair_graph):
        directory = GraphDirectory()
        engine = directory.add(
            "demo", pair_graph, replicas=2, member_backend="process"
        )
        assert isinstance(engine, ReplicaSet)
        assert engine.member_backend == "process"
        pair = cross_pairs(pair_graph, 1)[0]
        response = directory.get("demo").search(Query("online-bcc", pair))
        assert response.status in ("ok", "empty")
        directory.remove("demo")
        assert "demo" not in directory
        # remove() closed the members: their pools refuse new batches.
        with pytest.raises(RuntimeError):
            engine.replica_engine(0).search(Query("online-bcc", pair))
