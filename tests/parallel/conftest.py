"""Shared fixtures for the process-backend suite.

Worker processes are spawned (not forked), so every pool start pays a
Python interpreter + import of ``repro`` per worker.  Fixtures are
module-scoped where safe to amortize that; tests that kill or otherwise
ruin workers build their own throwaway pools.
"""

from __future__ import annotations

import random

import pytest

from repro.graph.generators import random_labeled_graph


@pytest.fixture(scope="module")
def pair_graph():
    """A two-label graph dense enough to always have cross edges."""
    rng = random.Random(4242)
    graph = random_labeled_graph(40, 0.2, ["A", "B"], seed=rng.randint(0, 999))
    assert any(True for _ in graph.cross_edges()), "needs a cross edge"
    return graph


@pytest.fixture(scope="module")
def slow_graph():
    """A graph whose searches cost real wall clock (tens of ms).

    Deadline tests need the kernel to *outlast* the deadline by more
    than a GIL switch interval — on a tiny graph the search thread can
    finish inside ``Thread.start()``'s startup slice and the deadline
    never fires, regardless of how small ``deadline_ms`` is.
    """
    graph = random_labeled_graph(400, 0.04, ["A", "B"], seed=7)
    assert any(True for _ in graph.cross_edges()), "needs a cross edge"
    return graph
