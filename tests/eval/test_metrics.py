"""Unit tests for the evaluation metrics."""

from __future__ import annotations

import pytest

from repro.eval.metrics import (
    average_f1,
    community_core_levels,
    describe_community,
    f1_score,
    precision,
    recall,
)
from repro.graph.generators import paper_example_graph


class TestF1:
    def test_perfect_match(self):
        assert f1_score({1, 2, 3}, {1, 2, 3}) == 1.0
        assert precision({1, 2, 3}, {1, 2, 3}) == 1.0
        assert recall({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_no_overlap(self):
        assert f1_score({1, 2}, {3, 4}) == 0.0

    def test_partial_overlap(self):
        # found = {1,2,3,4}, truth = {3,4,5,6}: prec = rec = 0.5 -> F1 = 0.5.
        assert f1_score({1, 2, 3, 4}, {3, 4, 5, 6}) == pytest.approx(0.5)

    def test_precision_recall_tradeoff(self):
        found = {1, 2}
        truth = {1, 2, 3, 4}
        assert precision(found, truth) == 1.0
        assert recall(found, truth) == 0.5
        assert f1_score(found, truth) == pytest.approx(2 / 3)

    def test_empty_sets(self):
        assert f1_score(set(), {1}) == 0.0
        assert f1_score({1}, set()) == 0.0
        assert precision(set(), {1}) == 0.0
        assert recall({1}, set()) == 0.0

    def test_accepts_any_iterable(self):
        assert f1_score([1, 2, 2], (1, 2)) == 1.0

    def test_average_f1(self):
        assert average_f1([1.0, 0.5, 0.0]) == pytest.approx(0.5)
        assert average_f1([]) == 0.0


class TestCommunityDescription:
    def community(self):
        g = paper_example_graph()
        return g.induced_subgraph(
            {"ql", "v1", "v2", "v3", "v4", "v5", "qr", "u1", "u2", "u3"}
        )

    def test_describe_community(self):
        report = describe_community(self.community())
        assert report.num_vertices == 10
        assert report.label_sizes == {"SE": 6, "UI": 4}
        assert report.min_intra_degree["SE"] == 4
        assert report.min_intra_degree["UI"] == 3
        assert report.total_butterflies == 1
        assert report.max_butterfly_degree == 1
        assert report.diameter <= 4
        assert report.as_dict()["num_edges"] == report.num_edges

    def test_core_levels(self):
        levels = community_core_levels(self.community())
        assert levels == {"SE": 4, "UI": 3}

    def test_describe_single_label_community(self):
        g = paper_example_graph().label_induced_subgraph("PM")
        report = describe_community(g)
        assert report.total_butterflies == 0
        assert list(report.label_sizes) == ["PM"]
