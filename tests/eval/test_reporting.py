"""Unit tests for reporting / table formatting and instrumentation."""

from __future__ import annotations

import math

import pytest

from repro.eval.harness import MethodSummary
from repro.eval.instrumentation import SearchInstrumentation
from repro.eval.reporting import (
    breakdown_table,
    figure_table,
    format_float,
    grid_table,
    speedup,
    summaries_to_grid,
    sweep_table,
)


class TestFormatting:
    def test_format_float(self):
        assert format_float(0) == "0"
        assert format_float(0.5) == "0.5000"
        assert format_float(1.23456789, digits=2) == "1.23"
        assert "e" in format_float(1e-9)

    def test_grid_table_contains_all_cells(self):
        table = grid_table(
            ["r1", "r2"],
            ["c1", "c2"],
            {"r1": {"c1": 1.0, "c2": 2.0}, "r2": {"c1": 3.0}},
            title="demo",
        )
        assert "demo" in table
        assert "1.0000" in table and "3.0000" in table
        assert "-" in table  # the missing r2/c2 cell

    def test_sweep_table(self):
        table = sweep_table(
            {"L2P-BCC": {2: 0.1, 3: 0.2}, "Online-BCC": {2: 0.4, 3: 0.5}},
            parameter_name="k",
            title="Figure 8",
        )
        assert "Figure 8" in table and "k" in table
        assert "0.4000" in table

    def test_breakdown_table(self):
        table = breakdown_table(
            {
                "Query distance calculation": {"Online-BCC": 1.5, "LP-BCC": 0.7},
                "#butterfly counting": {"Online-BCC": 30, "LP-BCC": 1},
            },
            title="Table 4",
        )
        assert "Table 4" in table
        assert "Query distance calculation" in table

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == math.inf
        assert speedup(0.0, 0.0) == 1.0


class TestSummaryGrids:
    def make_summaries(self):
        return {
            "baidu-1": {
                "PSA": MethodSummary("PSA", "baidu-1", 5, 5, 0.4, 0.01),
                "L2P-BCC": MethodSummary("L2P-BCC", "baidu-1", 5, 5, 0.9, 0.002),
            },
            "dblp": {
                "PSA": MethodSummary("PSA", "dblp", 5, 5, 0.5, 0.02),
                "L2P-BCC": MethodSummary("L2P-BCC", "dblp", 5, 5, 0.8, 0.004),
            },
        }

    def test_summaries_to_grid(self):
        grid = summaries_to_grid(self.make_summaries(), metric="avg_f1")
        assert grid["L2P-BCC"]["baidu-1"] == 0.9
        assert grid["PSA"]["dblp"] == 0.5

    def test_figure_table(self):
        text = figure_table(
            self.make_summaries(), metric="avg_seconds", title="Figure 5"
        )
        assert "Figure 5" in text
        assert "baidu-1" in text and "dblp" in text
        assert "L2P-BCC" in text and "PSA" in text


class TestInstrumentation:
    def test_counters_and_timers(self):
        inst = SearchInstrumentation()
        inst.record_butterfly_counting()
        inst.record_butterfly_counting(3)
        inst.record_iteration(deleted=5)
        with inst.time_query_distance():
            pass
        with inst.time_leader_update():
            pass
        with inst.time_total():
            pass
        inst.add("custom", 2.0)
        payload = inst.as_dict()
        assert payload["butterfly_counting_calls"] == 4
        assert payload["iterations"] == 1
        assert payload["vertices_deleted"] == 5
        assert payload["custom"] == 2.0
        assert payload["query_distance_seconds"] >= 0

    def test_merge(self):
        a = SearchInstrumentation(butterfly_counting_calls=2)
        b = SearchInstrumentation(butterfly_counting_calls=3, iterations=1)
        b.add("x", 1.0)
        a.merge(b)
        assert a.butterfly_counting_calls == 5
        assert a.iterations == 1
        assert a.extra["x"] == 1.0

    def test_reset(self):
        inst = SearchInstrumentation(butterfly_counting_calls=7)
        inst.add("x", 1.0)
        inst.reset()
        assert inst.butterfly_counting_calls == 0
        assert inst.extra == {}
