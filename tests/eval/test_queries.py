"""Unit tests for the query-workload generators (Section 8 parameters)."""

from __future__ import annotations

import pytest

from repro.eval.queries import (
    QuerySpec,
    degree_rank_threshold,
    eligible_vertices,
    generate_multilabel_queries,
    generate_query_pairs,
)
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.traversal import distance_between


class TestQuerySpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuerySpec(degree_rank=0.0)
        with pytest.raises(ValueError):
            QuerySpec(degree_rank=1.5)
        with pytest.raises(ValueError):
            QuerySpec(inter_distance=0)
        with pytest.raises(ValueError):
            QuerySpec(count=0)

    def test_defaults_match_paper(self):
        spec = QuerySpec()
        assert spec.degree_rank == 0.8
        assert spec.inter_distance == 1


class TestDegreeRank:
    def star_graph(self) -> LabeledGraph:
        g = LabeledGraph()
        g.add_vertex("hub", label="A")
        for i in range(9):
            g.add_vertex(i, label="B")
            g.add_edge("hub", i)
        return g

    def test_threshold(self):
        g = self.star_graph()
        # 90% of vertices have degree 1; the hub has degree 9.
        assert degree_rank_threshold(g, 0.8) == 1
        assert degree_rank_threshold(g, 0.95) == 9

    def test_eligible_vertices(self):
        g = self.star_graph()
        assert set(eligible_vertices(g, 0.95)) == {"hub"}
        assert len(eligible_vertices(g, 0.5)) == 10

    def test_empty_graph(self):
        assert degree_rank_threshold(LabeledGraph(), 0.8) == 0


class TestGenerateQueryPairs:
    def test_pairs_have_distinct_labels(self, tiny_baidu_bundle):
        pairs = generate_query_pairs(tiny_baidu_bundle, QuerySpec(count=5), seed=1)
        assert pairs
        graph = tiny_baidu_bundle.graph
        for q_left, q_right in pairs:
            assert graph.label(q_left) != graph.label(q_right)

    def test_inter_distance_respected(self, tiny_baidu_bundle):
        graph = tiny_baidu_bundle.graph
        for distance in (1, 2):
            pairs = generate_query_pairs(
                tiny_baidu_bundle,
                QuerySpec(count=3, inter_distance=distance),
                seed=2,
            )
            for q_left, q_right in pairs:
                assert distance_between(graph, q_left, q_right) == distance

    def test_pairs_within_ground_truth(self, tiny_baidu_bundle):
        pairs = generate_query_pairs(tiny_baidu_bundle, QuerySpec(count=5), seed=3)
        for q_left, q_right in pairs:
            assert tiny_baidu_bundle.community_for_query(q_left, q_right) is not None

    def test_whole_graph_mode(self, tiny_baidu_bundle):
        pairs = generate_query_pairs(
            tiny_baidu_bundle, QuerySpec(count=5), seed=4, within_ground_truth=False
        )
        assert pairs

    def test_deterministic_for_seed(self, tiny_baidu_bundle):
        a = generate_query_pairs(tiny_baidu_bundle, QuerySpec(count=4), seed=5)
        b = generate_query_pairs(tiny_baidu_bundle, QuerySpec(count=4), seed=5)
        assert a == b

    def test_impossible_spec_returns_fewer_pairs(self, tiny_baidu_bundle):
        pairs = generate_query_pairs(
            tiny_baidu_bundle, QuerySpec(count=3, inter_distance=50), seed=6
        )
        assert pairs == []


class TestMultilabelQueries:
    def test_label_count_and_distinctness(self):
        from repro.datasets import generate_baidu_network

        bundle = generate_baidu_network("tiny", seed=4, project_labels=3)
        queries = generate_multilabel_queries(bundle, 3, count=4, seed=7)
        assert queries
        graph = bundle.graph
        for query in queries:
            assert len(query) == 3
            labels = {graph.label(v) for v in query}
            assert len(labels) == 3

    def test_falls_back_to_whole_graph(self, tiny_snap_bundle):
        queries = generate_multilabel_queries(tiny_snap_bundle, 2, count=3, seed=8)
        assert queries
        for query in queries:
            labels = {tiny_snap_bundle.graph.label(v) for v in query}
            assert len(labels) == 2

    def test_unsatisfiable_label_count(self, tiny_snap_bundle):
        queries = generate_multilabel_queries(tiny_snap_bundle, 10, count=3, seed=9)
        assert queries == []
