"""Unit and integration tests for the experiment harness."""

from __future__ import annotations

import pytest

from repro.core.bc_index import BCIndex
from repro.eval.harness import (
    BCC_METHOD_NAMES,
    METHOD_NAMES,
    MethodSummary,
    evaluate_methods,
    evaluate_multilabel,
    run_method,
)
from repro.eval.instrumentation import SearchInstrumentation
from repro.eval.queries import QuerySpec


class TestRunMethod:
    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_every_method_runs_on_default_query(self, tiny_baidu_bundle, method):
        q_left, q_right = tiny_baidu_bundle.default_query()
        outcome = run_method(method, tiny_baidu_bundle, q_left, q_right, b=1)
        assert outcome.method == method
        assert outcome.seconds >= 0
        assert outcome.found
        assert outcome.f1 is not None and 0 <= outcome.f1 <= 1
        assert {q_left, q_right} <= outcome.vertices

    def test_bcc_methods_beat_baselines_on_planted_project(self, tiny_baidu_bundle):
        """The headline qualitative claim of Fig. 4: labeled methods recover the
        planted cross-team project better than the label-agnostic baselines."""
        q_left, q_right = tiny_baidu_bundle.default_query()
        scores = {
            method: run_method(method, tiny_baidu_bundle, q_left, q_right, b=1).f1
            for method in METHOD_NAMES
        }
        best_baseline = max(scores["PSA"], scores["CTC"])
        for method in BCC_METHOD_NAMES:
            assert scores[method] >= best_baseline

    def test_unknown_method_rejected(self, tiny_baidu_bundle):
        q_left, q_right = tiny_baidu_bundle.default_query()
        with pytest.raises(ValueError):
            run_method("Louvain", tiny_baidu_bundle, q_left, q_right)

    def test_explicit_k_override(self, tiny_baidu_bundle):
        q_left, q_right = tiny_baidu_bundle.default_query()
        outcome = run_method("LP-BCC", tiny_baidu_bundle, q_left, q_right, k=2, b=1)
        assert outcome.found

    def test_shared_index(self, tiny_baidu_bundle):
        q_left, q_right = tiny_baidu_bundle.default_query()
        index = BCIndex(tiny_baidu_bundle.graph)
        outcome = run_method(
            "L2P-BCC", tiny_baidu_bundle, q_left, q_right, b=1, index=index
        )
        assert outcome.found

    def test_instrumentation_passthrough(self, tiny_baidu_bundle):
        q_left, q_right = tiny_baidu_bundle.default_query()
        inst = SearchInstrumentation()
        run_method("Online-BCC", tiny_baidu_bundle, q_left, q_right, b=1, instrumentation=inst)
        assert inst.butterfly_counting_calls >= 1


class TestEvaluateMethods:
    def test_summary_structure(self, tiny_baidu_bundle):
        summaries = evaluate_methods(
            tiny_baidu_bundle,
            methods=["PSA", "L2P-BCC"],
            spec=QuerySpec(count=3),
            seed=0,
        )
        assert set(summaries) == {"PSA", "L2P-BCC"}
        for summary in summaries.values():
            assert isinstance(summary, MethodSummary)
            assert summary.queries == 3
            assert 0 <= summary.avg_f1 <= 1
            assert summary.avg_seconds >= 0
            assert summary.dataset == tiny_baidu_bundle.name

    def test_figure4_shape_on_tiny_dataset(self, tiny_baidu_bundle):
        summaries = evaluate_methods(
            tiny_baidu_bundle,
            methods=["PSA", "CTC", "L2P-BCC"],
            spec=QuerySpec(count=3),
            seed=1,
        )
        assert summaries["L2P-BCC"].avg_f1 >= summaries["CTC"].avg_f1
        assert summaries["L2P-BCC"].avg_f1 >= summaries["PSA"].avg_f1

    def test_as_row(self, tiny_baidu_bundle):
        summaries = evaluate_methods(
            tiny_baidu_bundle, methods=["PSA"], spec=QuerySpec(count=2), seed=2
        )
        row = summaries["PSA"].as_row()
        assert row[0] == tiny_baidu_bundle.name
        assert row[1] == "PSA"


class TestEvaluateMultilabel:
    def test_multilabel_summary(self):
        from repro.datasets import generate_baidu_network

        bundle = generate_baidu_network("tiny", seed=6, project_labels=3)
        summaries = evaluate_multilabel(
            bundle, num_labels=3, methods=["L2P-BCC", "PSA"], count=2, seed=3
        )
        assert set(summaries) == {"L2P-BCC", "PSA"}
        assert summaries["L2P-BCC"].queries >= 1
        assert "m=3" in summaries["L2P-BCC"].dataset

    def test_unknown_method_rejected(self, tiny_baidu_bundle):
        with pytest.raises(ValueError):
            evaluate_multilabel(tiny_baidu_bundle, 2, methods=["Louvain"], count=1)
