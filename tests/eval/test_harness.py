"""Unit and integration tests for the experiment harness."""

from __future__ import annotations

import pytest

from repro.core.bc_index import BCIndex
from repro.eval.harness import (
    BCC_METHOD_NAMES,
    METHOD_NAMES,
    MethodSummary,
    evaluate_methods,
    evaluate_multilabel,
    run_method,
)
from repro.eval.instrumentation import SearchInstrumentation
from repro.eval.queries import QuerySpec


class TestRunMethod:
    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_every_method_runs_on_default_query(self, tiny_baidu_bundle, method):
        q_left, q_right = tiny_baidu_bundle.default_query()
        outcome = run_method(method, tiny_baidu_bundle, q_left, q_right, b=1)
        assert outcome.method == method
        assert outcome.seconds >= 0
        assert outcome.found
        assert outcome.f1 is not None and 0 <= outcome.f1 <= 1
        assert {q_left, q_right} <= outcome.vertices

    def test_bcc_methods_beat_baselines_on_planted_project(self, tiny_baidu_bundle):
        """The headline qualitative claim of Fig. 4: labeled methods recover the
        planted cross-team project better than the label-agnostic baselines."""
        q_left, q_right = tiny_baidu_bundle.default_query()
        scores = {
            method: run_method(method, tiny_baidu_bundle, q_left, q_right, b=1).f1
            for method in METHOD_NAMES
        }
        best_baseline = max(scores["PSA"], scores["CTC"])
        for method in BCC_METHOD_NAMES:
            assert scores[method] >= best_baseline

    def test_unknown_method_rejected(self, tiny_baidu_bundle):
        q_left, q_right = tiny_baidu_bundle.default_query()
        with pytest.raises(ValueError):
            run_method("Louvain", tiny_baidu_bundle, q_left, q_right)

    def test_explicit_k_override(self, tiny_baidu_bundle):
        q_left, q_right = tiny_baidu_bundle.default_query()
        outcome = run_method("LP-BCC", tiny_baidu_bundle, q_left, q_right, k=2, b=1)
        assert outcome.found

    def test_shared_index(self, tiny_baidu_bundle):
        q_left, q_right = tiny_baidu_bundle.default_query()
        index = BCIndex(tiny_baidu_bundle.graph)
        outcome = run_method(
            "L2P-BCC", tiny_baidu_bundle, q_left, q_right, b=1, index=index
        )
        assert outcome.found

    def test_instrumentation_passthrough(self, tiny_baidu_bundle):
        q_left, q_right = tiny_baidu_bundle.default_query()
        inst = SearchInstrumentation()
        run_method("Online-BCC", tiny_baidu_bundle, q_left, q_right, b=1, instrumentation=inst)
        assert inst.butterfly_counting_calls >= 1


class TestEvaluateMethods:
    def test_summary_structure(self, tiny_baidu_bundle):
        summaries = evaluate_methods(
            tiny_baidu_bundle,
            methods=["PSA", "L2P-BCC"],
            spec=QuerySpec(count=3),
            seed=0,
        )
        assert set(summaries) == {"PSA", "L2P-BCC"}
        for summary in summaries.values():
            assert isinstance(summary, MethodSummary)
            assert summary.queries == 3
            assert 0 <= summary.avg_f1 <= 1
            assert summary.avg_seconds >= 0
            assert summary.dataset == tiny_baidu_bundle.name

    def test_figure4_shape_on_tiny_dataset(self, tiny_baidu_bundle):
        summaries = evaluate_methods(
            tiny_baidu_bundle,
            methods=["PSA", "CTC", "L2P-BCC"],
            spec=QuerySpec(count=3),
            seed=1,
        )
        assert summaries["L2P-BCC"].avg_f1 >= summaries["CTC"].avg_f1
        assert summaries["L2P-BCC"].avg_f1 >= summaries["PSA"].avg_f1

    def test_as_row(self, tiny_baidu_bundle):
        summaries = evaluate_methods(
            tiny_baidu_bundle, methods=["PSA"], spec=QuerySpec(count=2), seed=2
        )
        row = summaries["PSA"].as_row()
        assert row[0] == tiny_baidu_bundle.name
        assert row[1] == "PSA"


class TestRegistryDispatch:
    def test_method_names_derive_from_registry(self):
        from repro.api import method_names

        assert METHOD_NAMES == method_names(kinds=("baseline", "bcc"))
        assert BCC_METHOD_NAMES == method_names(kinds=("bcc",))

    def test_run_method_accepts_canonical_names_and_aliases(self, tiny_baidu_bundle):
        q_left, q_right = tiny_baidu_bundle.default_query()
        for name in ("lp-bcc", "LP-BCC", "lp"):
            outcome = run_method(name, tiny_baidu_bundle, q_left, q_right, b=1)
            assert outcome.found

    def test_registering_a_method_extends_the_harness(self, tiny_baidu_bundle):
        from repro.api import method_names, register_method, unregister_method

        @register_method("noop-bcc", display="Noop-BCC", kind="bcc")
        def _noop(engine, query, config, instrumentation):
            class _Result:
                vertices = set(query.vertices)

            return _Result()

        try:
            # Adding a method is one decorator: the registry-derived name
            # lists pick it up without touching the harness — including the
            # live module attributes (served via module __getattr__).
            from repro.eval import harness

            assert "Noop-BCC" in method_names(kinds=("bcc",))
            assert "Noop-BCC" in harness.METHOD_NAMES
            assert "Noop-BCC" in harness.BCC_METHOD_NAMES
            q_left, q_right = tiny_baidu_bundle.default_query()
            outcome = run_method("Noop-BCC", tiny_baidu_bundle, q_left, q_right)
            assert outcome.vertices == {q_left, q_right}
        finally:
            unregister_method("noop-bcc")

    def test_caller_engine_config_honoured_unless_overridden(self, tiny_baidu_bundle):
        from repro.api import BCCEngine, SearchConfig

        q_left, q_right = tiny_baidu_bundle.default_query()
        # An engine prepared with unreachable core parameters: when the
        # harness caller omits b/k, the engine's base config must govern.
        engine = BCCEngine(tiny_baidu_bundle.graph, SearchConfig(k1=10**6, k2=10**6))
        outcome = run_method("LP-BCC", tiny_baidu_bundle, q_left, q_right, engine=engine)
        assert not outcome.found
        # An explicit symmetric k override replaces both core parameters,
        # beating even explicit k1/k2 in the engine config (Fig. 8 sweeps
        # must actually sweep when driven through a configured engine).
        outcome = run_method(
            "LP-BCC", tiny_baidu_bundle, q_left, q_right, k=2, engine=engine
        )
        assert outcome.found
        engine2 = BCCEngine(tiny_baidu_bundle.graph, SearchConfig(b=1))
        outcome = run_method(
            "LP-BCC", tiny_baidu_bundle, q_left, q_right, b=1, engine=engine2
        )
        assert outcome.found

    def test_baseline_missing_vertex_scores_as_unanswered(self, tiny_baidu_bundle):
        import pytest as _pytest

        from repro.exceptions import VertexNotFoundError

        q_left, _ = tiny_baidu_bundle.default_query()
        for method in ("CTC", "PSA"):
            outcome = run_method(method, tiny_baidu_bundle, q_left, "ghost")
            assert not outcome.found
            assert outcome.reason == "missing-query-vertex"
        with _pytest.raises(VertexNotFoundError):
            run_method("LP-BCC", tiny_baidu_bundle, q_left, "ghost")

    def test_run_method_reports_empty_status_and_reason(self, tiny_baidu_bundle):
        q_left, q_right = tiny_baidu_bundle.default_query()
        outcome = run_method(
            "Online-BCC", tiny_baidu_bundle, q_left, q_right, k=10**6
        )
        assert not outcome.found
        assert outcome.status == "empty"
        assert outcome.reason == "no-candidate"
        assert outcome.f1 == 0.0


class TestTimingSplit:
    def test_cold_l2p_reports_index_build_separately(self, tiny_baidu_bundle):
        q_left, q_right = tiny_baidu_bundle.default_query()
        outcome = run_method("L2P-BCC", tiny_baidu_bundle, q_left, q_right, b=1)
        # A throwaway engine builds the BCindex during the call, but the cost
        # is reported apart from query time instead of silently inflating it.
        assert outcome.index_seconds > 0
        assert outcome.seconds >= 0

    def test_warm_engine_pays_index_once(self, tiny_baidu_bundle):
        from repro.api import BCCEngine

        engine = BCCEngine(tiny_baidu_bundle.graph)
        q_left, q_right = tiny_baidu_bundle.default_query()
        first = run_method(
            "L2P-BCC", tiny_baidu_bundle, q_left, q_right, b=1, engine=engine
        )
        second = run_method(
            "L2P-BCC", tiny_baidu_bundle, q_left, q_right, b=1, engine=engine
        )
        assert first.index_seconds > 0
        assert second.index_seconds == 0.0
        assert first.vertices == second.vertices
        assert engine.counters_snapshot()["index_builds"] == 1

    def test_caller_supplied_index_keeps_seconds_pure(self, tiny_baidu_bundle):
        q_left, q_right = tiny_baidu_bundle.default_query()
        index = BCIndex(tiny_baidu_bundle.graph)
        outcome = run_method(
            "L2P-BCC", tiny_baidu_bundle, q_left, q_right, b=1, index=index
        )
        assert outcome.found
        assert outcome.index_seconds == 0.0

    def test_evaluate_methods_aggregates_index_seconds(self, tiny_baidu_bundle):
        summaries = evaluate_methods(
            tiny_baidu_bundle,
            methods=["L2P-BCC", "PSA"],
            spec=QuerySpec(count=2),
            seed=4,
            share_index=True,
        )
        # The shared engine builds the BCindex lazily exactly once; the cost
        # is surfaced in the triggering method's index_seconds (never in
        # avg_seconds) and methods that don't use the index pay nothing.
        assert summaries["L2P-BCC"].index_seconds > 0
        assert summaries["PSA"].index_seconds == 0.0


class TestEvaluateMultilabel:
    def test_multilabel_summary(self):
        from repro.datasets import generate_baidu_network

        bundle = generate_baidu_network("tiny", seed=6, project_labels=3)
        summaries = evaluate_multilabel(
            bundle, num_labels=3, methods=["L2P-BCC", "PSA"], count=2, seed=3
        )
        assert set(summaries) == {"L2P-BCC", "PSA"}
        assert summaries["L2P-BCC"].queries >= 1
        assert "m=3" in summaries["L2P-BCC"].dataset

    def test_unknown_method_rejected(self, tiny_baidu_bundle):
        with pytest.raises(ValueError):
            evaluate_multilabel(tiny_baidu_bundle, 2, methods=["Louvain"], count=1)


class TestErrorRowAggregation:
    def test_error_rows_excluded_from_timing_means(self):
        import math

        from repro.eval.harness import QueryOutcome, _summarize_outcomes

        ran = QueryOutcome(
            method="LP-BCC", query=("a", "b"), found=True, seconds=2.0, f1=1.0,
            query_distance=1.0,
        )
        errored = QueryOutcome(
            method="LP-BCC", query=("a", "ghost"), status="error",
            reason="missing-query-vertex", error="vertex 'ghost' is not in the graph",
        )
        summary = _summarize_outcomes("LP-BCC", "unit", [ran, errored])
        assert summary.queries == 2
        assert summary.answered == 1
        assert summary.errors == 1
        # The error row never ran the algorithm: its placeholder 0.0 seconds
        # and infinite query distance stay out of the means.
        assert summary.avg_seconds == 2.0
        assert summary.total_seconds == 2.0
        assert summary.avg_query_distance == 1.0
        assert math.isinf(errored.query_distance)

    def test_evaluate_methods_batch_mode_matches_sequential(self, tiny_baidu_bundle):
        from repro.eval.harness import evaluate_methods
        from repro.eval.queries import QuerySpec

        batched = evaluate_methods(
            tiny_baidu_bundle, methods=["LP-BCC"], spec=QuerySpec(count=3),
            seed=5, max_workers=4,
        )
        sequential = evaluate_methods(
            tiny_baidu_bundle, methods=["LP-BCC"], spec=QuerySpec(count=3),
            seed=5,
        )
        assert batched["LP-BCC"].answered == sequential["LP-BCC"].answered
        assert batched["LP-BCC"].avg_f1 == sequential["LP-BCC"].avg_f1
        assert batched["LP-BCC"].errors == sequential["LP-BCC"].errors == 0
