"""Unit tests for the typed, frozen SearchConfig."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import SearchConfig
from repro.core.path_weight import PathWeightConfig
from repro.exceptions import QueryError


class TestDefaults:
    def test_defaults_match_legacy_signatures(self):
        config = SearchConfig()
        assert config.k1 is None and config.k2 is None and config.k is None
        assert config.b == 1
        assert config.bulk_deletion is True
        assert config.rho == 2
        assert config.backend == "auto"
        assert config.max_iterations is None
        assert config.fast_path is True
        assert config.eta == 400
        assert config.path_config == PathWeightConfig()
        assert config.core_parameters is None
        assert config.size_budget == 2000
        assert config.shrink_rounds == 50

    def test_frozen(self):
        config = SearchConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.b = 2

    def test_core_parameters_normalised_to_tuple(self):
        config = SearchConfig(core_parameters=[3, 2, 1])
        assert config.core_parameters == (3, 2, 1)


class TestReplace:
    def test_replace_returns_new_validated_config(self):
        base = SearchConfig(b=1)
        derived = base.replace(b=3, k=5)
        assert derived.b == 3 and derived.k == 5
        assert base.b == 1 and base.k is None

    def test_replace_revalidates(self):
        with pytest.raises(QueryError):
            SearchConfig().replace(b=-1)


class TestEffectiveK:
    def test_k_fallback(self):
        config = SearchConfig(k=4)
        assert config.effective_k1() == 4
        assert config.effective_k2() == 4

    def test_explicit_k1_k2_win(self):
        config = SearchConfig(k1=2, k2=3, k=7)
        assert config.effective_k1() == 2
        assert config.effective_k2() == 3

    def test_unset_everything_is_none(self):
        config = SearchConfig()
        assert config.effective_k1() is None
        assert config.effective_k2() is None


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k1": -1},
            {"k2": -2},
            {"k": -3},
            {"b": -1},
            {"rho": -1},
            {"backend": "gpu"},
            {"max_iterations": -5},
            {"eta": -1},
            {"size_budget": -1},
            {"shrink_rounds": -1},
            {"core_parameters": (1, -1)},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(QueryError):
            SearchConfig(**kwargs)

    def test_zero_values_allowed_where_meaningful(self):
        # Zero budgets are legal degenerate settings the legacy entry points
        # accepted (eta=0 candidate = seed path; size_budget=0 skips the PSA
        # expansion).
        config = SearchConfig(
            k1=0, k2=0, b=0, max_iterations=0, shrink_rounds=0,
            rho=0, eta=0, size_budget=0,
        )
        assert config.b == 0 and config.max_iterations == 0
        assert config.size_budget == 0 and config.eta == 0


class TestDeadlineField:
    def test_deadline_defaults_to_none(self):
        assert SearchConfig().deadline_ms is None

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_non_positive_deadlines_rejected(self, bad):
        with pytest.raises(QueryError):
            SearchConfig(deadline_ms=bad)

    def test_positive_deadline_accepted(self):
        assert SearchConfig(deadline_ms=250.0).deadline_ms == 250.0

    def test_deadline_excluded_from_cache_key(self):
        # The deadline bounds the wait, not the answer: two configs that
        # differ only in deadline_ms must share a result-cache entry.
        base = SearchConfig(k1=4, k2=3)
        assert base.cache_key() == SearchConfig(
            k1=4, k2=3, deadline_ms=100.0
        ).cache_key()
        # ...while answer-shaping fields still split the key.
        assert base.cache_key() != SearchConfig(k1=5, k2=3).cache_key()
