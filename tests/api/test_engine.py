"""Unit and acceptance tests for the prepared BCCEngine."""

from __future__ import annotations

import pytest

import math

from repro.api import (
    STATUS_EMPTY,
    STATUS_ERROR,
    STATUS_OK,
    BatchQuery,
    BCCEngine,
    Query,
    SearchConfig,
    one_shot_search,
    register_method,
    unregister_method,
)
from repro.core.bc_index import BCIndex
from repro.datasets import generate_baidu_network
from repro.eval.queries import QuerySpec, generate_query_pairs
from repro.exceptions import (
    REASON_INVALID_QUERY,
    REASON_MISSING_VERTEX,
    REASON_NO_CANDIDATE,
    REASON_UNKNOWN_METHOD,
    EmptyCommunityError,
    QueryError,
    VertexNotFoundError,
)


class TestConstruction:
    def test_accepts_bundle(self, tiny_baidu_bundle):
        engine = BCCEngine(tiny_baidu_bundle)
        assert engine.graph is tiny_baidu_bundle.graph

    def test_rejects_non_graph(self):
        with pytest.raises(TypeError):
            BCCEngine(42)

    def test_counters_view_is_read_only_and_snapshot_is_a_copy(self, paper_graph):
        """The legacy ``counters`` attribute was a public mutable dict that
        callers could corrupt without the lock; it is now a read-only view,
        and ``counters_snapshot()`` returns an independent copy."""
        engine = BCCEngine(paper_graph).prepare()
        view = engine.counters
        assert view["prepare_calls"] == 1
        with pytest.raises(TypeError):
            view["prepare_calls"] = 999  # type: ignore[index]
        snapshot = engine.counters_snapshot()
        assert snapshot == dict(view)
        snapshot["prepare_calls"] = 999  # the caller's copy, not the engine's
        assert engine.counters["prepare_calls"] == 1

    def test_prepare_chains_and_counts_once(self, paper_graph):
        engine = BCCEngine(paper_graph).prepare()
        assert engine.is_prepared()
        assert engine.counters_snapshot()["csr_freezes"] <= 1
        frozen = paper_graph.freeze()
        engine.prepare()
        assert paper_graph.freeze() is frozen
        assert engine.counters_snapshot()["csr_freezes"] <= 1
        assert engine.counters_snapshot()["prepare_calls"] == 2


class TestSearch:
    def test_ok_response_shape(self, paper_graph):
        engine = BCCEngine(paper_graph, SearchConfig(k1=4, k2=3, b=1))
        response = engine.search(Query("online-bcc", ("ql", "qr")))
        assert response.status == STATUS_OK and response.found
        assert response.method == "online-bcc"
        assert response.query == ("ql", "qr")
        assert {"ql", "qr"} <= response.vertices
        assert response.community is not None
        assert response.iterations >= 0
        assert response.reason is None
        assert response.timings["total_seconds"] >= 0
        assert response.timings["query_seconds"] >= 0
        assert response.raise_for_empty() is response

    def test_empty_response_query_distance_is_infinite(self, paper_graph):
        """An empty answer is infinitely far from the query — reporting the
        old 0.0 made it indistinguishable from a perfect community."""
        engine = BCCEngine(paper_graph)
        ok = engine.search(
            Query("online-bcc", ("ql", "qr"), config=SearchConfig(k1=4, k2=3))
        )
        assert ok.found and math.isfinite(ok.query_distance)
        empty = engine.search(
            Query("lp-bcc", ("ql", "qr"), config=SearchConfig(k1=99, k2=99))
        )
        assert empty.query_distance == math.inf

    def test_empty_response_has_machine_readable_reason(self, paper_graph):
        engine = BCCEngine(paper_graph)
        response = engine.search(
            Query("lp-bcc", ("ql", "qr"), config=SearchConfig(k1=99, k2=99))
        )
        assert response.status == STATUS_EMPTY and not response.found
        assert response.result is None
        assert response.vertices == set()
        assert response.reason == REASON_NO_CANDIDATE
        with pytest.raises(EmptyCommunityError) as excinfo:
            response.raise_for_empty()
        assert excinfo.value.reason == REASON_NO_CANDIDATE

    def test_malformed_queries_still_raise(self, paper_graph):
        engine = BCCEngine(paper_graph)
        with pytest.raises(QueryError):
            engine.search(Query("lp-bcc", ("ql", "v1", "qr")))  # wrong arity
        # Unknown vertices raise for every method kind — baselines included
        # (their legacy wrappers translate this back to None).
        for method in ("lp-bcc", "ctc", "psa", "mbcc"):
            with pytest.raises(VertexNotFoundError):
                engine.search(Query(method, ("ql", "missing")))
        with pytest.raises(ValueError):
            engine.search(Query("Louvain", ("ql", "qr")))

    def test_query_rejects_bare_string_vertices(self):
        with pytest.raises(QueryError):
            Query("ctc", "Toronto")  # would otherwise split into characters
        with pytest.raises(QueryError):
            Query("", ("ql", "qr"))
        with pytest.raises(QueryError):
            Query("ctc", ())

    def test_config_precedence_call_over_query_over_engine(self, paper_graph):
        engine = BCCEngine(paper_graph, SearchConfig(k1=4, k2=3))
        query = Query("online-bcc", ("ql", "qr"), config=SearchConfig(k1=99, k2=99))
        # Query-level override beats the engine base...
        assert engine.search(query).status == STATUS_EMPTY
        # ...and the call-level override beats both.
        response = engine.search(query, config=SearchConfig(k1=4, k2=3))
        assert response.status == STATUS_OK

    def test_instrumentation_passthrough(self, paper_graph):
        from repro.eval.instrumentation import SearchInstrumentation

        inst = SearchInstrumentation()
        engine = BCCEngine(paper_graph)
        response = engine.search(
            Query("online-bcc", ("ql", "qr")), instrumentation=inst
        )
        assert response.instrumentation is inst
        assert inst.butterfly_counting_calls >= 1


class TestIndexLifecycle:
    def test_lazy_index_built_once_and_timed(self, paper_graph):
        engine = BCCEngine(paper_graph)
        first = engine.search(Query("l2p-bcc", ("ql", "qr")))
        second = engine.search(Query("l2p-bcc", ("ql", "qr")))
        assert engine.counters_snapshot()["index_builds"] == 1
        assert first.timings["index_build_seconds"] > 0
        assert second.timings["index_build_seconds"] == 0.0
        assert first.vertices == second.vertices

    def test_prebuilt_index_not_rebuilt(self, paper_graph):
        index = BCIndex(paper_graph)
        engine = BCCEngine(paper_graph, index=index)
        engine.search(Query("l2p-bcc", ("ql", "qr")))
        assert engine.counters_snapshot()["index_builds"] == 0
        assert engine.index is index

    def test_unbuilt_index_is_built_on_first_use(self, paper_graph):
        index = BCIndex(paper_graph, build=False)
        engine = BCCEngine(paper_graph, index=index)
        assert not engine.has_index()
        engine.search(Query("l2p-bcc", ("ql", "qr")))
        assert engine.counters_snapshot()["index_builds"] == 1
        assert engine.has_index()


class TestVersionInvalidation:
    def test_mutation_clears_caches(self, paper_graph):
        engine = BCCEngine(paper_graph).prepare()
        engine.search(Query("lp-bcc", ("ql", "qr")))
        engine.ensure_index()
        assert engine.counters_snapshot()["group_builds"] >= 1
        paper_graph.add_edge("ql", "u1")
        assert not engine.is_prepared()
        assert not engine.has_index()
        response = engine.search(Query("lp-bcc", ("ql", "qr")))
        assert response.status in (STATUS_OK, STATUS_EMPTY)


class TestExplain:
    def test_explain_bcc_resolves_coreness_defaults(self, paper_graph):
        engine = BCCEngine(paper_graph).prepare()
        info = engine.explain(Query("lp-bcc", ("ql", "qr")))
        assert info["method"]["display"] == "LP-BCC"
        assert info["engine"]["prepared"] is True
        resolved = info["resolved"]
        assert resolved["left_label"] == "SE" and resolved["right_label"] == "UI"
        # Section 3.5 defaults: coreness of ql within SE is 4, of qr within UI is 3.
        assert resolved["k1"] == 4 and resolved["k2"] == 3
        # Explaining does not run the search.
        assert engine.counters_snapshot()["searches"] == 0

    def test_explain_l2p_defers_unset_k(self, paper_graph):
        info = BCCEngine(paper_graph).explain(Query("l2p-bcc", ("ql", "qr")))
        assert info["resolved"]["k1"] is None
        assert "candidate" in info["resolved"]["note"]

    def test_explain_baselines_and_multilabel(self, paper_graph):
        engine = BCCEngine(paper_graph)
        ctc_info = engine.explain(Query("ctc", ("ql", "qr")))
        assert "trussness" in ctc_info["resolved"]["note"]
        mbcc_info = engine.explain(
            Query("mbcc", ("ql", "qr"), config=SearchConfig(core_parameters=(2, 2)))
        )
        assert mbcc_info["resolved"]["core_parameters"] == {"SE": 2, "UI": 2}

    def test_explain_malformed_query_raises(self, paper_graph):
        with pytest.raises(QueryError):
            BCCEngine(paper_graph).explain(Query("lp-bcc", ("ql", "v1")))
        # explain mirrors run_mbcc's validation: duplicate labels raise.
        with pytest.raises(QueryError):
            BCCEngine(paper_graph).explain(Query("mbcc", ("ql", "v1")))
        # Unknown vertices raise for every kind, baselines included.
        for method in ("lp-bcc", "ctc", "psa", "mbcc"):
            with pytest.raises(VertexNotFoundError):
                BCCEngine(paper_graph).explain(Query(method, ("ql", "ghost")))


class TestSearchMany:
    def test_batch_equals_sequential(self, tiny_baidu_bundle):
        pairs = generate_query_pairs(
            tiny_baidu_bundle, QuerySpec(count=5), seed=3
        )
        queries = [Query("lp-bcc", pair) for pair in pairs]
        batch = BCCEngine(tiny_baidu_bundle).search_many(queries)
        sequential = [
            BCCEngine(tiny_baidu_bundle).search(query) for query in queries
        ]
        assert len(batch) == len(queries)
        for got, want in zip(batch, sequential):
            assert got.status == want.status
            assert got.vertices == want.vertices
            assert got.iterations == want.iterations

    def test_batch_query_carries_shared_config(self, paper_graph):
        batch = BatchQuery(
            queries=(Query("online-bcc", ("ql", "qr")),),
            config=SearchConfig(k1=99, k2=99),
        )
        responses = BCCEngine(paper_graph).search_many(batch)
        assert responses[0].status == STATUS_EMPTY

    def test_member_query_config_beats_batch_config(self, paper_graph):
        batch = BatchQuery(
            queries=(
                Query("online-bcc", ("ql", "qr")),  # inherits batch config
                Query(
                    "online-bcc",
                    ("ql", "qr"),
                    config=SearchConfig(k1=4, k2=3),  # its own config wins
                ),
            ),
            config=SearchConfig(k1=99, k2=99),
        )
        inherited, own = BCCEngine(paper_graph).search_many(batch)
        assert inherited.status == STATUS_EMPTY
        assert own.status == STATUS_OK

    def test_call_config_overrides_batch_and_member_configs(self, paper_graph):
        batch = BatchQuery(
            queries=(
                Query(
                    "online-bcc", ("ql", "qr"), config=SearchConfig(k1=99, k2=99)
                ),
            ),
            config=SearchConfig(k1=77, k2=77),
        )
        responses = BCCEngine(paper_graph).search_many(
            batch, config=SearchConfig(k1=4, k2=3)
        )
        assert responses[0].status == STATUS_OK

    def test_batch_rejects_non_query_members_with_index(self, paper_graph):
        with pytest.raises(QueryError, match="member 1"):
            BatchQuery(queries=(Query("ctc", ("ql",)), "not-a-query"))
        # Same guarantee for a plain iterable handed straight to search_many
        # (previously an opaque AttributeError deep inside the batch loop).
        with pytest.raises(QueryError, match="member 0"):
            BCCEngine(paper_graph).search_many(["ql", "qr"])

    def test_acceptance_warm_batch_freezes_and_indexes_at_most_once(self):
        """Acceptance: >= 20 queries on a Table-3 synthetic network perform
        the CSR freeze and the BCIndex build at most once (counters)."""
        bundle = generate_baidu_network("tiny", seed=7)
        assert not bundle.graph.has_frozen()
        pairs = generate_query_pairs(bundle, QuerySpec(count=10), seed=1)
        queries = [
            Query(method, pair)
            for pair in pairs
            for method in ("online-bcc", "lp-bcc", "l2p-bcc")
        ]
        assert len(queries) >= 20
        engine = BCCEngine(bundle.graph)
        responses = engine.search_many(queries)
        assert len(responses) == len(queries)
        assert any(response.found for response in responses)
        assert engine.counters_snapshot()["searches"] == len(queries)
        # The whole batch paid preparation exactly once.
        assert engine.counters_snapshot()["csr_freezes"] == 1
        assert engine.counters_snapshot()["index_builds"] == 1
        assert engine.counters_snapshot()["prepare_calls"] == 1
        # Label groups were built at most once per label, not per query.
        assert engine.counters_snapshot()["group_builds"] <= len(bundle.graph.labels())
        # And only the first L2P-BCC query paid the index build.
        index_payers = [
            r for r in responses if r.timings["index_build_seconds"] > 0
        ]
        assert len(index_payers) == 1


class TestErrorPolicy:
    """search_many(on_error=...): per-query failures vs batch aborts."""

    def _mixed_batch(self):
        return [
            Query("lp-bcc", ("ql", "qr")),
            Query("lp-bcc", ("ql", "ghost")),  # unknown vertex
            Query("online-bcc", ("ql", "qr")),
        ]

    def test_default_raise_policy_aborts_like_search(self, paper_graph):
        with pytest.raises(VertexNotFoundError):
            BCCEngine(paper_graph).search_many(self._mixed_batch())

    def test_return_policy_yields_position_aligned_error_row(self, paper_graph):
        """Acceptance: a batch with one malformed query yields N aligned
        responses with exactly one status="error"."""
        batch = self._mixed_batch()
        responses = BCCEngine(paper_graph).search_many(batch, on_error="return")
        assert len(responses) == len(batch)
        assert [r.status for r in responses] == [STATUS_OK, STATUS_ERROR, STATUS_OK]
        error = responses[1]
        assert error.reason == REASON_MISSING_VERTEX
        assert "ghost" in error.error
        assert error.result is None and error.vertices == set()
        assert not error.found
        assert error.query == ("ql", "ghost")
        assert error.query_distance == math.inf
        with pytest.raises(QueryError):
            error.raise_for_empty()

    def test_return_policy_classifies_failures(self, paper_graph):
        responses = BCCEngine(paper_graph).search_many(
            [
                Query("no-such-method", ("ql", "qr")),
                Query("lp-bcc", ("ql", "v1", "qr")),  # wrong arity
                Query("mbcc", ("ql", "v1")),  # duplicate labels
            ],
            on_error="return",
        )
        assert [r.status for r in responses] == [STATUS_ERROR] * 3
        assert responses[0].reason == REASON_UNKNOWN_METHOD
        assert responses[1].reason == REASON_INVALID_QUERY
        assert responses[2].reason == REASON_INVALID_QUERY
        assert all(r.error for r in responses)

    def test_return_policy_with_threads(self, paper_graph):
        responses = BCCEngine(paper_graph).search_many(
            self._mixed_batch(), on_error="return", max_workers=4
        )
        assert [r.status for r in responses] == [STATUS_OK, STATUS_ERROR, STATUS_OK]

    def test_raise_policy_with_threads(self, paper_graph):
        with pytest.raises(VertexNotFoundError):
            BCCEngine(paper_graph).search_many(self._mixed_batch(), max_workers=4)

    def test_unknown_policy_and_bad_workers_rejected(self, paper_graph):
        engine = BCCEngine(paper_graph)
        with pytest.raises(QueryError):
            engine.search_many([], on_error="ignore")
        with pytest.raises(QueryError):
            engine.search_many([], max_workers=0)

    def test_return_policy_does_not_mask_deep_missing_vertices(self, paper_graph):
        """A VertexNotFoundError for a NON-query vertex is an implementation
        bug escaping a runner — on_error="return" must not convert it into
        a per-query error row."""

        @register_method(
            "deep-misser",
            display="Deep-Misser",
            kind="baseline",
            missing_vertex_is_empty=True,
        )
        def _deep(engine, query, config, instrumentation):
            raise VertexNotFoundError("internal-liaison-vertex")

        try:
            with pytest.raises(VertexNotFoundError, match="internal-liaison"):
                BCCEngine(paper_graph).search_many(
                    [Query("deep-misser", ("ql", "qr"))], on_error="return"
                )
        finally:
            unregister_method("deep-misser")

    def test_empty_answers_are_not_errors(self, paper_graph):
        responses = BCCEngine(paper_graph).search_many(
            [Query("lp-bcc", ("ql", "qr"), config=SearchConfig(k1=99, k2=99))],
            on_error="return",
        )
        assert responses[0].status == STATUS_EMPTY
        assert responses[0].reason == REASON_NO_CANDIDATE


class TestResultCache:
    def test_hit_replays_same_answer_with_fresh_timings(self, paper_graph):
        engine = BCCEngine(paper_graph, SearchConfig(k1=4, k2=3))
        query = Query("online-bcc", ("ql", "qr"))
        first = engine.search(query)
        second = engine.search(query)
        assert engine.counters_snapshot()["result_cache_misses"] == 1
        assert engine.counters_snapshot()["result_cache_hits"] == 1
        assert second.timings["cache_hit"] == 1.0
        assert "cache_hit" not in first.timings
        assert second.status == first.status
        assert second.vertices == first.vertices
        assert second.result is first.result  # the native result is shared
        assert second.vertices is not first.vertices  # the member set is not
        assert engine.counters_snapshot()["searches"] == 2

    def test_distinct_configs_do_not_collide(self, paper_graph):
        engine = BCCEngine(paper_graph)
        query = ("ql", "qr")
        found = engine.search(
            Query("online-bcc", query, config=SearchConfig(k1=4, k2=3))
        )
        empty = engine.search(
            Query("online-bcc", query, config=SearchConfig(k1=99, k2=99))
        )
        assert found.status == STATUS_OK and empty.status == STATUS_EMPTY
        assert engine.counters_snapshot()["result_cache_hits"] == 0

    def test_bypass_per_call(self, paper_graph):
        engine = BCCEngine(paper_graph, SearchConfig(k1=4, k2=3))
        query = Query("online-bcc", ("ql", "qr"))
        engine.search(query)
        bypassed = engine.search(query, use_cache=False)
        assert "cache_hit" not in bypassed.timings
        assert engine.counters_snapshot()["result_cache_hits"] == 0

    def test_caller_instrumentation_bypasses_cache(self, paper_graph):
        from repro.eval.instrumentation import SearchInstrumentation

        engine = BCCEngine(paper_graph, SearchConfig(k1=4, k2=3))
        query = Query("online-bcc", ("ql", "qr"))
        engine.search(query)
        inst = SearchInstrumentation()
        response = engine.search(query, instrumentation=inst)
        # The algorithm actually ran and filled the caller's counters.
        assert response.instrumentation is inst
        assert inst.butterfly_counting_calls >= 1
        assert engine.counters_snapshot()["result_cache_hits"] == 0

    def test_zero_size_disables_caching(self, paper_graph):
        engine = BCCEngine(
            paper_graph, SearchConfig(k1=4, k2=3), result_cache_size=0
        )
        query = Query("online-bcc", ("ql", "qr"))
        engine.search(query)
        engine.search(query)
        assert engine.counters_snapshot()["result_cache_hits"] == 0
        assert engine.counters_snapshot()["result_cache_misses"] == 0
        assert engine.result_cache_len() == 0

    def test_lru_evicts_oldest_entry(self, paper_graph):
        engine = BCCEngine(paper_graph, result_cache_size=2)
        queries = [
            Query("online-bcc", ("ql", "qr"), config=SearchConfig(k1=k, k2=k))
            for k in (1, 2, 3)
        ]
        for query in queries:
            engine.search(query)
        assert engine.result_cache_len() == 2
        # k=1 was evicted; k=3 is still warm.
        assert "cache_hit" in engine.search(queries[2]).timings
        assert "cache_hit" not in engine.search(queries[0]).timings

    def test_negative_size_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            BCCEngine(paper_graph, result_cache_size=-1)

    def test_search_many_can_bypass_cache(self, paper_graph):
        engine = BCCEngine(paper_graph, SearchConfig(k1=4, k2=3))
        queries = [Query("online-bcc", ("ql", "qr"))] * 2
        cached = engine.search_many(queries)
        assert "cache_hit" in cached[1].timings
        fresh = engine.search_many(queries, use_cache=False)
        assert all("cache_hit" not in r.timings for r in fresh)


class TestOneShotMissingVertexTranslation:
    def test_missing_query_vertex_is_empty_for_baselines(self, paper_graph):
        assert one_shot_search("ctc", paper_graph, ("ql", "ghost"), SearchConfig()) is None
        assert one_shot_search("psa", paper_graph, ("ghost",), SearchConfig()) is None

    def test_missing_query_vertex_raises_for_bcc_methods(self, paper_graph):
        with pytest.raises(VertexNotFoundError):
            one_shot_search("lp-bcc", paper_graph, ("ql", "ghost"), SearchConfig())

    def test_deep_missing_vertex_propagates_even_when_flagged(self, paper_graph):
        """A VertexNotFoundError for a NON-query vertex is an implementation
        bug, not "no community" — it must not be translated into None."""

        @register_method(
            "buggy-baseline",
            display="Buggy-Baseline",
            kind="baseline",
            missing_vertex_is_empty=True,
        )
        def _buggy(engine, query, config, instrumentation):
            raise VertexNotFoundError("internal-liaison-vertex")

        try:
            with pytest.raises(VertexNotFoundError, match="internal-liaison-vertex"):
                one_shot_search(
                    "buggy-baseline", paper_graph, ("ql", "qr"), SearchConfig()
                )
        finally:
            unregister_method("buggy-baseline")
