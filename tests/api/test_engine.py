"""Unit and acceptance tests for the prepared BCCEngine."""

from __future__ import annotations

import pytest

from repro.api import (
    STATUS_EMPTY,
    STATUS_OK,
    BatchQuery,
    BCCEngine,
    Query,
    SearchConfig,
)
from repro.core.bc_index import BCIndex
from repro.datasets import generate_baidu_network
from repro.eval.queries import QuerySpec, generate_query_pairs
from repro.exceptions import (
    REASON_NO_CANDIDATE,
    EmptyCommunityError,
    QueryError,
    VertexNotFoundError,
)


class TestConstruction:
    def test_accepts_bundle(self, tiny_baidu_bundle):
        engine = BCCEngine(tiny_baidu_bundle)
        assert engine.graph is tiny_baidu_bundle.graph

    def test_rejects_non_graph(self):
        with pytest.raises(TypeError):
            BCCEngine(42)

    def test_prepare_chains_and_counts_once(self, paper_graph):
        engine = BCCEngine(paper_graph).prepare()
        assert engine.is_prepared()
        assert engine.counters["csr_freezes"] <= 1
        frozen = paper_graph.freeze()
        engine.prepare()
        assert paper_graph.freeze() is frozen
        assert engine.counters["csr_freezes"] <= 1
        assert engine.counters["prepare_calls"] == 2


class TestSearch:
    def test_ok_response_shape(self, paper_graph):
        engine = BCCEngine(paper_graph, SearchConfig(k1=4, k2=3, b=1))
        response = engine.search(Query("online-bcc", ("ql", "qr")))
        assert response.status == STATUS_OK and response.found
        assert response.method == "online-bcc"
        assert response.query == ("ql", "qr")
        assert {"ql", "qr"} <= response.vertices
        assert response.community is not None
        assert response.iterations >= 0
        assert response.reason is None
        assert response.timings["total_seconds"] >= 0
        assert response.timings["query_seconds"] >= 0
        assert response.raise_for_empty() is response

    def test_empty_response_has_machine_readable_reason(self, paper_graph):
        engine = BCCEngine(paper_graph)
        response = engine.search(
            Query("lp-bcc", ("ql", "qr"), config=SearchConfig(k1=99, k2=99))
        )
        assert response.status == STATUS_EMPTY and not response.found
        assert response.result is None
        assert response.vertices == set()
        assert response.reason == REASON_NO_CANDIDATE
        with pytest.raises(EmptyCommunityError) as excinfo:
            response.raise_for_empty()
        assert excinfo.value.reason == REASON_NO_CANDIDATE

    def test_malformed_queries_still_raise(self, paper_graph):
        engine = BCCEngine(paper_graph)
        with pytest.raises(QueryError):
            engine.search(Query("lp-bcc", ("ql", "v1", "qr")))  # wrong arity
        # Unknown vertices raise for every method kind — baselines included
        # (their legacy wrappers translate this back to None).
        for method in ("lp-bcc", "ctc", "psa", "mbcc"):
            with pytest.raises(VertexNotFoundError):
                engine.search(Query(method, ("ql", "missing")))
        with pytest.raises(ValueError):
            engine.search(Query("Louvain", ("ql", "qr")))

    def test_query_rejects_bare_string_vertices(self):
        with pytest.raises(QueryError):
            Query("ctc", "Toronto")  # would otherwise split into characters
        with pytest.raises(QueryError):
            Query("", ("ql", "qr"))
        with pytest.raises(QueryError):
            Query("ctc", ())

    def test_config_precedence_call_over_query_over_engine(self, paper_graph):
        engine = BCCEngine(paper_graph, SearchConfig(k1=4, k2=3))
        query = Query("online-bcc", ("ql", "qr"), config=SearchConfig(k1=99, k2=99))
        # Query-level override beats the engine base...
        assert engine.search(query).status == STATUS_EMPTY
        # ...and the call-level override beats both.
        response = engine.search(query, config=SearchConfig(k1=4, k2=3))
        assert response.status == STATUS_OK

    def test_instrumentation_passthrough(self, paper_graph):
        from repro.eval.instrumentation import SearchInstrumentation

        inst = SearchInstrumentation()
        engine = BCCEngine(paper_graph)
        response = engine.search(
            Query("online-bcc", ("ql", "qr")), instrumentation=inst
        )
        assert response.instrumentation is inst
        assert inst.butterfly_counting_calls >= 1


class TestIndexLifecycle:
    def test_lazy_index_built_once_and_timed(self, paper_graph):
        engine = BCCEngine(paper_graph)
        first = engine.search(Query("l2p-bcc", ("ql", "qr")))
        second = engine.search(Query("l2p-bcc", ("ql", "qr")))
        assert engine.counters["index_builds"] == 1
        assert first.timings["index_build_seconds"] > 0
        assert second.timings["index_build_seconds"] == 0.0
        assert first.vertices == second.vertices

    def test_prebuilt_index_not_rebuilt(self, paper_graph):
        index = BCIndex(paper_graph)
        engine = BCCEngine(paper_graph, index=index)
        engine.search(Query("l2p-bcc", ("ql", "qr")))
        assert engine.counters["index_builds"] == 0
        assert engine.index is index

    def test_unbuilt_index_is_built_on_first_use(self, paper_graph):
        index = BCIndex(paper_graph, build=False)
        engine = BCCEngine(paper_graph, index=index)
        assert not engine.has_index()
        engine.search(Query("l2p-bcc", ("ql", "qr")))
        assert engine.counters["index_builds"] == 1
        assert engine.has_index()


class TestVersionInvalidation:
    def test_mutation_clears_caches(self, paper_graph):
        engine = BCCEngine(paper_graph).prepare()
        engine.search(Query("lp-bcc", ("ql", "qr")))
        engine.ensure_index()
        assert engine.counters["group_builds"] >= 1
        paper_graph.add_edge("ql", "u1")
        assert not engine.is_prepared()
        assert not engine.has_index()
        response = engine.search(Query("lp-bcc", ("ql", "qr")))
        assert response.status in (STATUS_OK, STATUS_EMPTY)


class TestExplain:
    def test_explain_bcc_resolves_coreness_defaults(self, paper_graph):
        engine = BCCEngine(paper_graph).prepare()
        info = engine.explain(Query("lp-bcc", ("ql", "qr")))
        assert info["method"]["display"] == "LP-BCC"
        assert info["engine"]["prepared"] is True
        resolved = info["resolved"]
        assert resolved["left_label"] == "SE" and resolved["right_label"] == "UI"
        # Section 3.5 defaults: coreness of ql within SE is 4, of qr within UI is 3.
        assert resolved["k1"] == 4 and resolved["k2"] == 3
        # Explaining does not run the search.
        assert engine.counters["searches"] == 0

    def test_explain_l2p_defers_unset_k(self, paper_graph):
        info = BCCEngine(paper_graph).explain(Query("l2p-bcc", ("ql", "qr")))
        assert info["resolved"]["k1"] is None
        assert "candidate" in info["resolved"]["note"]

    def test_explain_baselines_and_multilabel(self, paper_graph):
        engine = BCCEngine(paper_graph)
        ctc_info = engine.explain(Query("ctc", ("ql", "qr")))
        assert "trussness" in ctc_info["resolved"]["note"]
        mbcc_info = engine.explain(
            Query("mbcc", ("ql", "qr"), config=SearchConfig(core_parameters=(2, 2)))
        )
        assert mbcc_info["resolved"]["core_parameters"] == {"SE": 2, "UI": 2}

    def test_explain_malformed_query_raises(self, paper_graph):
        with pytest.raises(QueryError):
            BCCEngine(paper_graph).explain(Query("lp-bcc", ("ql", "v1")))
        # explain mirrors run_mbcc's validation: duplicate labels raise.
        with pytest.raises(QueryError):
            BCCEngine(paper_graph).explain(Query("mbcc", ("ql", "v1")))
        # Unknown vertices raise for every kind, baselines included.
        for method in ("lp-bcc", "ctc", "psa", "mbcc"):
            with pytest.raises(VertexNotFoundError):
                BCCEngine(paper_graph).explain(Query(method, ("ql", "ghost")))


class TestSearchMany:
    def test_batch_equals_sequential(self, tiny_baidu_bundle):
        pairs = generate_query_pairs(
            tiny_baidu_bundle, QuerySpec(count=5), seed=3
        )
        queries = [Query("lp-bcc", pair) for pair in pairs]
        batch = BCCEngine(tiny_baidu_bundle).search_many(queries)
        sequential = [
            BCCEngine(tiny_baidu_bundle).search(query) for query in queries
        ]
        assert len(batch) == len(queries)
        for got, want in zip(batch, sequential):
            assert got.status == want.status
            assert got.vertices == want.vertices
            assert got.iterations == want.iterations

    def test_batch_query_carries_shared_config(self, paper_graph):
        batch = BatchQuery(
            queries=(Query("online-bcc", ("ql", "qr")),),
            config=SearchConfig(k1=99, k2=99),
        )
        responses = BCCEngine(paper_graph).search_many(batch)
        assert responses[0].status == STATUS_EMPTY

    def test_member_query_config_beats_batch_config(self, paper_graph):
        batch = BatchQuery(
            queries=(
                Query("online-bcc", ("ql", "qr")),  # inherits batch config
                Query(
                    "online-bcc",
                    ("ql", "qr"),
                    config=SearchConfig(k1=4, k2=3),  # its own config wins
                ),
            ),
            config=SearchConfig(k1=99, k2=99),
        )
        inherited, own = BCCEngine(paper_graph).search_many(batch)
        assert inherited.status == STATUS_EMPTY
        assert own.status == STATUS_OK

    def test_call_config_overrides_batch_and_member_configs(self, paper_graph):
        batch = BatchQuery(
            queries=(
                Query(
                    "online-bcc", ("ql", "qr"), config=SearchConfig(k1=99, k2=99)
                ),
            ),
            config=SearchConfig(k1=77, k2=77),
        )
        responses = BCCEngine(paper_graph).search_many(
            batch, config=SearchConfig(k1=4, k2=3)
        )
        assert responses[0].status == STATUS_OK

    def test_acceptance_warm_batch_freezes_and_indexes_at_most_once(self):
        """Acceptance: >= 20 queries on a Table-3 synthetic network perform
        the CSR freeze and the BCIndex build at most once (counters)."""
        bundle = generate_baidu_network("tiny", seed=7)
        assert not bundle.graph.has_frozen()
        pairs = generate_query_pairs(bundle, QuerySpec(count=10), seed=1)
        queries = [
            Query(method, pair)
            for pair in pairs
            for method in ("online-bcc", "lp-bcc", "l2p-bcc")
        ]
        assert len(queries) >= 20
        engine = BCCEngine(bundle.graph)
        responses = engine.search_many(queries)
        assert len(responses) == len(queries)
        assert any(response.found for response in responses)
        assert engine.counters["searches"] == len(queries)
        # The whole batch paid preparation exactly once.
        assert engine.counters["csr_freezes"] == 1
        assert engine.counters["index_builds"] == 1
        assert engine.counters["prepare_calls"] == 1
        # Label groups were built at most once per label, not per query.
        assert engine.counters["group_builds"] <= len(bundle.graph.labels())
        # And only the first L2P-BCC query paid the index build.
        index_payers = [
            r for r in responses if r.timings["index_build_seconds"] > 0
        ]
        assert len(index_payers) == 1
