"""Unit tests for the method registry and its dispatch metadata."""

from __future__ import annotations

import pytest

from repro.api import (
    BCCEngine,
    Query,
    get_method,
    method_names,
    register_method,
    registered_methods,
    unregister_method,
)
from repro.exceptions import QueryError, UnknownMethodError


class TestBuiltins:
    def test_paper_figure_order(self):
        assert method_names(kinds=("baseline", "bcc")) == [
            "PSA",
            "CTC",
            "Online-BCC",
            "LP-BCC",
            "L2P-BCC",
        ]
        assert method_names(kinds=("multilabel",)) == ["mBCC"]

    def test_lookup_is_case_insensitive_over_all_names(self):
        for key in ("lp-bcc", "LP-BCC", "Lp-Bcc", "lp"):
            assert get_method(key).name == "lp-bcc"
        assert get_method("Online-BCC").name == "online-bcc"
        assert get_method("mbcc").kind == "multilabel"

    def test_unknown_method_raises_value_error(self):
        with pytest.raises(ValueError):
            get_method("Louvain")
        with pytest.raises(UnknownMethodError) as excinfo:
            get_method("Louvain")
        assert isinstance(excinfo.value, QueryError)
        assert "L2P-BCC" in str(excinfo.value)

    def test_metadata_flags(self):
        assert get_method("l2p-bcc").needs_index is True
        assert get_method("lp-bcc").needs_index is False
        # CTC opts out of the symmetric-k sweeps (it uses max trussness).
        assert get_method("ctc").symmetric_k is False
        assert get_method("psa").symmetric_k is True

    def test_registered_methods_filtering(self):
        kinds = {spec.kind for spec in registered_methods()}
        assert kinds == {"baseline", "bcc", "multilabel"}
        assert all(s.kind == "bcc" for s in registered_methods(kinds=("bcc",)))


class TestCustomRegistration:
    def test_register_dispatch_and_unregister(self, simple_two_label_graph):
        calls = []

        @register_method("echo", display="Echo", kind="baseline")
        def _echo(engine, query, config, instrumentation):
            calls.append(query.vertices)

            class _Result:
                vertices = set(query.vertices)

            return _Result()

        try:
            assert "Echo" in method_names()
            engine = BCCEngine(simple_two_label_graph)
            response = engine.search(Query("echo", ("a", "x")))
            assert response.found
            assert response.vertices == {"a", "x"}
            assert calls == [("a", "x")]
        finally:
            unregister_method("echo")
        assert "Echo" not in method_names()
        with pytest.raises(ValueError):
            get_method("echo")

    def test_duplicate_name_rejected(self):
        @register_method("dup-test", kind="baseline")
        def _first(engine, query, config, instrumentation):
            return None

        try:
            with pytest.raises(ValueError):

                @register_method("dup-test", kind="baseline")
                def _second(engine, query, config, instrumentation):
                    return None

        finally:
            unregister_method("dup-test")

    def test_alias_collision_rejected(self):
        with pytest.raises(ValueError):

            @register_method("fresh-name", aliases=("lp-bcc",), kind="baseline")
            def _colliding(engine, query, config, instrumentation):
                return None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            register_method("bad-kind", kind="quantum")

    def test_unregister_unknown_raises(self):
        with pytest.raises(UnknownMethodError):
            unregister_method("never-registered")
