"""Concurrent-serving tests: thread-safe caches, parity, hostile mutation.

Everything here is marked ``concurrency`` so CI can run it as a dedicated
job under a hard timeout — a deadlocked engine lock then fails fast instead
of hanging the runner (``pytest -m concurrency``).  The tests also run in
the plain tier-1 suite.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    STATUS_EMPTY,
    STATUS_OK,
    BCCEngine,
    Query,
    SearchConfig,
    register_method,
    unregister_method,
)
from repro.datasets import generate_baidu_network
from repro.eval.queries import QuerySpec, generate_query_pairs
from repro.exceptions import EmptyCommunityError
from repro.graph.generators import random_labeled_graph

pytestmark = pytest.mark.concurrency

STRESS_WORKERS = 8


def _batch_queries(bundle, count=10, methods=("online-bcc", "lp-bcc", "l2p-bcc")):
    pairs = generate_query_pairs(bundle, QuerySpec(count=count), seed=1)
    return [Query(method, pair) for pair in pairs for method in methods]


class TestFillOnceUnderContention:
    def test_stress_one_freeze_one_index_build_at_max_workers_8(self):
        """Acceptance: a threaded batch pays one CSR freeze, one BCindex
        build and one build per label group — counters prove it."""
        bundle = generate_baidu_network("tiny", seed=7)
        assert not bundle.graph.has_frozen()
        queries = _batch_queries(bundle)
        assert len(queries) >= 24

        engine = BCCEngine(bundle.graph)
        responses = engine.search_many(queries, max_workers=STRESS_WORKERS)
        assert len(responses) == len(queries)
        assert engine.counters_snapshot()["searches"] == len(queries)
        assert engine.counters_snapshot()["csr_freezes"] == 1
        assert engine.counters_snapshot()["index_builds"] == 1
        assert engine.counters_snapshot()["prepare_calls"] == 1

        # One build per label group: a sequential engine serving the same
        # batch builds exactly the groups the workload touches — the
        # threaded engine must not have built any group twice.
        sequential = BCCEngine(generate_baidu_network("tiny", seed=7).graph)
        sequential.search_many(queries)
        assert engine.counters_snapshot()["group_builds"] == sequential.counters_snapshot()["group_builds"]
        assert engine.counters_snapshot()["group_builds"] <= len(bundle.graph.labels())

    def test_group_fills_exactly_once_when_hammered(self, paper_graph):
        engine = BCCEngine(paper_graph)
        barrier = threading.Barrier(STRESS_WORKERS)

        def fetch():
            barrier.wait()
            return engine.group("SE")

        with ThreadPoolExecutor(max_workers=STRESS_WORKERS) as pool:
            groups = list(pool.map(lambda _: fetch(), range(STRESS_WORKERS)))
        assert engine.counters_snapshot()["group_builds"] == 1
        assert all(group is groups[0] for group in groups)

    def test_index_builds_exactly_once_when_hammered(self, paper_graph):
        engine = BCCEngine(paper_graph)
        barrier = threading.Barrier(STRESS_WORKERS)

        def fetch():
            barrier.wait()
            return engine.ensure_index()

        with ThreadPoolExecutor(max_workers=STRESS_WORKERS) as pool:
            indexes = list(pool.map(lambda _: fetch(), range(STRESS_WORKERS)))
        assert engine.counters_snapshot()["index_builds"] == 1
        assert all(index is indexes[0] for index in indexes)

    def test_prepare_freezes_exactly_once_when_hammered(self, paper_graph):
        engine = BCCEngine(paper_graph)
        barrier = threading.Barrier(STRESS_WORKERS)

        def prep():
            barrier.wait()
            engine.prepare()

        with ThreadPoolExecutor(max_workers=STRESS_WORKERS) as pool:
            list(pool.map(lambda _: prep(), range(STRESS_WORKERS)))
        assert engine.counters_snapshot()["csr_freezes"] == 1
        assert engine.counters_snapshot()["prepare_calls"] == STRESS_WORKERS


class TestConcurrentParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_threaded_batch_equals_sequential_search(self, seed):
        """Acceptance: max_workers=8 responses equal sequential answers
        position-for-position on randomized batches."""
        rng = random.Random(47_000 + seed)
        graph = random_labeled_graph(
            rng.randint(10, 24), 0.2 + rng.random() * 0.3, ["A", "B"], seed=seed
        )
        pairs = [edge for edge in graph.cross_edges()][:6]
        if not pairs:
            pytest.skip("random graph has no cross edge")
        config = SearchConfig(b=1, max_iterations=60)
        queries = [
            Query(method, pair, config=config)
            for pair in pairs
            for method in ("online-bcc", "lp-bcc", "l2p-bcc", "ctc", "psa")
        ]
        threaded = BCCEngine(graph).search_many(
            queries, max_workers=STRESS_WORKERS
        )
        sequential_engine = BCCEngine(graph)
        sequential = [sequential_engine.search(query) for query in queries]
        assert len(threaded) == len(queries)
        for got, want in zip(threaded, sequential):
            assert got.method == want.method
            assert got.status == want.status, got.method
            assert got.vertices == want.vertices, got.method
            assert got.iterations == want.iterations, got.method

    def test_threaded_batch_charges_index_build_to_one_query(self):
        """Index-build time is attributed to the thread that built it: one
        payer, and nobody's query_seconds goes negative from somebody
        else's build."""
        bundle = generate_baidu_network("tiny", seed=7)
        queries = _batch_queries(bundle)
        responses = BCCEngine(bundle.graph).search_many(
            queries, max_workers=STRESS_WORKERS
        )
        payers = [r for r in responses if r.timings["index_build_seconds"] > 0]
        assert len(payers) == 1
        assert all(r.timings["query_seconds"] >= 0 for r in responses)

    def test_threaded_batch_counters_match_sequential(self, tiny_baidu_bundle):
        # The CSR snapshot lives on the (session-scoped) graph, so only the
        # per-engine caches are comparable here; freeze-once under
        # contention is covered by the fresh-graph stress test above.
        queries = _batch_queries(tiny_baidu_bundle, count=5)
        threaded = BCCEngine(tiny_baidu_bundle.graph)
        threaded.search_many(queries, max_workers=STRESS_WORKERS)
        sequential = BCCEngine(tiny_baidu_bundle.graph)
        sequential.search_many(queries)
        for key in ("index_builds", "group_builds", "searches"):
            assert threaded.counters_snapshot()[key] == sequential.counters_snapshot()[key], key


class TestMutationDuringServing:
    def test_mutation_between_batches_invalidates_exactly_once(self):
        bundle = generate_baidu_network("tiny", seed=7)
        queries = _batch_queries(bundle, count=4)
        engine = BCCEngine(bundle.graph)
        engine.search_many(queries)
        assert engine.counters_snapshot()["csr_freezes"] == 1
        assert engine.counters_snapshot()["index_builds"] == 1
        assert engine.counters_snapshot()["invalidations"] == 0
        groups_before = engine.counters_snapshot()["group_builds"]

        # One mutation: every cache is invalidated once, then rebuilt once
        # by the next (threaded) batch — no repeated invalidation per query
        # and no duplicated rebuilds under contention.
        u = next(iter(bundle.graph.vertices()))
        bundle.graph.add_vertex("fresh-hire", label=bundle.graph.label(u))
        engine.search_many(queries, max_workers=STRESS_WORKERS)
        assert engine.counters_snapshot()["invalidations"] == 1
        assert engine.counters_snapshot()["csr_freezes"] == 2
        assert engine.counters_snapshot()["index_builds"] == 2
        assert engine.counters_snapshot()["group_builds"] == 2 * groups_before

    def test_hostile_runner_mutating_mid_batch_invalidates_once(self, paper_graph):
        """A runner that mutates the graph between queries of one batch:
        the next query detects the version change and rebuilds exactly once."""

        @register_method("hostile-mutator", display="Hostile-Mutator", kind="baseline")
        def _hostile(engine, query, config, instrumentation):
            engine.graph.add_edge("hostile-a", "hostile-b")
            raise EmptyCommunityError("mutated the serving graph")

        try:
            engine = BCCEngine(paper_graph)
            responses = engine.search_many(
                [
                    Query("lp-bcc", ("ql", "qr")),
                    Query("hostile-mutator", ("ql",)),
                    Query("lp-bcc", ("ql", "qr")),
                    Query("lp-bcc", ("ql", "qr")),
                ]
            )
            assert [r.status for r in responses] == [
                STATUS_OK,
                STATUS_EMPTY,
                STATUS_OK,
                STATUS_OK,
            ]
            # The two post-mutation queries observed one version change:
            # one invalidation, one label-group rebuild per touched label
            # (2 labels before + 2 after), not one per query.
            assert engine.counters_snapshot()["invalidations"] == 1
            assert engine.counters_snapshot()["group_builds"] == 4
        finally:
            unregister_method("hostile-mutator")

    def test_mutation_clears_result_cache(self, paper_graph):
        engine = BCCEngine(paper_graph, SearchConfig(k1=4, k2=3))
        query = Query("online-bcc", ("ql", "qr"))
        engine.search(query)
        assert engine.search(query).timings.get("cache_hit") == 1.0
        assert engine.result_cache_len() == 1
        paper_graph.add_edge("ql", "u1")
        response = engine.search(query)
        assert "cache_hit" not in response.timings
        assert engine.counters_snapshot()["invalidations"] == 1

    def test_concurrent_result_cache_hits_are_consistent(self, paper_graph):
        engine = BCCEngine(paper_graph, SearchConfig(k1=4, k2=3))
        query = Query("online-bcc", ("ql", "qr"))
        baseline = engine.search(query)

        def serve(_):
            return engine.search(query)

        with ThreadPoolExecutor(max_workers=STRESS_WORKERS) as pool:
            responses = list(pool.map(serve, range(32)))
        for response in responses:
            assert response.status == baseline.status
            assert response.vertices == baseline.vertices
        assert engine.counters_snapshot()["result_cache_hits"] == 32
        assert engine.counters_snapshot()["result_cache_misses"] == 1
