"""Parity suite: the prepared engine ≡ the legacy one-shot free functions.

The engine introduces shared, reusable state (one CSR snapshot, cached
label-group subgraphs, one BCindex) — this suite asserts over randomized
labeled graphs that none of it changes any answer: for every method, a warm
engine serving its Nth query returns exactly the community, iteration count
and query distance of the legacy free function, and ``search_many`` equals
sequential ``search``.
"""

from __future__ import annotations

import random

import pytest

from repro.api import BCCEngine, Query, SearchConfig
from repro.baselines.ctc import ctc_search
from repro.baselines.psa import psa_search
from repro.core.local_search import l2p_bcc_search
from repro.core.lp_bcc import lp_bcc_search
from repro.core.multilabel import mbcc_search
from repro.core.online_bcc import online_bcc_search
from repro.graph.generators import random_labeled_graph

SEEDS = range(20)

# method name -> (legacy one-shot callable, engine config) for a pair query.
PAIR_METHODS = {
    "online-bcc": (
        lambda g, ql, qr: online_bcc_search(g, ql, qr, b=1, max_iterations=60),
        SearchConfig(b=1, max_iterations=60),
    ),
    "lp-bcc": (
        lambda g, ql, qr: lp_bcc_search(g, ql, qr, b=1, max_iterations=60),
        SearchConfig(b=1, max_iterations=60),
    ),
    "l2p-bcc": (
        lambda g, ql, qr: l2p_bcc_search(g, ql, qr, b=1, max_iterations=60),
        SearchConfig(b=1, max_iterations=60),
    ),
    "ctc": (
        lambda g, ql, qr: ctc_search(g, [ql, qr], max_iterations=60),
        SearchConfig(max_iterations=60),
    ),
    "psa": (
        lambda g, ql, qr: psa_search(g, [ql, qr]),
        SearchConfig(),
    ),
}


def _random_graph(seed, labels=("A", "B")):
    rng = random.Random(91_000 + seed)
    return random_labeled_graph(
        rng.randint(8, 26), 0.15 + rng.random() * 0.35, list(labels), seed=seed
    )


def _cross_pair(graph):
    for u, v in graph.cross_edges():
        return (u, v)
    return None


class TestPairMethodParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_engine_matches_every_legacy_function(self, seed):
        graph = _random_graph(seed)
        pair = _cross_pair(graph)
        if pair is None:
            pytest.skip("random graph has no cross edge")
        q_left, q_right = pair
        # One warm engine serves every method in turn, so later methods run
        # with caches populated by earlier ones — parity must still be exact.
        engine = BCCEngine(graph).prepare()
        for method, (legacy, config) in PAIR_METHODS.items():
            expected = legacy(graph, q_left, q_right)
            response = engine.search(
                Query(method, (q_left, q_right)), config=config
            )
            if expected is None:
                assert not response.found, method
                assert response.reason is not None, method
            else:
                assert response.found, method
                assert response.vertices == set(expected.vertices), method
                assert response.iterations == getattr(
                    expected, "iterations", response.iterations
                ), method
                assert response.query_distance == pytest.approx(
                    getattr(expected, "query_distance", response.query_distance)
                ), method

    @pytest.mark.parametrize("seed", range(8))
    def test_repeated_engine_queries_are_stable(self, seed):
        graph = _random_graph(seed)
        pair = _cross_pair(graph)
        if pair is None:
            pytest.skip("random graph has no cross edge")
        engine = BCCEngine(graph)
        query = Query("lp-bcc", pair, config=SearchConfig(b=1, max_iterations=60))
        first = engine.search(query)
        second = engine.search(query)
        assert first.status == second.status
        assert first.vertices == second.vertices
        assert first.iterations == second.iterations


class TestMultilabelParity:
    @pytest.mark.parametrize("seed", range(10))
    def test_mbcc_engine_matches_legacy(self, seed):
        graph = _random_graph(seed, labels=("A", "B", "C"))
        by_label = {}
        for vertex in graph.vertices():
            by_label.setdefault(graph.label(vertex), vertex)
        if len(by_label) < 3:
            pytest.skip("random graph does not span three labels")
        query = tuple(by_label[label] for label in sorted(by_label))
        expected = mbcc_search(graph, list(query), b=1, max_iterations=60)
        response = BCCEngine(graph).prepare().search(
            Query("mbcc", query, config=SearchConfig(b=1, max_iterations=60))
        )
        if expected is None:
            assert not response.found
        else:
            assert response.found
            assert response.vertices == set(expected.vertices)
            assert response.iterations == expected.iterations


class TestBatchParity:
    def test_search_many_equals_sequential_search(self):
        graphs = [_random_graph(seed) for seed in range(6)]
        for graph in graphs:
            pair = _cross_pair(graph)
            if pair is None:
                continue
            queries = [
                Query(method, pair, config=config)
                for method, (_, config) in PAIR_METHODS.items()
            ]
            warm = BCCEngine(graph).search_many(queries)
            cold = [BCCEngine(graph).search(query) for query in queries]
            for got, want in zip(warm, cold):
                assert got.status == want.status, got.method
                assert got.vertices == want.vertices, got.method
                assert got.iterations == want.iterations, got.method
