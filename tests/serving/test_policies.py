"""Cache admission policies on the engine's LRU result cache.

Acceptance: expired entries miss (and are evicted), and a per-method budget
evicts only that method's entries.
"""

from __future__ import annotations

import pytest

from repro.api import BCCEngine, Query, SearchConfig
from repro.exceptions import QueryError
from repro.serving import (
    CacheAdmissionPolicy,
    CompositePolicy,
    MethodBudgetPolicy,
    ShardedBCCEngine,
    TTLPolicy,
)


class FakeClock:
    """A hand-advanced clock so TTL tests never sleep."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


def query_with_k(k: int) -> Query:
    return Query("online-bcc", ("ql", "qr"), config=SearchConfig(k1=k, k2=k))


class TestBasePolicy:
    def test_defaults_admit_everything_forever(self):
        policy = CacheAdmissionPolicy()
        assert policy.admit("lp-bcc", object()) is True
        assert policy.expired("lp-bcc", 1e9) is False
        assert policy.method_budget("lp-bcc") is None
        assert policy.now() >= 0.0


class TestTTLPolicy:
    def test_rejects_non_positive_ttl(self):
        with pytest.raises(QueryError):
            TTLPolicy(0)
        with pytest.raises(QueryError):
            TTLPolicy(-3)

    def test_fresh_entries_hit(self, paper_graph, clock):
        engine = BCCEngine(
            paper_graph,
            SearchConfig(k1=4, k2=3),
            result_cache_policy=TTLPolicy(30.0, clock=clock),
        )
        query = Query("online-bcc", ("ql", "qr"))
        engine.search(query)
        clock.advance(29.0)
        assert engine.search(query).timings.get("cache_hit") == 1.0

    def test_expired_entries_miss_and_are_evicted(self, paper_graph, clock):
        """Acceptance: an entry past its TTL is a miss, not a replay."""
        engine = BCCEngine(
            paper_graph,
            SearchConfig(k1=4, k2=3),
            result_cache_policy=TTLPolicy(30.0, clock=clock),
        )
        query = Query("online-bcc", ("ql", "qr"))
        engine.search(query)
        assert engine.result_cache_len() == 1
        clock.advance(31.0)
        stale = engine.search(query)
        assert "cache_hit" not in stale.timings  # the algorithm re-ran
        counters = engine.counters_snapshot()
        assert counters["result_cache_expirations"] == 1
        assert counters["result_cache_hits"] == 0
        # The re-run re-cached a fresh entry, which now hits again.
        assert engine.search(query).timings.get("cache_hit") == 1.0

    def test_cache_info_reports_expirations_and_policy(self, paper_graph, clock):
        engine = BCCEngine(
            paper_graph,
            SearchConfig(k1=4, k2=3),
            result_cache_policy=TTLPolicy(5.0, clock=clock),
        )
        query = Query("online-bcc", ("ql", "qr"))
        engine.search(query)
        clock.advance(6.0)
        engine.search(query)
        info = engine.result_cache_info()
        assert info["expirations"] == 1
        assert "TTLPolicy" in info["policy"]
        assert info["hit_rate"] == 0.0


class TestMethodBudgetPolicy:
    def test_rejects_negative_budgets(self):
        with pytest.raises(QueryError):
            MethodBudgetPolicy({"ctc": -1})
        with pytest.raises(QueryError):
            MethodBudgetPolicy({}, default=-2)

    def test_budget_evicts_only_that_methods_entries(self, paper_graph):
        """Acceptance: online-bcc's burst evicts online-bcc's oldest entry;
        the ctc entry survives untouched."""
        engine = BCCEngine(
            paper_graph,
            result_cache_policy=MethodBudgetPolicy({"online-bcc": 2}),
        )
        engine.search(Query("ctc", ("ql", "qr")))
        for k in (1, 2, 3):
            engine.search(query_with_k(k))
        info = engine.result_cache_info()
        assert info["entries_per_method"] == {"ctc": 1, "online-bcc": 2}
        assert engine.counters_snapshot()["result_cache_budget_evictions"] == 1
        # The ctc answer still hits; online-bcc's oldest (k=1) was evicted,
        # its newest (k=3) kept.
        assert (
            engine.search(Query("ctc", ("ql", "qr"))).timings.get("cache_hit")
            == 1.0
        )
        assert "cache_hit" not in engine.search(query_with_k(1)).timings
        assert engine.search(query_with_k(3)).timings.get("cache_hit") == 1.0

    def test_under_budget_methods_keep_every_entry(self, paper_graph):
        """Regression: with 2 entries under a budget of 3 the eviction
        slice bound used to go negative and evict the oldest entry anyway
        (budget B silently behaved like ~B/2)."""
        engine = BCCEngine(
            paper_graph,
            result_cache_policy=MethodBudgetPolicy({"online-bcc": 3}),
        )
        engine.search(query_with_k(1))
        engine.search(query_with_k(2))
        assert engine.result_cache_info()["entries_per_method"] == {
            "online-bcc": 2
        }
        assert engine.counters_snapshot()["result_cache_budget_evictions"] == 0
        assert engine.search(query_with_k(1)).timings.get("cache_hit") == 1.0
        assert engine.search(query_with_k(2)).timings.get("cache_hit") == 1.0

    def test_zero_budget_refuses_admission(self, paper_graph):
        engine = BCCEngine(
            paper_graph, result_cache_policy=MethodBudgetPolicy({"ctc": 0})
        )
        engine.search(Query("ctc", ("ql", "qr")))
        engine.search(Query("ctc", ("ql", "qr")))
        counters = engine.counters_snapshot()
        assert counters["result_cache_rejections"] >= 1
        assert counters["result_cache_hits"] == 0
        assert engine.result_cache_len() == 0

    def test_default_budget_applies_to_unlisted_methods(self, paper_graph):
        engine = BCCEngine(
            paper_graph,
            result_cache_policy=MethodBudgetPolicy({}, default=1),
        )
        engine.search(query_with_k(1))
        engine.search(query_with_k(2))
        assert engine.result_cache_info()["entries_per_method"] == {
            "online-bcc": 1
        }


class TestCompositePolicy:
    def test_combines_ttl_and_budget(self, paper_graph, clock):
        policy = CompositePolicy(
            [
                TTLPolicy(10.0, clock=clock),
                MethodBudgetPolicy({"online-bcc": 1}),
            ],
            clock=clock,
        )
        engine = BCCEngine(paper_graph, result_cache_policy=policy)
        engine.search(query_with_k(1))
        engine.search(query_with_k(2))  # budget 1: k=1 evicted
        assert engine.result_cache_len() == 1
        assert engine.search(query_with_k(2)).timings.get("cache_hit") == 1.0
        clock.advance(11.0)  # TTL: the survivor expires too
        assert "cache_hit" not in engine.search(query_with_k(2)).timings

    def test_tightest_budget_wins_and_any_member_expires(self):
        composite = CompositePolicy(
            [MethodBudgetPolicy({"x": 5}), MethodBudgetPolicy({"x": 2})]
        )
        assert composite.method_budget("x") == 2
        assert composite.method_budget("y") is None
        expiring = CompositePolicy([CacheAdmissionPolicy(), TTLPolicy(1.0)])
        assert expiring.expired("x", 2.0) is True
        assert expiring.admit("x", object()) is True


class TestPolicyOnShardedEngine:
    def test_policy_reaches_every_shard_engine(
        self, two_component_paper_graph, clock
    ):
        """The sharded engine forwards one shared policy to its shards."""
        engine = ShardedBCCEngine(
            two_component_paper_graph,
            SearchConfig(k1=4, k2=3, b=1),
            result_cache_policy=TTLPolicy(30.0, clock=clock),
        )
        query = Query("online-bcc", ("ql", "qr"))
        engine.search(query)
        assert engine.search(query).timings.get("cache_hit") == 1.0
        clock.advance(31.0)
        assert "cache_hit" not in engine.search(query).timings
        stats = engine.stats()
        assert stats.cache["expirations"] == 1
