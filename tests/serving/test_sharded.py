"""ShardedBCCEngine: routing, laziness, re-partitioning and parity.

The acceptance contracts of the sharded serving layer:

* answers equal the monolithic engine position-for-position over randomized
  multi-component graphs (communities, iteration counts, query distances,
  error/empty rows);
* cross-component queries short-circuit to ``status="empty"`` with
  ``REASON_CROSS_SHARD`` — never an exception;
* laziness is provable from :class:`ServingStats`: a batch touching only
  shard A performs zero freezes / index builds on shard B;
* one graph mutation triggers exactly one re-partition.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.api import (
    STATUS_EMPTY,
    STATUS_ERROR,
    STATUS_OK,
    BatchQuery,
    BCCEngine,
    Query,
    SearchConfig,
)
from repro.exceptions import (
    REASON_CROSS_SHARD,
    REASON_MISSING_VERTEX,
    REASON_UNKNOWN_METHOD,
    QueryError,
    UnknownMethodError,
    VertexNotFoundError,
)
from repro.graph.labeled_graph import LabeledGraph
from repro.serving import ShardedBCCEngine

from tests.serving.conftest import random_multi_component_graph

METHODS = ("online-bcc", "lp-bcc", "l2p-bcc", "ctc", "psa")
PARITY_CONFIG = SearchConfig(b=1, max_iterations=60)


def assert_equal_responses(got, want, *, context=""):
    """Sharded and monolithic answers must match in every observable.

    ``reason`` is compared only for error rows: for cross-component empties
    the router reports ``REASON_CROSS_SHARD`` while the monolithic engine
    reports the method's own discovery of the same fact.
    """
    assert got.method == want.method, context
    assert got.status == want.status, (context, got.reason, want.reason)
    assert got.vertices == want.vertices, context
    assert got.iterations == want.iterations, context
    if math.isinf(want.query_distance):
        assert math.isinf(got.query_distance), context
    else:
        assert got.query_distance == want.query_distance, context
    if want.status == STATUS_ERROR:
        assert got.reason == want.reason, context


class TestConstruction:
    def test_accepts_bundle(self, tiny_baidu_bundle):
        engine = ShardedBCCEngine(tiny_baidu_bundle)
        assert engine.graph is tiny_baidu_bundle.graph

    def test_rejects_non_graph(self):
        with pytest.raises(TypeError):
            ShardedBCCEngine(42)

    def test_partition_covers_every_vertex(self, two_component_paper_graph):
        engine = ShardedBCCEngine(two_component_paper_graph)
        assert engine.shard_count() == 2
        shards = {engine.shard_of(v) for v in two_component_paper_graph.vertices()}
        assert shards == {0, 1}
        # The paper component and the "b:*" component route separately.
        assert engine.shard_of("ql") == engine.shard_of("qr")
        assert engine.shard_of("b:s1") == engine.shard_of("b:u1")
        assert engine.shard_of("ql") != engine.shard_of("b:s1")

    def test_no_shard_engine_exists_before_any_query(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(two_component_paper_graph)
        assert engine.shards_built() == []

    def test_shard_of_unknown_vertex_raises(self, two_component_paper_graph):
        with pytest.raises(VertexNotFoundError):
            ShardedBCCEngine(two_component_paper_graph).shard_of("ghost")


class TestRouting:
    def test_same_component_query_answers_like_monolithic(
        self, two_component_paper_graph
    ):
        config = SearchConfig(k1=4, k2=3, b=1)
        sharded = ShardedBCCEngine(two_component_paper_graph, config)
        mono = BCCEngine(two_component_paper_graph.copy(), config)
        query = Query("online-bcc", ("ql", "qr"))
        assert_equal_responses(sharded.search(query), mono.search(query))

    def test_cross_component_query_is_empty_cross_shard_never_exception(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(two_component_paper_graph)
        for method in METHODS:
            response = engine.search(Query(method, ("ql", "b:u1")))
            assert response.status == STATUS_EMPTY, method
            assert response.reason == REASON_CROSS_SHARD, method
            assert response.vertices == set()
            assert response.query_distance == math.inf
            assert response.timings["total_seconds"] >= 0
        # The short-circuit never built any shard engine.
        assert engine.shards_built() == []
        snapshot = engine.counters_snapshot()
        assert snapshot["cross_shard_queries"] == len(METHODS)
        assert snapshot["searches"] == len(METHODS)

    def test_isolated_query_vertex_routes_to_its_own_shard(
        self, two_component_paper_graph
    ):
        two_component_paper_graph.add_vertex("loner", label="SE")
        engine = ShardedBCCEngine(two_component_paper_graph)
        assert engine.shard_count() == 3
        # A single-vertex query (PSA accepts arity 1) serves from the
        # isolated shard without crashing...
        mono = BCCEngine(two_component_paper_graph.copy())
        sharded_answer = engine.search(Query("psa", ("loner",)))
        mono_answer = mono.search(Query("psa", ("loner",)))
        assert_equal_responses(sharded_answer, mono_answer)
        # ...and any pair query naming the loner is cross-shard empty.
        paired = engine.search(Query("lp-bcc", ("loner", "qr")))
        assert paired.status == STATUS_EMPTY
        assert paired.reason == REASON_CROSS_SHARD

    def test_unknown_vertex_raises_like_monolithic(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(two_component_paper_graph)
        with pytest.raises(VertexNotFoundError):
            engine.search(Query("lp-bcc", ("ql", "ghost")))

    def test_unknown_method_raises_before_routing(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(two_component_paper_graph)
        # Even a cross-shard pair: method resolution fails first, exactly as
        # the monolithic engine's dispatch would.
        with pytest.raises(UnknownMethodError):
            engine.search(Query("Louvain", ("ql", "b:u1")))

    def test_empty_graph_engine_is_serveable(self):
        engine = ShardedBCCEngine(LabeledGraph())
        assert engine.shard_count() == 0
        assert engine.shards_built() == []
        with pytest.raises(VertexNotFoundError):
            engine.search(Query("lp-bcc", ("a", "b")))
        rows = engine.search_many(
            [Query("lp-bcc", ("a", "b"))], on_error="return"
        )
        assert rows[0].status == STATUS_ERROR
        assert rows[0].reason == REASON_MISSING_VERTEX
        # The stats endpoint works on an empty partition too.
        payload = engine.stats().to_dict()
        assert payload["graph"]["components"] == 0


class TestLazyPreparation:
    def test_query_prepares_only_its_own_shard(self, two_component_paper_graph):
        engine = ShardedBCCEngine(
            two_component_paper_graph, SearchConfig(k1=4, k2=3, b=1)
        )
        shard_a = engine.shard_of("ql")
        shard_b = engine.shard_of("b:s1")
        # A warm batch (including an index-based method) on shard A only.
        queries = [
            Query(method, ("ql", "qr"))
            for method in ("online-bcc", "lp-bcc", "l2p-bcc")
        ] * 3
        responses = engine.search_many(queries)
        assert all(r.status == STATUS_OK for r in responses)
        assert engine.shards_built() == [shard_a]

        stats = engine.stats()
        block_a = stats.shard(shard_a)
        block_b = stats.shard(shard_b)
        # Laziness, proven from the stats endpoint: shard A paid exactly one
        # freeze and one index build; shard B did zero work of any kind.
        assert block_a["built"] is True
        assert block_a["counters"]["csr_freezes"] == 1
        assert block_a["counters"]["index_builds"] == 1
        assert block_a["counters"]["searches"] == len(queries)
        assert block_b["built"] is False
        assert block_b["counters"]["csr_freezes"] == 0
        assert block_b["counters"]["index_builds"] == 0
        assert block_b["counters"]["searches"] == 0

    def test_freeze_cost_is_per_component_not_whole_graph(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(two_component_paper_graph)
        shard_a = engine.shard_of("ql")
        engine.search(Query("online-bcc", ("ql", "qr")))
        shard_graph = engine.shard_engine(shard_a).graph
        # The shard engine serves (and froze) only its component.
        assert shard_graph.num_vertices() < two_component_paper_graph.num_vertices()
        assert shard_graph.has_frozen()
        assert not two_component_paper_graph.has_frozen()


class TestRepartition:
    def test_mutation_triggers_exactly_one_repartition(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(
            two_component_paper_graph, SearchConfig(k1=4, k2=3, b=1)
        )
        engine.search(Query("online-bcc", ("ql", "qr")))
        assert engine.counters_snapshot()["partitions"] == 1
        assert engine.shard_count() == 2

        # Bridge the components: the next serving calls must see ONE new
        # partition with a single shard, however many queries observe it.
        two_component_paper_graph.add_edge("v10", "b:s3")
        before = engine.shards_built()
        for _ in range(4):
            engine.search(Query("online-bcc", ("ql", "qr")))
        assert engine.counters_snapshot()["partitions"] == 2
        assert engine.shard_count() == 1
        # The old shard engines were discarded with the old partition.
        assert before != engine.shards_built() or before == []

    def test_cross_shard_pair_becomes_answerable_after_bridge(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(two_component_paper_graph)
        blocked = engine.search(Query("ctc", ("ql", "b:s1")))
        assert blocked.reason == REASON_CROSS_SHARD
        two_component_paper_graph.add_edge("ql", "b:s1")
        after = engine.search(Query("ctc", ("ql", "b:s1")))
        assert after.reason != REASON_CROSS_SHARD
        mono = BCCEngine(two_component_paper_graph.copy())
        assert_equal_responses(after, mono.search(Query("ctc", ("ql", "b:s1"))))


class TestSearchMany:
    def test_position_alignment_across_shards_and_failures(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(
            two_component_paper_graph, SearchConfig(k1=4, k2=3, b=1)
        )
        batch = [
            Query("online-bcc", ("ql", "qr")),        # shard A: ok
            Query("online-bcc", ("ql", "b:u1")),      # cross-shard: empty
            Query("lp-bcc", ("ql", "ghost")),         # unknown vertex: error
            Query("no-such-method", ("ql", "qr")),    # unknown method: error
            Query("online-bcc", ("b:s1", "b:u1")),    # shard B: answered
        ]
        responses = engine.search_many(batch, on_error="return")
        assert [r.status for r in responses] == [
            STATUS_OK,
            STATUS_EMPTY,
            STATUS_ERROR,
            STATUS_ERROR,
            responses[4].status,  # shard B answer asserted below
        ]
        assert responses[1].reason == REASON_CROSS_SHARD
        assert responses[2].reason == REASON_MISSING_VERTEX
        assert responses[3].reason == REASON_UNKNOWN_METHOD
        mono = BCCEngine(
            two_component_paper_graph.copy(), SearchConfig(k1=4, k2=3, b=1)
        )
        assert_equal_responses(
            responses[4], mono.search(Query("online-bcc", ("b:s1", "b:u1")))
        )

    def test_raise_policy_aborts_on_missing_vertex(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(two_component_paper_graph)
        with pytest.raises(VertexNotFoundError):
            engine.search_many(
                [Query("lp-bcc", ("ql", "qr")), Query("lp-bcc", ("ql", "ghost"))]
            )

    def test_cross_shard_rows_never_raise_even_under_raise_policy(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(two_component_paper_graph)
        responses = engine.search_many(
            [Query("lp-bcc", ("ql", "b:u1"))], on_error="raise"
        )
        assert responses[0].status == STATUS_EMPTY
        assert responses[0].reason == REASON_CROSS_SHARD

    def test_batch_structure_errors_always_raise(self, two_component_paper_graph):
        engine = ShardedBCCEngine(two_component_paper_graph)
        with pytest.raises(QueryError, match="member 1"):
            engine.search_many([Query("ctc", ("ql",)), "not-a-query"])
        with pytest.raises(QueryError):
            engine.search_many([], on_error="ignore")
        with pytest.raises(QueryError):
            engine.search_many([], max_workers=0)

    def test_batch_only_builds_touched_shards(self, two_component_paper_graph):
        engine = ShardedBCCEngine(two_component_paper_graph)
        engine.search_many([Query("ctc", ("b:s1", "b:u1"))] * 4)
        assert engine.shards_built() == [engine.shard_of("b:s1")]

    def test_batch_config_precedence_matches_monolithic(
        self, two_component_paper_graph
    ):
        batch = BatchQuery(
            queries=(
                Query("online-bcc", ("ql", "qr")),  # inherits batch config
                Query(
                    "online-bcc",
                    ("ql", "qr"),
                    config=SearchConfig(k1=4, k2=3),  # its own config wins
                ),
            ),
            config=SearchConfig(k1=99, k2=99),
        )
        inherited, own = ShardedBCCEngine(two_component_paper_graph).search_many(
            batch
        )
        assert inherited.status == STATUS_EMPTY
        assert own.status == STATUS_OK

    def test_result_cache_serves_repeats_within_a_shard(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(
            two_component_paper_graph, SearchConfig(k1=4, k2=3, b=1)
        )
        first, second = engine.search_many(
            [Query("online-bcc", ("ql", "qr"))] * 2
        )
        assert "cache_hit" not in first.timings
        assert second.timings["cache_hit"] == 1.0
        fresh = engine.search_many(
            [Query("online-bcc", ("ql", "qr"))], use_cache=False
        )
        assert "cache_hit" not in fresh[0].timings


class TestExplain:
    def test_explain_same_shard_includes_engine_explain(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(two_component_paper_graph)
        info = engine.explain(Query("lp-bcc", ("ql", "qr")))
        assert info["routing"]["cross_shard"] is False
        assert info["shard"] == engine.shard_of("ql")
        assert info["engine"]["resolved"]["k1"] == 4

    def test_explain_cross_shard_reports_placements_without_building(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(two_component_paper_graph)
        info = engine.explain(Query("lp-bcc", ("ql", "b:u1")))
        assert info["routing"]["cross_shard"] is True
        assert "engine" not in info
        assert engine.shards_built() == []


class TestParity:
    """Randomized acceptance: sharded == monolithic position-for-position."""

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_multi_component_parity(self, seed):
        graph, part_vertices = random_multi_component_graph(
            48_000 + seed, num_components=3
        )
        rng = random.Random(seed)

        # Same-component cross-label pairs (the answerable workload)...
        queries = []
        for vertices in part_vertices:
            labelled = {"A": [], "B": []}
            for vertex in vertices:
                labelled[graph.label(vertex)].append(vertex)
            if not labelled["A"] or not labelled["B"]:
                continue
            for _ in range(2):
                pair = (rng.choice(labelled["A"]), rng.choice(labelled["B"]))
                for method in METHODS:
                    queries.append(Query(method, pair, config=PARITY_CONFIG))
        # ...plus cross-component pairs with distinct labels (so the
        # monolithic method validates, then discovers the disconnection)...
        for _ in range(3):
            left_part, right_part = rng.sample(range(len(part_vertices)), 2)
            left = next(
                (v for v in part_vertices[left_part] if graph.label(v) == "A"),
                None,
            )
            right = next(
                (v for v in part_vertices[right_part] if graph.label(v) == "B"),
                None,
            )
            if left is None or right is None:
                continue
            for method in METHODS:
                queries.append(
                    Query(method, (left, right), config=PARITY_CONFIG)
                )
        # ...plus guaranteed error rows.
        queries.append(Query("lp-bcc", ("c0:0", "ghost"), config=PARITY_CONFIG))
        queries.append(Query("not-a-method", ("c0:0",), config=PARITY_CONFIG))
        if not queries:
            pytest.skip("random graph produced no usable query pairs")

        sharded = ShardedBCCEngine(graph).search_many(
            queries, on_error="return"
        )
        mono = BCCEngine(graph.copy()).search_many(queries, on_error="return")
        assert len(sharded) == len(mono) == len(queries)
        for position, (got, want) in enumerate(zip(sharded, mono)):
            assert_equal_responses(
                got, want, context=(position, queries[position].method)
            )

    @pytest.mark.parametrize("max_workers", [1, 4])
    def test_parity_holds_for_scatter_gather(self, max_workers):
        graph, part_vertices = random_multi_component_graph(777, 2)
        queries = []
        for vertices in part_vertices:
            pairs = [
                (u, v)
                for u in vertices
                for v in vertices
                if graph.has_edge(u, v) and graph.label(u) != graph.label(v)
            ][:3]
            for pair in pairs:
                for method in ("online-bcc", "ctc", "psa"):
                    queries.append(Query(method, pair, config=PARITY_CONFIG))
        if not queries:
            pytest.skip("random graph produced no cross edges")
        sharded = ShardedBCCEngine(graph).search_many(
            queries, max_workers=max_workers
        )
        mono = BCCEngine(graph.copy()).search_many(queries)
        for got, want in zip(sharded, mono):
            assert_equal_responses(got, want)
