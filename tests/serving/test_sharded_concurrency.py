"""Concurrent scatter-gather over shards.

Marked ``concurrency`` so CI's dedicated hard-timeout job runs it — a
deadlock between the router's partition/shards locks and the shard engines'
cache locks must fail fast, not hang the runner.  The tests also run in the
plain tier-1 suite.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import BCCEngine, Query, SearchConfig
from repro.serving import ShardedBCCEngine

from tests.serving.conftest import random_multi_component_graph

pytestmark = pytest.mark.concurrency

STRESS_WORKERS = 8


def _cross_label_pairs(graph, vertices, limit):
    pairs = [
        (u, v)
        for u in vertices
        for v in vertices
        if graph.has_edge(u, v) and graph.label(u) != graph.label(v)
    ]
    return pairs[:limit]


class TestScatterGatherParity:
    @pytest.mark.parametrize("seed", range(3))
    def test_threaded_scatter_gather_equals_sequential(self, seed):
        """Acceptance: max_workers=8 across shards returns answers equal to
        sequential search position-for-position."""
        graph, part_vertices = random_multi_component_graph(52_000 + seed, 3)
        config = SearchConfig(b=1, max_iterations=60)
        queries = []
        for vertices in part_vertices:
            for pair in _cross_label_pairs(graph, vertices, 3):
                for method in ("online-bcc", "lp-bcc", "ctc", "psa"):
                    queries.append(Query(method, pair, config=config))
        # Cross-shard rows ride along in the same threaded batch.
        queries.append(
            Query("lp-bcc", (part_vertices[0][0], part_vertices[1][0]), config=config)
        )
        if len(queries) <= 1:
            pytest.skip("random graph produced no cross edges")

        threaded = ShardedBCCEngine(graph).search_many(
            queries, max_workers=STRESS_WORKERS
        )
        sequential_engine = ShardedBCCEngine(graph)
        sequential = [sequential_engine.search(query) for query in queries]
        assert len(threaded) == len(queries)
        for got, want in zip(threaded, sequential):
            assert got.method == want.method
            assert got.status == want.status, got.method
            assert got.reason == want.reason, got.method
            assert got.vertices == want.vertices, got.method
            assert got.iterations == want.iterations, got.method


class TestFillOnceUnderContention:
    def test_each_shard_engine_builds_exactly_once_when_hammered(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(two_component_paper_graph)
        shard_id = engine.shard_of("ql")
        barrier = threading.Barrier(STRESS_WORKERS)

        def fetch():
            barrier.wait()
            return engine.shard_engine(shard_id)

        with ThreadPoolExecutor(max_workers=STRESS_WORKERS) as pool:
            engines = list(pool.map(lambda _: fetch(), range(STRESS_WORKERS)))
        assert all(built is engines[0] for built in engines)
        assert engine.counters_snapshot()["shard_engines_built"] == 1
        # The single build prepared the shard: one counted freeze.
        assert engines[0].counters_snapshot()["csr_freezes"] == 1

    def test_threaded_batch_prepares_each_touched_shard_once(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(
            two_component_paper_graph, SearchConfig(k1=4, k2=3, b=1)
        )
        queries = [
            Query(method, pair)
            for pair in (("ql", "qr"), ("b:s1", "b:u1"))
            for method in ("online-bcc", "lp-bcc", "online-bcc", "lp-bcc")
        ]
        responses = engine.search_many(queries, max_workers=STRESS_WORKERS)
        assert len(responses) == len(queries)
        assert engine.counters_snapshot()["shard_engines_built"] == 2
        for shard_id in engine.shards_built():
            shard_counters = engine.shard_engine(shard_id).counters_snapshot()
            assert shard_counters["csr_freezes"] == 1
            assert shard_counters["prepare_calls"] == 1


class TestRepartitionUnderContention:
    def test_mutation_repartitions_exactly_once_across_threads(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(
            two_component_paper_graph, SearchConfig(k1=4, k2=3, b=1)
        )
        engine.search(Query("online-bcc", ("ql", "qr")))
        assert engine.counters_snapshot()["partitions"] == 1

        # Mutate, then hammer the engine from many threads: every thread
        # observes the version change, exactly one re-partition runs.
        two_component_paper_graph.add_edge("v10", "b:s3")
        barrier = threading.Barrier(STRESS_WORKERS)

        def serve():
            barrier.wait()
            return engine.search(Query("online-bcc", ("ql", "qr")))

        with ThreadPoolExecutor(max_workers=STRESS_WORKERS) as pool:
            responses = list(pool.map(lambda _: serve(), range(STRESS_WORKERS)))
        assert all(r.status == responses[0].status for r in responses)
        assert engine.counters_snapshot()["partitions"] == 2
        assert engine.shard_count() == 1

    def test_concurrent_mixed_shard_traffic_with_result_cache(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(
            two_component_paper_graph, SearchConfig(k1=4, k2=3, b=1)
        )
        query_a = Query("online-bcc", ("ql", "qr"))
        query_b = Query("online-bcc", ("b:s1", "b:u1"))
        baseline_a = engine.search(query_a)
        baseline_b = engine.search(query_b)

        def serve(index):
            return engine.search(query_a if index % 2 else query_b)

        with ThreadPoolExecutor(max_workers=STRESS_WORKERS) as pool:
            responses = list(pool.map(serve, range(32)))
        for index, response in enumerate(responses):
            want = baseline_a if index % 2 else baseline_b
            assert response.status == want.status
            assert response.vertices == want.vertices
        stats = engine.stats()
        assert stats.cache["hits"] == 32
        assert stats.cache["misses"] == 2
