"""ServingStats and LatencyHistogram: the stats-endpoint payload."""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import BCCEngine, Query, SearchConfig
from repro.api.engine import ENGINE_COUNTER_NAMES
from repro.serving import LatencyHistogram, ServingStats, ShardedBCCEngine
from repro.serving.stats import (
    aggregate_counters,
    engine_payload,
    zero_engine_counters,
)


class TestLatencyHistogram:
    def test_empty_snapshot(self):
        snapshot = LatencyHistogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean_seconds"] is None
        assert snapshot["p95_seconds"] is None
        assert snapshot["buckets"][-1]["le"] == "inf"

    def test_observations_land_in_log_buckets(self):
        histogram = LatencyHistogram()
        for value in (0.00005, 0.002, 0.002, 0.2, 100.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 5
        assert snapshot["max_seconds"] == 100.0
        by_bound = {b["le"]: b["count"] for b in snapshot["buckets"]}
        assert by_bound[0.0001] == 1      # 50µs
        assert by_bound[0.00316] == 2     # the two 2ms observations
        assert by_bound[0.316] == 1       # 200ms
        assert by_bound["inf"] == 1       # 100s overflow
        assert sum(b["count"] for b in snapshot["buckets"]) == 5

    def test_quantiles_are_bucket_upper_bounds(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.observe(0.002)  # bucket le=0.00316
        histogram.observe(0.5)  # bucket le=1.0
        snapshot = histogram.snapshot()
        assert snapshot["p50_seconds"] == 0.00316
        assert snapshot["p95_seconds"] == 0.00316
        assert snapshot["p99_seconds"] == 0.00316
        assert snapshot["max_seconds"] == 0.5

    def test_negative_and_overflow_observations_are_safe(self):
        histogram = LatencyHistogram()
        histogram.observe(-1.0)  # clamped to 0
        histogram.observe(1e9)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 2
        # Overflow quantile reports the observed max, not a fake bound.
        assert snapshot["p99_seconds"] == 1e9

    def test_thread_safe_observation(self):
        histogram = LatencyHistogram()

        def hammer():
            for _ in range(1000):
                histogram.observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.snapshot()["count"] == 8000

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=())


class TestLatencyHistogramMerge:
    def test_merge_sums_counts_sums_and_maxes(self):
        left = LatencyHistogram()
        right = LatencyHistogram()
        for value in (0.00005, 0.002):
            left.observe(value)
        for value in (0.002, 0.2, 100.0):
            right.observe(value)
        merged = LatencyHistogram().merge(left).merge(right)
        snapshot = merged.snapshot()
        assert snapshot["count"] == 5
        assert snapshot["sum_seconds"] == pytest.approx(100.20405)
        assert snapshot["max_seconds"] == 100.0
        by_bound = {b["le"]: b["count"] for b in snapshot["buckets"]}
        assert by_bound[0.0001] == 1
        assert by_bound[0.00316] == 2  # one from each side, same bucket
        assert by_bound[0.316] == 1
        assert by_bound["inf"] == 1

    def test_merge_is_chainable_and_leaves_sources_intact(self):
        source = LatencyHistogram()
        source.observe(0.01)
        merged = LatencyHistogram().merge(source).merge(source)
        assert merged.snapshot()["count"] == 2
        assert source.snapshot()["count"] == 1

    def test_merge_refuses_mismatched_bounds(self):
        coarse = LatencyHistogram(bounds=(0.001, 1.0))
        with pytest.raises(ValueError):
            LatencyHistogram().merge(coarse)
        with pytest.raises(TypeError):
            LatencyHistogram().merge({"count": 3})

    def test_merge_of_empty_histograms_is_empty(self):
        merged = LatencyHistogram().merge(LatencyHistogram())
        snapshot = merged.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean_seconds"] is None

    def test_bounds_property_is_sorted_tuple(self):
        histogram = LatencyHistogram(bounds=(1.0, 0.001))
        assert histogram.bounds == (0.001, 1.0)


class TestHelpers:
    def test_zero_engine_counters_mirror_the_engine(self, paper_graph):
        zeros = zero_engine_counters()
        assert set(zeros) == set(ENGINE_COUNTER_NAMES)
        assert set(zeros) == set(BCCEngine(paper_graph).counters_snapshot())
        assert all(value == 0 for value in zeros.values())

    def test_aggregate_counters_sums_keywise(self):
        total = aggregate_counters([{"a": 1, "b": 2}, {"a": 3, "c": 4}])
        assert total == {"a": 4, "b": 2, "c": 4}

    def test_engine_payload_shape(self, paper_graph):
        engine = BCCEngine(paper_graph).prepare()
        payload = engine_payload(engine)
        assert payload["vertices"] == paper_graph.num_vertices()
        assert payload["prepared"] is True
        assert payload["counters"]["prepare_calls"] == 1
        assert payload["cache"]["capacity"] > 0


class TestServingStats:
    def test_monolithic_snapshot_is_json_serializable(self, paper_graph):
        engine = BCCEngine(paper_graph, SearchConfig(k1=4, k2=3)).prepare()
        engine.search(Query("online-bcc", ("ql", "qr")))
        engine.search(Query("online-bcc", ("ql", "qr")))
        stats = ServingStats.from_engine(engine, name="paper")
        document = json.loads(stats.to_json())
        assert document["name"] == "paper"
        assert document["kind"] == "monolithic"
        assert document["counters"]["searches"] == 2
        assert document["cache"]["hits"] == 1
        assert "shards" not in document

    def test_sharded_snapshot_aggregates_and_lists_shards(
        self, two_component_paper_graph
    ):
        engine = ShardedBCCEngine(
            two_component_paper_graph, SearchConfig(k1=4, k2=3, b=1)
        )
        query = Query("online-bcc", ("ql", "qr"))
        engine.search(query)
        engine.search(query)  # result-cache hit inside shard A
        engine.search(Query("online-bcc", ("ql", "b:u1")))  # cross-shard
        stats = engine.stats(name="two-components")

        document = json.loads(stats.to_json())
        assert document["kind"] == "sharded"
        assert document["graph"]["components"] == 2
        assert len(document["shards"]) == 2
        # Router counters: 3 served queries, 1 of them cross-shard.
        assert document["counters"]["searches"] == 3
        assert document["counters"]["cross_shard_queries"] == 1
        assert document["counters"]["partitions"] == 1
        # Aggregated cache: one hit, one miss across shards.
        assert document["cache"]["hits"] == 1
        assert document["cache"]["misses"] == 1
        assert document["cache"]["hit_rate"] == 0.5
        # Latency histogram saw every served query, including the
        # cross-shard short-circuit.
        assert document["latency"]["count"] == 3

    def test_shard_accessor_raises_for_unknown_shard(self, paper_graph):
        engine = ShardedBCCEngine(paper_graph)
        with pytest.raises(IndexError):
            engine.stats().shard(99)
