"""Shared fixtures and helpers for the serving-layer tests.

Multi-component graphs are the whole point of the sharded engine, so the
helpers here compose several independently generated labeled graphs into
one graph with known, disjoint connected components (vertices are prefixed
per component, so component membership is readable in test failures).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

import pytest

from repro.graph.generators import paper_example_graph, random_labeled_graph
from repro.graph.labeled_graph import LabeledGraph


def prefixed_copy(graph: LabeledGraph, prefix: str) -> LabeledGraph:
    """A copy of ``graph`` with every vertex renamed to ``prefix:vertex``."""
    renamed = LabeledGraph()
    for vertex in graph.vertices():
        renamed.add_vertex(f"{prefix}:{vertex}", label=graph.label(vertex))
    for u, v in graph.edges():
        renamed.add_edge(f"{prefix}:{u}", f"{prefix}:{v}")
    return renamed


def compose_components(parts: Sequence[LabeledGraph]) -> LabeledGraph:
    """One graph whose connected components are the (prefixed) ``parts``.

    Each part must itself be connected for the component count to equal
    ``len(parts)``; random parts that happen to be disconnected simply
    yield more components, which the tests account for by routing through
    the engine's own tables rather than assuming counts.
    """
    composed = LabeledGraph()
    for index, part in enumerate(parts):
        composed.merge(prefixed_copy(part, f"c{index}"))
    return composed


def random_multi_component_graph(
    seed: int, num_components: int = 3
) -> Tuple[LabeledGraph, List[List[str]]]:
    """A random multi-component labeled graph plus per-part vertex lists.

    Returns the composed graph and, per part, the renamed vertices of that
    part — cross-part query pairs drawn from different lists are guaranteed
    cross-component.
    """
    rng = random.Random(seed)
    parts: List[LabeledGraph] = []
    for _ in range(num_components):
        parts.append(
            random_labeled_graph(
                rng.randint(8, 18),
                0.25 + rng.random() * 0.3,
                ["A", "B"],
                seed=rng.randint(0, 10_000),
            )
        )
    composed = compose_components(parts)
    part_vertices = [
        [f"c{index}:{v}" for v in part.vertices()]
        for index, part in enumerate(parts)
    ]
    return composed, part_vertices


@pytest.fixture
def two_component_paper_graph() -> LabeledGraph:
    """The Figure 1 graph plus a small disjoint SE/UI component.

    The extra component ("b:*") is a 2-label clique-pair dense enough for
    BCC searches to answer inside it, so tests can serve real queries
    against both shards.
    """
    graph = paper_example_graph()
    for vertex in ("b:s1", "b:s2", "b:s3"):
        graph.add_vertex(vertex, label="SE")
    for vertex in ("b:u1", "b:u2", "b:u3"):
        graph.add_vertex(vertex, label="UI")
    for left in ("b:s1", "b:s2", "b:s3"):
        for right in ("b:s1", "b:s2", "b:s3"):
            if left < right:
                graph.add_edge(left, right)
    for left in ("b:u1", "b:u2", "b:u3"):
        for right in ("b:u1", "b:u2", "b:u3"):
            if left < right:
                graph.add_edge(left, right)
    for left in ("b:s1", "b:s2"):
        for right in ("b:u1", "b:u2"):
            graph.add_edge(left, right)
    return graph
