"""GraphDirectory: many named graphs served from one process."""

from __future__ import annotations

import json

import pytest

from repro.api import BCCEngine, Query, SearchConfig, STATUS_OK
from repro.datasets import load_dataset
from repro.exceptions import DatasetError, GraphNotFoundError
from repro.serving import GraphDirectory, ServingStats, ShardedBCCEngine


class TestHosting:
    def test_add_returns_sharded_engine_by_default(self, two_component_paper_graph):
        directory = GraphDirectory()
        engine = directory.add("paper", two_component_paper_graph)
        assert isinstance(engine, ShardedBCCEngine)
        assert directory.names() == ["paper"]
        assert "paper" in directory and len(directory) == 1
        assert directory.get("paper") is engine

    def test_add_monolithic_when_asked(self, paper_graph):
        directory = GraphDirectory(sharded=False)
        assert isinstance(directory.add("a", paper_graph), BCCEngine)
        # Per-graph override beats the directory default.
        assert isinstance(
            directory.add("b", paper_graph, sharded=True), ShardedBCCEngine
        )

    def test_add_accepts_bundle(self, tiny_baidu_bundle):
        directory = GraphDirectory()
        engine = directory.add("tiny", tiny_baidu_bundle)
        assert engine.graph is tiny_baidu_bundle.graph

    def test_readd_replaces_engine(self, paper_graph):
        directory = GraphDirectory()
        first = directory.add("g", paper_graph)
        second = directory.add("g", paper_graph)
        assert directory.get("g") is second is not first

    def test_rejects_bad_names(self, paper_graph):
        directory = GraphDirectory()
        with pytest.raises(ValueError):
            directory.add("", paper_graph)
        with pytest.raises(ValueError):
            directory.add(None, paper_graph)

    def test_get_and_remove_unknown_raise(self):
        directory = GraphDirectory()
        with pytest.raises(GraphNotFoundError) as excinfo:
            directory.get("nope")
        assert excinfo.value.name == "nope"
        with pytest.raises(GraphNotFoundError):
            directory.remove("nope")

    def test_remove_stops_serving(self, paper_graph):
        directory = GraphDirectory()
        directory.add("g", paper_graph)
        directory.remove("g")
        assert directory.names() == []
        with pytest.raises(GraphNotFoundError):
            directory.get("g")


class TestDatasetWiring:
    def test_load_serves_any_registered_dataset_by_name(self):
        directory = GraphDirectory()
        engine = directory.load("baidu-tiny", seed=7)
        assert directory.names() == ["baidu-tiny"]
        bundle = load_dataset("baidu-tiny", seed=7)
        response = directory.serve(
            "baidu-tiny", Query("lp-bcc", bundle.default_query())
        )
        assert response.status == STATUS_OK
        assert isinstance(engine, ShardedBCCEngine)

    def test_load_with_custom_name_and_generator_kwargs(self):
        directory = GraphDirectory()
        directory.load(
            "tiny", name="snap-small", seed=3, communities=3, community_size=8
        )
        assert directory.names() == ["snap-small"]

    def test_load_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            GraphDirectory().load("no-such-network")


class TestServing:
    def test_serve_and_serve_many(self, two_component_paper_graph):
        directory = GraphDirectory(config=SearchConfig(k1=4, k2=3, b=1))
        directory.add("paper", two_component_paper_graph)
        response = directory.serve("paper", Query("online-bcc", ("ql", "qr")))
        assert response.status == STATUS_OK
        batch = directory.serve_many(
            "paper",
            [Query("online-bcc", ("ql", "qr")), Query("ctc", ("ql", "qr"))],
            max_workers=2,
        )
        assert len(batch) == 2

    def test_serve_unknown_graph_raises(self):
        with pytest.raises(GraphNotFoundError):
            GraphDirectory().serve("ghost-graph", Query("ctc", ("a",)))


class TestStats:
    def test_stats_per_graph_and_payload_is_json(self, two_component_paper_graph, paper_graph):
        directory = GraphDirectory(config=SearchConfig(k1=4, k2=3, b=1))
        directory.add("sharded-graph", two_component_paper_graph)
        directory.add("mono-graph", paper_graph, sharded=False)
        directory.serve("sharded-graph", Query("online-bcc", ("ql", "qr")))
        directory.serve("mono-graph", Query("online-bcc", ("ql", "qr")))

        stats = directory.stats()
        assert set(stats) == {"sharded-graph", "mono-graph"}
        assert all(isinstance(s, ServingStats) for s in stats.values())
        assert stats["sharded-graph"].kind == "sharded"
        assert stats["mono-graph"].kind == "monolithic"
        # Monolithic latency is recorded at the directory edge.
        assert stats["mono-graph"].latency["count"] == 1

        payload = directory.stats_payload()
        document = json.loads(json.dumps(payload))
        assert document["served_graphs"] == 2
        assert set(document["graphs"]) == {"sharded-graph", "mono-graph"}
        assert document["graphs"]["sharded-graph"]["counters"]["searches"] == 1

    def test_stats_payload_is_self_describing(self, paper_graph):
        import time

        from repro.serving.stats import STATS_SCHEMA_VERSION

        directory = GraphDirectory()
        directory.add("paper", paper_graph)
        first = directory.stats_payload()
        assert first["schema_version"] == STATS_SCHEMA_VERSION
        assert first["uptime_seconds"] >= 0.0
        time.sleep(0.01)
        second = directory.stats_payload()
        # Uptime dates the *process*: it advances between scrapes, so a
        # scraper can tell a restarted server from a quiet one.
        assert second["uptime_seconds"] > first["uptime_seconds"]
        assert directory.uptime_seconds() >= second["uptime_seconds"]
