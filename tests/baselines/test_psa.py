"""Unit tests for the PSA (progressive minimum k-core) baseline."""

from __future__ import annotations

import pytest

from repro.baselines.psa import psa_search
from repro.core.kcore import is_k_core
from repro.eval.instrumentation import SearchInstrumentation
from repro.graph.generators import paper_example_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.traversal import are_connected


class TestPaperExample:
    def test_finds_small_core_around_query(self):
        g = paper_example_graph()
        result = psa_search(g, ["ql", "qr"])
        assert result is not None
        assert {"ql", "qr"} <= result.vertices
        # PSA looks for a *small* k-core: much smaller than the whole graph.
        assert result.num_vertices() < g.num_vertices()

    def test_community_is_connected_k_core(self):
        g = paper_example_graph()
        result = psa_search(g, ["ql", "qr"])
        assert are_connected(result.community, ["ql", "qr"])
        assert is_k_core(result.community, result.k)

    def test_default_k_is_min_query_coreness(self):
        g = paper_example_graph()
        result = psa_search(g, ["ql", "qr"])
        assert result.k == 3  # min(coreness(ql), coreness(qr)) on the whole graph

    def test_ignores_labels(self):
        g = paper_example_graph()
        result = psa_search(g, ["v1", "u1"])
        assert result is not None
        labels = {g.label(v) for v in result.vertices}
        assert len(labels) >= 1  # may freely mix labels


class TestEdgeCases:
    def test_missing_query_vertex(self):
        g = paper_example_graph()
        assert psa_search(g, ["ql", "ghost"]) is None

    def test_disconnected_query(self):
        g = LabeledGraph(edges=[(0, 1), (1, 2), (0, 2), (5, 6), (6, 7), (5, 7)])
        assert psa_search(g, [0, 5]) is None

    def test_explicit_k(self):
        g = paper_example_graph()
        result = psa_search(g, ["ql", "qr"], k=2)
        assert result is not None
        assert result.k == 2
        assert is_k_core(result.community, 2)

    def test_unsatisfiable_k(self):
        g = paper_example_graph()
        assert psa_search(g, ["ql", "qr"], k=20) is None

    def test_shrinking_produces_smaller_or_equal_community(self):
        g = paper_example_graph()
        unshrunk = psa_search(g, ["ql", "qr"], shrink_rounds=0)
        shrunk = psa_search(g, ["ql", "qr"], shrink_rounds=50)
        assert shrunk.num_vertices() <= unshrunk.num_vertices()

    def test_size_budget_respected(self):
        g = paper_example_graph()
        result = psa_search(g, ["ql", "qr"], size_budget=6)
        assert result is not None

    def test_statistics_present(self):
        g = paper_example_graph()
        inst = SearchInstrumentation()
        result = psa_search(g, ["ql", "qr"], instrumentation=inst)
        assert "expansions" in result.statistics
        assert result.expansions >= 0

    def test_single_query_vertex(self):
        g = paper_example_graph()
        result = psa_search(g, ["ql"])
        assert result is not None
        assert "ql" in result.vertices
