"""Unit tests for the CTC (closest truss community) baseline."""

from __future__ import annotations

import pytest

from repro.baselines.ctc import ctc_search
from repro.core.ktruss import is_k_truss
from repro.eval.instrumentation import SearchInstrumentation
from repro.graph.generators import paper_example_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.traversal import are_connected


class TestPaperExample:
    def test_finds_small_truss_around_query(self):
        """On the running example CTC finds the tight 4-vertex community
        {q_l, q_r, v5, u3} — the answer the introduction attributes to
        label-agnostic models with size/diameter constraints."""
        g = paper_example_graph()
        result = ctc_search(g, ["ql", "qr"])
        assert result is not None
        assert result.vertices == {"ql", "qr", "v5", "u3"}
        assert result.trussness == 4

    def test_community_is_connected_truss_containing_query(self):
        g = paper_example_graph()
        result = ctc_search(g, ["ql", "qr"])
        assert are_connected(result.community, ["ql", "qr"])
        assert is_k_truss(result.community, result.trussness)

    def test_ignores_labels(self):
        """CTC mixes labels freely: a same-label query is perfectly valid."""
        g = paper_example_graph()
        result = ctc_search(g, ["v1", "v2"])
        assert result is not None
        assert {"v1", "v2"} <= result.vertices


class TestEdgeCases:
    def test_missing_query_vertex(self):
        g = paper_example_graph()
        assert ctc_search(g, ["ql", "ghost"]) is None

    def test_disconnected_query(self):
        g = LabeledGraph(edges=[(0, 1), (1, 2), (0, 2), (5, 6), (6, 7), (5, 7)])
        assert ctc_search(g, [0, 5]) is None

    def test_explicit_k(self):
        g = paper_example_graph()
        result = ctc_search(g, ["ql", "qr"], k=3)
        assert result is not None
        assert result.trussness == 3
        assert is_k_truss(result.community, 3)

    def test_explicit_unsatisfiable_k(self):
        g = paper_example_graph()
        assert ctc_search(g, ["ql", "qr"], k=10) is None

    def test_single_query_vertex(self):
        g = paper_example_graph()
        result = ctc_search(g, ["ql"])
        assert result is not None
        assert "ql" in result.vertices

    def test_instrumentation_and_statistics(self):
        g = paper_example_graph()
        inst = SearchInstrumentation()
        result = ctc_search(g, ["ql", "qr"], instrumentation=inst)
        assert result.statistics["iterations"] >= 0
        assert inst.query_distance_seconds >= 0

    def test_max_iterations(self):
        g = paper_example_graph()
        result = ctc_search(g, ["ql", "qr"], max_iterations=0)
        assert result is not None

    def test_query_distance_reported(self):
        g = paper_example_graph()
        result = ctc_search(g, ["ql", "qr"])
        assert result.query_distance <= 2
