"""Unit tests for the per-dataset synthetic generators and the registry."""

from __future__ import annotations

import pytest

from repro.core.butterfly import butterfly_degrees
from repro.core.kcore import core_decomposition
from repro.datasets import (
    CASE_STUDY_NETWORKS,
    EVALUATION_NETWORKS,
    MULTILABEL_NETWORKS,
    dataset_names,
    generate_academic_network,
    generate_baidu_network,
    generate_fiction_network,
    generate_flight_network,
    generate_snap_like,
    generate_trade_network,
    load_dataset,
)
from repro.exceptions import DatasetError
from repro.graph.bipartite import extract_bipartite, extract_label_bipartite
from repro.graph.traversal import are_connected


class TestBaiduGenerator:
    def test_tiny_structure(self, tiny_baidu_bundle):
        bundle = tiny_baidu_bundle
        assert bundle.graph.num_vertices() > 20
        assert len(bundle.communities) == 3
        assert len(bundle.graph.labels()) == 3

    def test_deterministic(self):
        a = generate_baidu_network("tiny", seed=9)
        b = generate_baidu_network("tiny", seed=9)
        assert a.graph == b.graph

    def test_projects_span_two_labels_with_butterfly(self, tiny_baidu_bundle):
        bundle = tiny_baidu_bundle
        graph = bundle.graph
        for project in bundle.communities:
            labels = list(project.labels)
            assert len(labels) == 2
            members_by_label = {
                lab: {v for v in project.members if graph.label(v) == lab}
                for lab in labels
            }
            bipartite = extract_bipartite(
                graph, members_by_label[labels[0]], members_by_label[labels[1]]
            )
            degrees = butterfly_degrees(bipartite)
            assert max(degrees.values(), default=0) >= 1

    def test_default_query_is_cross_label(self, tiny_baidu_bundle):
        q_left, q_right = tiny_baidu_bundle.default_query()
        graph = tiny_baidu_bundle.graph
        assert graph.label(q_left) != graph.label(q_right)

    def test_baidu2_larger_than_baidu1(self):
        b1 = generate_baidu_network("baidu-1", seed=0)
        b2 = generate_baidu_network("baidu-2", seed=0)
        assert b2.graph.num_vertices() > b1.graph.num_vertices()
        assert b2.graph.num_edges() > b1.graph.num_edges()

    def test_multilabel_projects(self):
        bundle = generate_baidu_network("tiny", seed=2, project_labels=3)
        assert any(len(c.labels) == 3 for c in bundle.communities)

    def test_invalid_scale_rejected(self):
        with pytest.raises(DatasetError):
            generate_baidu_network("huge")

    def test_invalid_project_labels(self):
        with pytest.raises(DatasetError):
            generate_baidu_network("tiny", project_labels=1)
        with pytest.raises(DatasetError):
            generate_baidu_network("tiny", project_labels=99)


class TestSnapLikeGenerator:
    def test_two_label_protocol_applied(self, tiny_snap_bundle):
        bundle = tiny_snap_bundle
        assert bundle.graph.labels() == {"A", "B"}
        assert len(bundle.communities) == 4
        assert sum(1 for _ in bundle.graph.cross_edges()) > 0

    def test_multilabel_variant(self):
        bundle = generate_snap_like("tiny", seed=1, num_labels=3)
        assert len(bundle.graph.labels()) == 3
        assert bundle.name.endswith("-m")

    def test_m_suffix_name(self):
        bundle = generate_snap_like("tiny-m", seed=1)
        assert bundle.metadata["num_labels"] == 6 or len(bundle.graph.labels()) >= 2

    def test_presets_differ_in_size(self):
        amazon = generate_snap_like("amazon", seed=0, communities=6, community_size=10)
        orkut = generate_snap_like("orkut", seed=0, communities=6, community_size=24)
        avg_amazon = 2 * amazon.graph.num_edges() / amazon.graph.num_vertices()
        avg_orkut = 2 * orkut.graph.num_edges() / orkut.graph.num_vertices()
        assert avg_orkut > avg_amazon

    def test_unknown_preset_rejected(self):
        with pytest.raises(DatasetError):
            generate_snap_like("facebook")

    def test_deterministic(self):
        a = generate_snap_like("tiny", seed=42)
        b = generate_snap_like("tiny", seed=42)
        assert a.graph == b.graph


class TestCaseStudyGenerators:
    def test_flight_network_butterfly(self, flight_bundle):
        graph = flight_bundle.graph
        assert graph.label("Toronto") == "Canada"
        assert graph.label("Frankfurt") == "Germany"
        bipartite = extract_label_bipartite(graph, "Canada", "Germany")
        degrees = butterfly_degrees(bipartite)
        assert degrees["Toronto"] >= 3
        assert degrees["Frankfurt"] >= 3

    def test_flight_domestic_cores_are_dense(self, flight_bundle):
        graph = flight_bundle.graph
        canada = graph.label_induced_subgraph("Canada")
        germany = graph.label_induced_subgraph("Germany")
        assert max(core_decomposition(canada).values()) >= 5
        assert max(core_decomposition(germany).values()) >= 4

    def test_trade_network_leaders(self, trade_bundle):
        graph = trade_bundle.graph
        assert graph.label("China") == "Asia"
        assert graph.label("United States") == "North America"
        bipartite = extract_label_bipartite(graph, "Asia", "North America")
        degrees = butterfly_degrees(bipartite)
        assert degrees["China"] >= 3
        assert degrees["United States"] >= 3

    def test_fiction_network_camps(self, fiction_bundle):
        graph = fiction_bundle.graph
        assert graph.label("Ron Weasley") == "justice"
        assert graph.label("Draco Malfoy") == "evil"
        assert graph.label("Lord Voldemort") == "evil"
        assert are_connected(graph, ["Ron Weasley", "Draco Malfoy"])

    def test_fiction_hero_villain_butterflies(self, fiction_bundle):
        bipartite = extract_label_bipartite(fiction_bundle.graph, "justice", "evil")
        degrees = butterfly_degrees(bipartite)
        assert degrees["Harry Potter"] >= 3
        assert degrees["Draco Malfoy"] >= 1

    def test_academic_network_fields(self, academic_bundle):
        graph = academic_bundle.graph
        assert graph.label("Tim Kraska") == "Database"
        assert graph.label("Michael I. Jordan") == "Machine Learning"
        assert graph.label("Ion Stoica") == "Systems and Networking"
        assert len(graph.labels()) == 7

    def test_academic_interdisciplinary_butterflies(self, academic_bundle):
        bipartite = extract_label_bipartite(
            academic_bundle.graph, "Database", "Machine Learning"
        )
        degrees = butterfly_degrees(bipartite)
        assert degrees["Tim Kraska"] >= 1
        assert degrees["Michael I. Jordan"] >= 1

    def test_case_study_default_queries(self, flight_bundle, trade_bundle, fiction_bundle):
        assert flight_bundle.default_query() == ("Toronto", "Frankfurt")
        assert trade_bundle.default_query() == ("United States", "China")
        assert fiction_bundle.default_query() == ("Ron Weasley", "Draco Malfoy")


class TestRegistry:
    def test_all_paper_networks_registered(self):
        names = dataset_names()
        for name in EVALUATION_NETWORKS + MULTILABEL_NETWORKS + CASE_STUDY_NETWORKS:
            assert name in names, name

    def test_load_dataset(self):
        bundle = load_dataset("baidu-tiny", seed=3)
        assert bundle.graph.num_vertices() > 0

    def test_load_dataset_case_insensitive(self):
        bundle = load_dataset("FICTION", seed=1)
        assert bundle.name == "fiction"

    def test_load_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("imaginary")

    def test_snap_multilabel_registry_entry(self):
        bundle = load_dataset("tiny-m", seed=1)
        assert len(bundle.graph.labels()) >= 3
