"""Unit tests for the dataset bundle container and the labeling protocol."""

from __future__ import annotations

import random

import pytest

from repro.datasets.base import DatasetBundle, GroundTruthCommunity
from repro.datasets.labeling import (
    add_global_noise_cross_edges,
    add_intra_community_cross_edges,
    apply_multi_label_protocol,
    apply_two_label_protocol,
    split_community_by_labels,
)
from repro.exceptions import DatasetError
from repro.graph.generators import planted_partition_graph
from repro.graph.labeled_graph import LabeledGraph


class TestGroundTruthCommunity:
    def test_membership(self):
        community = GroundTruthCommunity(members={1, 2, 3}, labels=("A", "B"))
        assert 2 in community
        assert 9 not in community
        assert len(community) == 3


class TestDatasetBundle:
    def make_bundle(self) -> DatasetBundle:
        g = LabeledGraph()
        for v, lab in ((1, "A"), (2, "A"), (3, "B"), (4, "B"), (5, "C")):
            g.add_vertex(v, label=lab)
        for e in ((1, 2), (3, 4), (1, 3), (2, 4), (4, 5)):
            g.add_edge(*e)
        communities = [GroundTruthCommunity(members={1, 2, 3, 4}, labels=("A", "B"))]
        return DatasetBundle(name="toy", graph=g, communities=communities)

    def test_default_query_prefers_metadata(self):
        bundle = self.make_bundle()
        bundle.metadata["default_query"] = (2, 3)
        assert bundle.default_query() == (2, 3)

    def test_default_query_from_ground_truth(self):
        bundle = self.make_bundle()
        q_left, q_right = bundle.default_query()
        assert bundle.graph.label(q_left) != bundle.graph.label(q_right)
        assert q_left in bundle.communities[0]
        assert q_right in bundle.communities[0]

    def test_default_query_without_ground_truth(self):
        bundle = self.make_bundle()
        bundle.communities = []
        q_left, q_right = bundle.default_query()
        assert bundle.graph.label(q_left) != bundle.graph.label(q_right)

    def test_default_query_without_cross_edges_raises(self):
        g = LabeledGraph(edges=[(1, 2)], labels={1: "A", 2: "A"})
        bundle = DatasetBundle(name="mono", graph=g)
        with pytest.raises(DatasetError):
            bundle.default_query()

    def test_random_cross_query(self):
        bundle = self.make_bundle()
        rng = random.Random(0)
        q_left, q_right = bundle.random_cross_query(rng, community_index=0)
        assert bundle.graph.label(q_left) != bundle.graph.label(q_right)
        assert q_left in bundle.communities[0]

    def test_community_lookups(self):
        bundle = self.make_bundle()
        assert bundle.community_of(1) is bundle.communities[0]
        assert bundle.community_of(5) is None
        assert bundle.community_for_query(1, 3) is bundle.communities[0]
        assert bundle.community_for_query(1, 5) is None

    def test_cross_group_communities(self):
        bundle = self.make_bundle()
        assert len(bundle.cross_group_communities()) == 1
        bundle.communities.append(GroundTruthCommunity(members={1, 2}))
        assert len(bundle.cross_group_communities()) == 1


class TestLabelingProtocol:
    def test_split_community_by_labels(self):
        rng = random.Random(1)
        assignment = split_community_by_labels(list(range(10)), ["A", "B"], rng)
        counts = {}
        for label in assignment.values():
            counts[label] = counts.get(label, 0) + 1
        assert set(counts) == {"A", "B"}
        assert abs(counts["A"] - counts["B"]) <= 1

    def test_split_requires_labels(self):
        with pytest.raises(DatasetError):
            split_community_by_labels([1, 2], [], random.Random(0))

    def test_two_label_protocol_end_to_end(self):
        graph, communities = planted_partition_graph([12, 12, 12], 0.5, 0.01, seed=3)
        before_edges = graph.num_edges()
        ground_truth = apply_two_label_protocol(graph, communities, seed=3)
        assert len(ground_truth) == 3
        assert graph.labels() == {"A", "B"}
        # The protocol adds cross edges (10% intra-community + 10% noise).
        assert graph.num_edges() > before_edges
        # Every community now spans both labels.
        for community in ground_truth:
            labels = {graph.label(v) for v in community.members}
            assert labels == {"A", "B"}

    def test_two_label_protocol_labels_all_vertices(self):
        graph, communities = planted_partition_graph([10, 10], 0.5, 0.02, seed=4)
        graph.add_vertex(999)  # uncovered vertex
        apply_two_label_protocol(graph, communities, seed=4)
        assert graph.label(999) in {"A", "B"}

    def test_multi_label_protocol(self):
        graph, communities = planted_partition_graph([18, 18], 0.5, 0.02, seed=5)
        labels = ["L0", "L1", "L2"]
        ground_truth = apply_multi_label_protocol(graph, communities, labels, seed=5)
        assert graph.labels() <= set(labels)
        for community in ground_truth:
            spanned = {graph.label(v) for v in community.members}
            assert len(spanned) >= 2

    def test_multi_label_protocol_needs_two_labels(self):
        graph, communities = planted_partition_graph([10], 0.5, 0.0, seed=6)
        with pytest.raises(DatasetError):
            apply_multi_label_protocol(graph, communities, ["only"], seed=6)

    def test_cross_edge_injection_counts(self):
        graph, communities = planted_partition_graph([10, 10], 0.6, 0.0, seed=7)
        ground_truth = apply_two_label_protocol(
            graph, communities, cross_fraction=0.0, noise_fraction=0.0, seed=7
        )
        rng = random.Random(8)
        added = add_intra_community_cross_edges(graph, ground_truth, 0.1, rng)
        assert added > 0
        noise = add_global_noise_cross_edges(graph, 0.05, rng)
        assert noise >= 0
