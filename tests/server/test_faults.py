"""FaultPlan / FaultRule semantics: deterministic, schedulable failure."""

from __future__ import annotations

import threading

import pytest

from repro.api import BCCEngine, Query, SearchConfig
from repro.exceptions import QueryError
from repro.graph.generators import paper_example_graph
from repro.server.faults import FAULT_KINDS, FaultPlan, FaultRule, InjectedFault


def test_rule_validation_rejects_bad_parameters():
    with pytest.raises(ValueError):
        FaultRule("site", kind="melt")
    with pytest.raises(ValueError):
        FaultRule("site", after=-1)
    with pytest.raises(ValueError):
        FaultRule("site", count=-1)
    with pytest.raises(ValueError):
        FaultRule("site", delay_seconds=-0.1)
    with pytest.raises(ValueError):
        FaultRule("site", probability=1.5)


def test_empty_plan_is_inert():
    plan = FaultPlan()
    for _ in range(10):
        plan.on("engine.search", method="lp-bcc")
    assert plan.calls("engine.search") == 10
    assert plan.injected() == 0


def test_error_rule_fires_in_its_window_only():
    plan = FaultPlan([FaultRule("s", kind="error", after=2, count=2)])
    outcomes = []
    for _ in range(6):
        try:
            plan.on("s")
            outcomes.append("ok")
        except InjectedFault:
            outcomes.append("fault")
    # calls 3 and 4 (0-indexed positions 2 and 3) fault, nothing else
    assert outcomes == ["ok", "ok", "fault", "fault", "ok", "ok"]
    assert plan.injected(0) == 2


def test_where_match_targets_one_replica_only():
    plan = FaultPlan([FaultRule("replica.search", where={"replica": 1})])
    plan.on("replica.search", replica=0)  # no match, no fault
    with pytest.raises(InjectedFault) as excinfo:
        plan.on("replica.search", replica=1)
    assert excinfo.value.site == "replica.search"
    plan.on("replica.search", replica=2)
    assert plan.injected() == 1


def test_first_matching_rule_wins():
    plan = FaultPlan(
        [
            FaultRule("s", kind="delay", delay_seconds=0.5),
            FaultRule("s", kind="error"),
        ],
        sleep=lambda _s: None,
    )
    # The delay rule matches first, so no error is raised.
    plan.on("s")
    assert plan.injected(0) == 1
    assert plan.injected(1) == 0


def test_delay_and_stall_use_injected_sleep():
    slept = []
    plan = FaultPlan(
        [
            FaultRule("a", kind="delay", delay_seconds=0.25),
            FaultRule("b", kind="stall", delay_seconds=60.0),
        ],
        sleep=slept.append,
    )
    plan.on("a")
    plan.on("b")
    assert slept == [0.25, 60.0]
    assert "stall" in FAULT_KINDS


def test_error_rule_can_model_a_slow_failure():
    slept = []
    plan = FaultPlan(
        [FaultRule("s", kind="error", delay_seconds=0.1, message="boom")],
        sleep=slept.append,
    )
    with pytest.raises(InjectedFault, match="boom"):
        plan.on("s")
    assert slept == [0.1]


def test_seeded_probability_schedule_is_reproducible():
    def schedule(seed: int):
        plan = FaultPlan([FaultRule("s", probability=0.5)], seed=seed)
        outcome = []
        for _ in range(32):
            try:
                plan.on("s")
                outcome.append(0)
            except InjectedFault:
                outcome.append(1)
        return outcome

    assert schedule(7) == schedule(7)
    assert 0 < sum(schedule(7)) < 32  # actually probabilistic
    assert schedule(7) != schedule(8)  # actually seed-driven


def test_counting_is_exact_under_concurrency():
    plan = FaultPlan([FaultRule("s", after=100, count=50)])
    faults = []

    def worker():
        for _ in range(50):
            try:
                plan.on("s")
            except InjectedFault:
                faults.append(1)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # 400 calls: positions 100..149 fault regardless of thread interleaving.
    assert plan.calls("s") == 400
    assert sum(faults) == 50


def test_injected_fault_is_not_a_caller_error():
    assert not issubclass(InjectedFault, QueryError)


def test_engine_hook_raises_on_schedule_and_snapshot_audits():
    engine = BCCEngine(
        paper_example_graph(),
        SearchConfig(k1=4, k2=3),
        fault_plan=FaultPlan(
            [FaultRule("engine.search", kind="error", after=1, count=1)]
        ),
    )
    query = Query("lp-bcc", ("ql", "qr"))
    first = engine.search(query)
    with pytest.raises(InjectedFault):
        engine.search(query, use_cache=False)
    third = engine.search(query, use_cache=False)
    assert first.status == third.status
    assert first.vertices == third.vertices
    audit = engine.fault_plan.snapshot()
    assert audit["sites"]["engine.search"] == 3
    assert audit["rules"][0]["injected"] == 1
