"""ReplicaSet: least-loaded routing, parity, merged stats."""

from __future__ import annotations

import threading

import pytest

from repro.api import BCCEngine, Query, SearchConfig
from repro.api.query import STATUS_ERROR, STATUS_OK
from repro.graph.generators import paper_example_graph
from repro.server import ReplicaSet
from repro.serving import GraphDirectory, LatencyHistogram

CONFIG = SearchConfig(k1=4, k2=3)
OK_QUERY = Query("online-bcc", ("ql", "qr"))


@pytest.fixture
def replica_set(paper_graph):
    return ReplicaSet(paper_graph, CONFIG, replicas=3)


class TestConstruction:
    def test_needs_at_least_one_replica(self, paper_graph):
        with pytest.raises(ValueError):
            ReplicaSet(paper_graph, replicas=0)

    def test_accepts_bundles(self, tiny_baidu_bundle):
        replica_set = ReplicaSet(tiny_baidu_bundle, replicas=2)
        assert replica_set.graph is tiny_baidu_bundle.graph

    def test_replica_count_and_engines(self, replica_set):
        assert replica_set.replica_count() == 3
        engines = {id(replica_set.replica_engine(i)) for i in range(3)}
        assert len(engines) == 3  # distinct engines over one shared graph


class TestRouting:
    def test_single_threaded_traffic_prefers_replica_zero(self, replica_set):
        for _ in range(4):
            replica_set.search(OK_QUERY)
        stats = replica_set.stats()
        routed = [block["routed"] for block in stats.replicas]
        assert routed == [4, 0, 0]  # ties always break to the lowest id

    def test_least_loaded_skips_busy_replicas(self, replica_set):
        # Simulate replicas 0 and 1 being mid-query.
        assert replica_set._acquire() == 0
        assert replica_set._acquire() == 1
        assert replica_set._acquire() == 2
        # All equally busy again: back to the lowest id.
        assert replica_set._acquire() == 0
        replica_set._release(0)
        replica_set._release(0)
        replica_set._release(1)
        replica_set._release(2)
        assert replica_set.in_flight() == [0, 0, 0]

    def test_every_replica_answers_identically(self, paper_graph):
        replica_set = ReplicaSet(paper_graph, CONFIG, replicas=3)
        reference = BCCEngine(paper_graph, CONFIG).search(OK_QUERY)
        for replica_id in range(3):
            answer = replica_set.replica_engine(replica_id).search(OK_QUERY)
            assert answer.vertices == reference.vertices
            assert answer.iterations == reference.iterations

    def test_search_many_spreads_a_concurrent_batch(self, replica_set):
        rows = replica_set.search_many(
            [OK_QUERY] * 12, max_workers=4, use_cache=False
        )
        assert all(row.status == STATUS_OK for row in rows)
        stats = replica_set.stats()
        assert sum(block["routed"] for block in stats.replicas) == 12
        assert stats.counters["searches"] == 12

    def test_error_rows_keep_batch_semantics(self, replica_set):
        rows = replica_set.search_many(
            [OK_QUERY, Query("online-bcc", ("ql", "nope"))], on_error="return"
        )
        assert rows[0].status == STATUS_OK
        assert rows[1].status == STATUS_ERROR

    def test_failed_queries_are_not_counted_as_searches(self, replica_set):
        """Set-level 'searches' must reconcile with the summed per-replica
        engine counters: malformed queries are routed but never served."""
        replica_set.search_many(
            [OK_QUERY, Query("online-bcc", ("ql", "nope")), OK_QUERY],
            on_error="return",
        )
        stats = replica_set.stats()
        engine_total = sum(
            block["counters"]["searches"] for block in stats.replicas
        )
        assert stats.counters["searches"] == 2  # the two served rows
        assert stats.counters["searches"] == engine_total
        # Routing balance still accounts for every attempt.
        assert sum(block["routed"] for block in stats.replicas) == 3
        # Latency observed served queries only.
        assert stats.latency["count"] == 2


class TestExplain:
    def test_explain_routes_without_claiming_a_slot(self, replica_set):
        report = replica_set.explain(OK_QUERY)
        assert report["replicas"] == 3
        assert report["replica"] == 0
        assert report["engine"]["method"]["name"] == "online-bcc"
        assert replica_set.in_flight() == [0, 0, 0]


class TestStats:
    def test_merged_stats_sum_counters_and_latency(self, replica_set):
        for _ in range(5):
            replica_set.search(OK_QUERY)
        stats = replica_set.stats(name="hot")
        assert stats.kind == "replicated"
        assert stats.name == "hot"
        assert stats.counters["searches"] == 5
        assert stats.counters["replicas"] == 3
        # The merged histogram saw every query even though replica 0
        # served them all.
        assert stats.latency["count"] == 5
        # One miss then four cache hits, all on replica 0.
        assert stats.cache["hits"] == 4
        assert stats.cache["misses"] == 1
        per_replica_counters = [block["counters"] for block in stats.replicas]
        assert per_replica_counters[0]["searches"] == 5
        assert per_replica_counters[1]["searches"] == 0

    def test_stats_payload_is_json_serializable(self, replica_set):
        replica_set.search(OK_QUERY)
        import json

        document = json.loads(replica_set.stats().to_json())
        assert document["kind"] == "replicated"
        assert len(document["replicas"]) == 3
        assert "shards" not in document

    def test_sharded_replicas_compose(self, two_component_graph):
        replica_set = ReplicaSet(
            two_component_graph, CONFIG, replicas=2, sharded=True
        )
        response = replica_set.search(OK_QUERY)
        assert response.status == STATUS_OK
        stats = replica_set.stats()
        assert stats.replicas[0]["shards"] == 2
        assert stats.counters["searches"] == 1


class TestDirectoryIntegration:
    def test_add_with_replicas_hosts_a_replica_set(self, paper_graph):
        directory = GraphDirectory(sharded=False)
        engine = directory.add("paper", paper_graph, replicas=2, config=CONFIG)
        assert isinstance(engine, ReplicaSet)
        response = directory.serve("paper", OK_QUERY)
        assert response.status == STATUS_OK
        stats = directory.stats()["paper"]
        assert stats.kind == "replicated"
        assert len(stats.replicas) == 2

    def test_load_with_replicas(self):
        directory = GraphDirectory(sharded=False)
        engine = directory.load("baidu-tiny", seed=7, replicas=2)
        assert isinstance(engine, ReplicaSet)

    def test_replicas_must_be_positive(self, paper_graph):
        directory = GraphDirectory()
        with pytest.raises(ValueError):
            directory.add("paper", paper_graph, replicas=0)

    def test_serve_many_through_directory(self, paper_graph):
        directory = GraphDirectory(sharded=False)
        directory.add("paper", paper_graph, replicas=2, config=CONFIG)
        rows = directory.serve_many("paper", [OK_QUERY] * 4, max_workers=2)
        assert all(row.status == STATUS_OK for row in rows)


@pytest.fixture
def two_component_graph(paper_graph):
    """Figure 1 plus a disjoint triangle pair (for sharded replicas)."""
    for vertex in ("x:a1", "x:a2"):
        paper_graph.add_vertex(vertex, label="SE")
    for vertex in ("x:b1", "x:b2"):
        paper_graph.add_vertex(vertex, label="UI")
    paper_graph.add_edge("x:a1", "x:a2")
    paper_graph.add_edge("x:b1", "x:b2")
    for left in ("x:a1", "x:a2"):
        for right in ("x:b1", "x:b2"):
            paper_graph.add_edge(left, right)
    return paper_graph


@pytest.mark.concurrency
class TestConcurrentRouting:
    def test_concurrent_searches_balance_across_replicas(self, paper_graph):
        """Under real thread contention the in-flight gauge must spread
        queries over more than one replica (least-loaded routing at work).

        The paper graph serves in well under a millisecond, so queries
        from 8 threads would never overlap — the runner is slowed with a
        GIL-releasing sleep to force genuinely concurrent in-flight
        windows.
        """
        import time

        import repro.api.methods  # noqa: F401  (register built-ins first)
        from repro.api.registry import get_method

        spec = get_method("online-bcc")
        original_runner = spec.runner

        def slow_runner(engine, query, config, instrumentation):
            time.sleep(0.005)
            return original_runner(engine, query, config, instrumentation)

        object.__setattr__(spec, "runner", slow_runner)
        try:
            replica_set = ReplicaSet(paper_graph, CONFIG, replicas=4)
            barrier = threading.Barrier(8)

            def worker():
                barrier.wait(timeout=10.0)
                for _ in range(6):
                    replica_set.search(OK_QUERY, use_cache=False)

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
        finally:
            object.__setattr__(spec, "runner", original_runner)
        stats = replica_set.stats()
        assert stats.counters["searches"] == 48
        routed = [block["routed"] for block in stats.replicas]
        assert sum(routed) == 48
        assert sum(1 for count in routed if count > 0) >= 2
        assert replica_set.in_flight() == [0, 0, 0, 0]
