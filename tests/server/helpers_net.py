"""Graph builders shared by the gateway test modules.

Lives in its own uniquely named module (not ``conftest``) because test
modules import it directly — ``import conftest`` would be ambiguous across
the suite's multiple conftest files on ``sys.path``.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.graph.generators import random_labeled_graph
from repro.graph.labeled_graph import LabeledGraph


def dense_two_label_component(prefix: str, seed: int) -> LabeledGraph:
    """A connected 2-label component dense enough for BCC answers."""
    rng = random.Random(seed)
    graph = random_labeled_graph(
        rng.randint(10, 16),
        0.35 + rng.random() * 0.25,
        ["A", "B"],
        seed=rng.randint(0, 10_000),
    )
    renamed = LabeledGraph()
    for vertex in graph.vertices():
        renamed.add_vertex(f"{prefix}:{vertex}", label=graph.label(vertex))
    for u, v in graph.edges():
        renamed.add_edge(f"{prefix}:{u}", f"{prefix}:{v}")
    return renamed


def multi_component_graph(
    seed: int, components: int = 3
) -> Tuple[LabeledGraph, List[List[str]]]:
    """A multi-component labeled graph plus per-component vertex lists."""
    composed = LabeledGraph()
    per_component: List[List[str]] = []
    for index in range(components):
        part = dense_two_label_component(f"c{index}", seed * 101 + index)
        composed.merge(part)
        per_component.append(sorted(part.vertices()))
    return composed, per_component
