"""End-to-end parity: HTTP-decoded responses equal in-process serving.

The acceptance criterion of the gateway: over randomized batches that mix
ok, empty, error and cross-shard rows, the responses decoded from the HTTP
wire must equal ``GraphDirectory.serve`` / ``serve_many`` answers
position-for-position — same communities, same reasons, same iteration
counts, and ``math.inf`` query distances restored *exactly*.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.api import Query, SearchConfig
from repro.exceptions import REASON_CROSS_SHARD
from repro.server import Gateway, GatewayClient
from repro.serving import GraphDirectory

from helpers_net import multi_component_graph

CONFIG = SearchConfig(b=1, max_iterations=60)
METHODS = ("online-bcc", "lp-bcc", "ctc", "psa")


def random_batch(
    rng: random.Random, per_component, length: int
) -> list:
    """A batch mixing in-component, cross-component and malformed queries."""
    queries = []
    for _ in range(length):
        roll = rng.random()
        method = rng.choice(METHODS)
        component = rng.choice(per_component)
        if roll < 0.15:
            # Cross-component pair: the sharded router short-circuits it.
            left_component, right_component = rng.sample(
                range(len(per_component)), 2
            )
            queries.append(
                Query(
                    method,
                    (
                        rng.choice(per_component[left_component]),
                        rng.choice(per_component[right_component]),
                    ),
                )
            )
        elif roll < 0.30:
            # Error row: one vertex does not exist.
            queries.append(Query(method, (rng.choice(component), "ghost:v")))
        else:
            pair = rng.sample(component, 2)
            queries.append(Query(method, tuple(pair)))
    return queries


def assert_position_parity(local_rows, remote_rows):
    assert len(local_rows) == len(remote_rows)
    for position, (local, remote) in enumerate(zip(local_rows, remote_rows)):
        context = (position, local.method, local.query)
        assert remote.status == local.status, context
        assert remote.reason == local.reason, context
        assert remote.error == local.error, context
        assert remote.vertices == local.vertices, context
        assert remote.iterations == local.iterations, context
        if math.isinf(local.query_distance):
            # Restored exactly — not as a huge float, not as a string.
            assert remote.query_distance == math.inf, context
        else:
            assert remote.query_distance == local.query_distance, context


@pytest.mark.parametrize("seed", [3, 17, 42])
def test_randomized_batches_match_in_process_serving(seed):
    rng = random.Random(seed)
    graph, per_component = multi_component_graph(seed, components=3)
    directory = GraphDirectory(config=CONFIG)  # sharded by default
    directory.add("net", graph)
    batch = random_batch(rng, per_component, length=24)

    local_rows = directory.serve_many("net", batch, on_error="return")
    with Gateway(directory, port=0) as gateway:
        client = GatewayClient(gateway.url, timeout_seconds=30.0)
        remote_rows = client.search_many("net", batch, on_error="return")

    assert_position_parity(local_rows, remote_rows)
    # The batch genuinely exercised every row shape.
    statuses = {row.status for row in local_rows}
    assert "error" in statuses
    assert any(row.reason == REASON_CROSS_SHARD for row in local_rows)


def test_single_serve_parity_over_methods():
    graph, per_component = multi_component_graph(5, components=2)
    directory = GraphDirectory(config=CONFIG)
    directory.add("net", graph)
    rng = random.Random(9)
    lefts = [v for v in per_component[0] if graph.label(v) == "A"]
    rights = [v for v in per_component[0] if graph.label(v) == "B"]
    with Gateway(directory, port=0) as gateway:
        client = GatewayClient(gateway.url, timeout_seconds=30.0)
        for method in METHODS:
            # Distinct labels: the BCC methods treat a same-label pair as a
            # caller error, which `serve` raises (covered elsewhere).
            query = Query(method, (rng.choice(lefts), rng.choice(rights)))
            local = directory.serve("net", query)
            remote = client.search("net", query)
            assert_position_parity([local], [remote])


def test_parity_through_a_replicated_graph():
    """Replication is invisible to the wire: same answers, any replica."""
    graph, per_component = multi_component_graph(11, components=2)
    replicated = GraphDirectory(config=CONFIG)
    replicated.add("net", graph, replicas=3)
    plain = GraphDirectory(config=CONFIG)
    plain.add("net", graph)
    rng = random.Random(23)
    batch = random_batch(rng, per_component, length=16)

    local_rows = plain.serve_many("net", batch, on_error="return")
    with Gateway(replicated, port=0) as gateway:
        client = GatewayClient(gateway.url, timeout_seconds=30.0)
        remote_rows = client.search_many(
            "net", batch, on_error="return", max_workers=4
        )
    assert_position_parity(local_rows, remote_rows)
