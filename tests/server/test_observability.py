"""Gateway observability: /metrics, /debug/slow, stats blocks, request ids.

The acceptance surface of the observability layer: every live counter is
scrapeable as Prometheus text, the scrape agrees with ``/stats``, slow
queries are retained as navigable traces, and one logical client request
keeps one ``X-Request-Id`` across its retries.
"""

from __future__ import annotations

import json
import re
import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.api import Query, SearchConfig
from repro.api.engine import ENGINE_COUNTER_NAMES
from repro.exceptions import DeadlineExceededError
from repro.obs.metrics import EXPORTED_COUNTERS
from repro.obs.slowlog import SLOWLOG_COUNTER_NAMES
from repro.obs.tracing import TRACER_COUNTER_NAMES
from repro.graph.generators import random_labeled_graph
from repro.server import Gateway, GatewayClient
from repro.server.resilience import RetryPolicy
from repro.serving import GraphDirectory

QUERY = Query("online-bcc", ("ql", "qr"))


@pytest.fixture
def slow_gateway():
    """A gateway over a graph whose cold search costs tens of ms."""
    graph = random_labeled_graph(400, 0.04, ["A", "B"], seed=7)
    directory = GraphDirectory(sharded=False)
    directory.add("slow", graph)
    with Gateway(directory, port=0, max_in_flight=8) as server:
        yield server

#: One exposition sample row: ``name{labels} value`` or ``name value``.
EXPOSITION_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? -?[0-9]"
)


def sample_value(text: str, name: str, **labels: str) -> float:
    """The value of the exposition row ``name{labels...}``."""
    wanted = {f'{key}="{value}"' for key, value in labels.items()}
    for line in text.splitlines():
        if line.startswith("#") or not line.startswith(name):
            continue
        row_name, _, rest = line.partition("{") if "{" in line else (
            line.split(" ", 1)[0],
            "",
            "",
        )
        if row_name != name:
            continue
        if wanted:
            body = line[line.index("{") + 1 : line.index("}")]
            if not wanted <= set(body.split(",")):
                continue
        return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"no sample {name} with labels {labels} in scrape")


# ----------------------------------------------------------------------
# GET /metrics
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_scrape_is_valid_exposition_with_prometheus_content_type(
        self, gateway, client
    ):
        client.search("paper", QUERY)
        request = urllib.request.Request(gateway.url + "/metrics")
        with urllib.request.urlopen(request, timeout=10.0) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            assert response.headers["X-Request-Id"]
            text = response.read().decode("utf-8")
        assert text.endswith("\n")
        for line in text.rstrip("\n").splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert EXPOSITION_LINE.match(line), f"malformed line: {line!r}"

    def test_every_live_counter_key_is_scrapeable(self, gateway, client):
        client.search("paper", QUERY)
        text = client.metrics_text()
        for name in ENGINE_COUNTER_NAMES:
            assert f"bcc_engine_{name}_total" in text
        for name in gateway.counters_snapshot():
            assert f"bcc_gateway_{name}_total" in text
        for name in TRACER_COUNTER_NAMES:
            assert f"bcc_obs_tracer_{name}_total" in text
        for name in SLOWLOG_COUNTER_NAMES:
            assert f"bcc_obs_slowlog_{name}_total" in text
        assert "bcc_obs_registry_scrapes_total" in text
        assert "bcc_graph_latency_seconds_bucket" in text
        assert 'le="+Inf"' in text
        assert "bcc_gateway_in_flight" in text
        assert "bcc_directory_served_graphs 1" in text

    def test_live_counter_keys_are_all_declared_in_the_manifest(
        self, gateway, client
    ):
        client.search("paper", QUERY)
        assert set(gateway.counters_snapshot()) <= EXPORTED_COUNTERS
        stats = client.stats()
        engine_counters = stats["graphs"]["paper"]["counters"]
        assert set(engine_counters) <= EXPORTED_COUNTERS

    def test_scrape_agrees_with_stats(self, gateway, client):
        client.search("paper", QUERY)
        client.search("paper", QUERY)
        stats = client.stats()
        text = client.metrics_text()
        engine_counters = stats["graphs"]["paper"]["counters"]
        for name in ("searches", "result_cache_hits", "result_cache_misses"):
            assert sample_value(
                text, f"bcc_engine_{name}_total", graph="paper"
            ) == float(engine_counters[name])
        assert sample_value(
            text, "bcc_gateway_requests_total"
        ) == float(gateway.counters_snapshot()["requests"])
        assert sample_value(
            text, "bcc_graph_latency_seconds_count", graph="paper"
        ) == float(stats["graphs"]["paper"]["latency"]["count"])


# ----------------------------------------------------------------------
# /stats observability blocks (schema v2)
# ----------------------------------------------------------------------
class TestStatsBlocks:
    def test_trace_and_metrics_blocks(self, gateway, client):
        client.search("paper", QUERY)
        stats = client.stats()
        assert stats["schema_version"] == 2

        trace_block = stats["trace"]
        assert trace_block["enabled"] is False
        assert trace_block["slow_retained"] == 0
        assert set(TRACER_COUNTER_NAMES) <= set(trace_block["counters"])
        assert set(SLOWLOG_COUNTER_NAMES) <= set(trace_block["counters"])

        metrics_block = stats["metrics"]
        assert set(metrics_block["sources"]) >= {"obs", "directory", "gateway"}
        assert metrics_block["series"] > 0
        assert "bcc_gateway_requests_total" in metrics_block["names"]


# ----------------------------------------------------------------------
# slow-query capture end to end
# ----------------------------------------------------------------------
class TestSlowQueryCapture:
    def test_slow_request_is_retained_with_its_span_tree(
        self, gateway, client
    ):
        gateway.observability.tracer.enable()
        gateway.observability.slow_log.set_threshold_ms(0.0)
        client.search("paper", QUERY)

        payload = client.debug_slow()
        assert payload["retained"] >= 1
        entry = payload["traces"][0]
        assert entry["request_id"]  # the gateway's X-Request-Id
        names = set()
        stack = [entry["spans"]]
        while stack:
            node = stack.pop()
            names.add(node.get("name"))
            stack.extend(
                c for c in node.get("children", ()) if isinstance(c, dict)
            )
        assert {"request", "engine.search", "engine.kernel"} <= names

        trace_block = client.stats()["trace"]
        assert trace_block["enabled"] is True
        assert trace_block["counters"]["traces_retained"] >= 1

    def test_deadline_exceeded_trace_records_the_budget(self, slow_gateway):
        # A graph whose cold search outlasts the budget by much more than
        # a GIL switch interval — on the tiny paper graph the kernel can
        # finish inside the watchdog's startup slice and the deadline
        # never fires (same reason tests/parallel uses a slow graph).
        slow_gateway.observability.tracer.enable()
        slow_gateway.observability.slow_log.set_threshold_ms(0.0)
        client = GatewayClient(slow_gateway.url, timeout_seconds=10.0)
        pair = next(iter(slow_gateway.directory.get("slow").graph.cross_edges()))
        with pytest.raises(DeadlineExceededError):
            client.search(
                "slow",
                Query("online-bcc", pair),
                config=SearchConfig(deadline_ms=1.0),
            )
        assert slow_gateway.counters_snapshot()["deadline_exceeded"] == 1

        entries = slow_gateway.observability.slow_log.snapshot()
        assert entries, "deadline-exceeded request was not retained"
        deadline_spans, unfinished = [], []
        stack = [entries[0]["spans"]]
        while stack:
            node = stack.pop()
            if node.get("name") == "deadline":
                deadline_spans.append(node)
            if node.get("unfinished"):
                unfinished.append(node)
            stack.extend(
                c for c in node.get("children", ()) if isinstance(c, dict)
            )
        (deadline_span,) = deadline_spans
        assert deadline_span["meta"]["exceeded"] is True
        assert deadline_span["meta"]["budget_ms"] == pytest.approx(1.0)
        # The span that consumed the budget is still open in the document.
        assert unfinished, "no span marked unfinished in the retained trace"


# ----------------------------------------------------------------------
# satellite regression: one X-Request-Id per logical request
# ----------------------------------------------------------------------
class FlakyOnce(BaseHTTPRequestHandler):
    """Answer 503 to the first request, 200 after; record request ids."""

    seen_ids = None  # set per test via subclassing in the fixture

    def do_GET(self):  # noqa: N802  (http.server naming)
        self.seen_ids.append(self.headers.get("X-Request-Id"))
        if len(self.seen_ids) == 1:
            body = json.dumps({"error": "warming up"}).encode("utf-8")
            self.send_response(503)
            self.send_header("Retry-After", "0")
        else:
            body = json.dumps({"status": "ok"}).encode("utf-8")
            self.send_response(200)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # keep pytest output clean
        pass


@pytest.fixture
def flaky_server():
    seen = []
    handler = type("Handler", (FlakyOnce,), {"seen_ids": seen})
    server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}", seen
    finally:
        server.shutdown()
        server.server_close()


class TestRequestIdAcrossRetries:
    def test_retry_attempts_reuse_the_same_request_id(self, flaky_server):
        url, seen = flaky_server
        client = GatewayClient(
            url,
            timeout_seconds=5.0,
            retry_policy=RetryPolicy(
                max_attempts=3,
                base_delay_seconds=0.0,
                max_delay_seconds=0.0,
            ),
            sleep=lambda seconds: None,
        )
        assert client.healthz() == {"status": "ok"}
        assert client.retries() == 1
        assert len(seen) == 2
        assert seen[0] is not None
        assert seen[0] == seen[1]  # the retry kept the logical request's id

    def test_distinct_logical_requests_get_distinct_ids(self, flaky_server):
        url, seen = flaky_server
        client = GatewayClient(
            url,
            timeout_seconds=5.0,
            retry_policy=RetryPolicy(
                max_attempts=3,
                base_delay_seconds=0.0,
                max_delay_seconds=0.0,
            ),
            sleep=lambda seconds: None,
        )
        client.healthz()  # attempt 1 (503) + retry (200): one id
        client.healthz()  # fresh logical request: a fresh id
        assert len(seen) == 3
        assert seen[0] == seen[1]
        assert seen[2] != seen[0]
