"""Wire codec: exact round-trips, JSON-safety, the reason→HTTP table."""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

import repro.exceptions as exceptions_module
from repro.api import BatchQuery, Query, SearchConfig, SearchResponse
from repro.api.query import STATUS_EMPTY, STATUS_ERROR, STATUS_OK
from repro.core.path_weight import PathWeightConfig
from repro.exceptions import (
    HTTP_STATUS_BY_REASON,
    REASON_CODES,
    REASON_CROSS_SHARD,
    REASON_INVALID_QUERY,
    REASON_MISSING_VERTEX,
    REASON_UNKNOWN_METHOD,
    http_status_for_response,
)
from repro.server.protocol import (
    ProtocolError,
    decode_batch,
    decode_config,
    decode_float,
    decode_query,
    decode_response,
    encode_batch,
    encode_config,
    encode_float,
    encode_query,
    encode_response,
    json_dumps,
    json_loads,
    jsonable,
)


def strict_loads(text: str) -> object:
    """json.loads with parse_constant raising — the acceptance criterion's
    proof that nothing non-standard (Infinity/NaN) is ever emitted."""

    def reject(name: str):
        raise AssertionError(f"non-standard JSON constant emitted: {name}")

    return json.loads(text, parse_constant=reject)


class TestFloats:
    def test_infinities_ride_as_strings(self):
        assert encode_float(math.inf) == "inf"
        assert encode_float(-math.inf) == "-inf"
        assert decode_float("inf") == math.inf
        assert decode_float("-inf") == -math.inf

    def test_finite_floats_pass_through(self):
        assert encode_float(1.5) == 1.5
        assert decode_float(1.5) == 1.5
        assert decode_float(3) == 3.0

    def test_nan_is_refused(self):
        with pytest.raises(ProtocolError):
            encode_float(math.nan)

    def test_decode_rejects_non_floats(self):
        for bad in ("infinity", None, True, [1.0]):
            with pytest.raises(ProtocolError):
                decode_float(bad)

    def test_json_dumps_refuses_raw_infinity(self):
        with pytest.raises(ProtocolError):
            json_dumps({"distance": math.inf})

    def test_json_loads_rejects_nonstandard_constants(self):
        for text in ("Infinity", "-Infinity", "NaN", '{"x": Infinity}'):
            with pytest.raises(ProtocolError):
                json_loads(text)

    def test_json_loads_rejects_malformed_json(self):
        with pytest.raises(ProtocolError):
            json_loads("{not json")


class TestConfigRoundTrip:
    def test_none_stays_none(self):
        assert encode_config(None) is None
        assert decode_config(None) is None

    def test_default_config_round_trips(self):
        config = SearchConfig()
        assert decode_config(json.loads(json_dumps(encode_config(config)))) == config

    def test_fully_custom_config_round_trips(self):
        config = SearchConfig(
            k1=2,
            k2=5,
            k=3,
            b=2,
            bulk_deletion=False,
            rho=4,
            backend="csr",
            max_iterations=77,
            fast_path=False,
            eta=9,
            path_config=PathWeightConfig(gamma1=0.25, gamma2=1.75),
            core_parameters=(2, 3, 4),
            size_budget=11,
            shrink_rounds=2,
        )
        restored = decode_config(strict_loads(json_dumps(encode_config(config))))
        assert restored == config
        assert restored.core_parameters == (2, 3, 4)  # tuple, not list
        assert restored.cache_key() == config.cache_key()

    def test_unknown_fields_mean_schema_skew(self):
        payload = encode_config(SearchConfig())
        payload["warp_speed"] = True
        with pytest.raises(ProtocolError):
            decode_config(payload)

    def test_invalid_values_are_protocol_errors(self):
        payload = encode_config(SearchConfig())
        payload["b"] = -1
        with pytest.raises(ProtocolError):
            decode_config(payload)


class TestQueryRoundTrip:
    def test_plain_query(self):
        query = Query("lp-bcc", ("alice", "bob"))
        assert decode_query(strict_loads(json_dumps(encode_query(query)))) == query

    def test_query_with_config_and_int_vertices(self):
        query = Query("mbcc", (1, 2, 3), config=SearchConfig(b=2, k=4))
        restored = decode_query(json.loads(json_dumps(encode_query(query))))
        assert restored == query
        assert restored.vertices == (1, 2, 3)  # ints stay ints

    def test_non_scalar_vertices_are_refused(self):
        query = Query("lp-bcc", (("a", "b"), "c"))
        with pytest.raises(ProtocolError):
            encode_query(query)

    def test_malformed_payloads_are_refused(self):
        for payload in (None, [], {"method": 7, "vertices": ["a"]},
                        {"method": "lp-bcc", "vertices": "ab"},
                        {"method": "lp-bcc", "vertices": []}):
            with pytest.raises(ProtocolError):
                decode_query(payload)

    def test_batch_round_trips_with_shared_config(self):
        batch = BatchQuery(
            queries=(Query("lp-bcc", ("a", "b")), Query("ctc", ("c", "d"))),
            config=SearchConfig(k=2),
        )
        restored = decode_batch(strict_loads(json_dumps(encode_batch(batch))))
        assert restored == batch

    def test_encode_batch_accepts_plain_iterables(self):
        payload = encode_batch([Query("lp-bcc", ("a", "b"))])
        assert decode_batch(payload).queries[0].method == "lp-bcc"

    def test_codec_hooks_on_the_query_types(self):
        query = Query("lp-bcc", ("a", "b"), config=SearchConfig(rho=3))
        assert Query.from_payload(query.to_payload()) == query
        batch = BatchQuery(queries=(query,))
        assert BatchQuery.from_payload(batch.to_payload()) == batch


def make_response(status: str, reason=None, **overrides) -> SearchResponse:
    fields = dict(
        method="lp-bcc",
        query=("a", "b"),
        status=status,
        reason=reason,
        timings={"total_seconds": 0.25, "index_build_seconds": 0.0,
                 "query_seconds": 0.25},
    )
    fields.update(overrides)
    return SearchResponse(**fields)


class _FakeResult:
    """Stands in for a method-native result object on the encode side."""

    def __init__(self, vertices, iterations, query_distance):
        self.vertices = vertices
        self.iterations = iterations
        self.query_distance = query_distance


class TestResponseRoundTrip:
    def test_ok_response_round_trips_every_observable_field(self):
        result = _FakeResult({"a", "b", "x"}, iterations=4, query_distance=1.5)
        response = make_response(STATUS_OK, result=result,
                                 vertices={"a", "b", "x"})
        restored = decode_response(strict_loads(json_dumps(encode_response(response))))
        assert restored.status == STATUS_OK
        assert restored.vertices == {"a", "b", "x"}
        assert restored.iterations == 4
        assert restored.query_distance == 1.5
        assert restored.timings == response.timings
        assert restored.found

    def test_empty_response_restores_inf_distance_exactly(self):
        response = make_response(STATUS_EMPTY, reason=REASON_CROSS_SHARD)
        text = json_dumps(encode_response(response))
        assert "Infinity" not in text
        restored = decode_response(strict_loads(text))
        assert restored.query_distance == math.inf
        assert math.isinf(restored.query_distance)
        assert restored.reason == REASON_CROSS_SHARD
        assert restored.vertices == set()
        assert restored.iterations == 0

    def test_error_response_keeps_message_and_reason(self):
        response = make_response(
            STATUS_ERROR,
            reason=REASON_MISSING_VERTEX,
            error="vertex 'zz' is not in the graph",
        )
        restored = decode_response(json.loads(json_dumps(encode_response(response))))
        assert restored.status == STATUS_ERROR
        assert restored.error == "vertex 'zz' is not in the graph"
        assert restored.reason == REASON_MISSING_VERTEX
        assert restored.query_distance == math.inf

    @pytest.mark.parametrize("status", [STATUS_OK, STATUS_EMPTY, STATUS_ERROR])
    @pytest.mark.parametrize("reason", REASON_CODES)
    def test_every_status_reason_combination_round_trips(self, status, reason):
        overrides = {}
        if status == STATUS_OK:
            overrides = dict(result=_FakeResult({"v"}, 1, 0.0), vertices={"v"})
            reason = None
        response = make_response(status, reason=reason, **overrides)
        restored = decode_response(strict_loads(json_dumps(encode_response(response))))
        assert restored.status == status
        assert restored.reason == reason
        assert restored.query_distance == response.query_distance

    def test_codec_hooks_on_search_response(self):
        response = make_response(STATUS_EMPTY, reason=REASON_CROSS_SHARD)
        restored = SearchResponse.from_payload(response.to_payload())
        assert restored.status == response.status
        assert restored.query_distance == math.inf

    def test_mixed_vertex_types_encode_deterministically(self):
        result = _FakeResult({1, "a", 2, "b"}, 1, 0.0)
        response = make_response(STATUS_OK, result=result,
                                 vertices={1, "a", 2, "b"})
        payload = encode_response(response)
        assert payload["vertices"] == encode_response(response)["vertices"]
        assert decode_response(payload).vertices == {1, "a", 2, "b"}

    def test_unknown_status_is_refused(self):
        payload = encode_response(make_response(STATUS_EMPTY, reason=None))
        payload["status"] = "maybe"
        with pytest.raises(ProtocolError):
            decode_response(payload)

    def test_missing_fields_are_refused(self):
        payload = encode_response(make_response(STATUS_EMPTY, reason=None))
        del payload["timings"]
        with pytest.raises(ProtocolError):
            decode_response(payload)


class TestJsonable:
    def test_containers_floats_and_objects(self):
        view = jsonable(
            {
                "tuple": (1, 2),
                "set": {"b", "a"},
                "inf": math.inf,
                ("non", "str", "key"): "value",
                "obj": PathWeightConfig(),
            }
        )
        assert view["tuple"] == [1, 2]
        assert view["set"] == ["a", "b"]
        assert view["inf"] == "inf"
        assert "('non', 'str', 'key')" in view
        assert isinstance(view["obj"], str)
        json.dumps(view)  # the whole view is JSON-serializable


class TestReasonHttpMapping:
    def test_every_registered_reason_code_has_a_mapping(self):
        """Exhaustiveness: a new REASON_* constant must be mapped."""
        registered = {
            value
            for name, value in vars(exceptions_module).items()
            if name.startswith("REASON_") and isinstance(value, str)
        }
        assert registered == set(REASON_CODES)
        assert set(HTTP_STATUS_BY_REASON) == registered

    def test_mapping_values_are_the_specified_ones(self):
        assert HTTP_STATUS_BY_REASON[REASON_MISSING_VERTEX] == 404
        assert HTTP_STATUS_BY_REASON[REASON_UNKNOWN_METHOD] == 400
        assert HTTP_STATUS_BY_REASON[REASON_INVALID_QUERY] == 400
        assert HTTP_STATUS_BY_REASON[REASON_CROSS_SHARD] == 200

    def test_only_error_rows_consult_the_table(self):
        # Empty answers are successful searches: 200 whatever the reason.
        assert http_status_for_response("ok") == 200
        assert http_status_for_response("empty", REASON_MISSING_VERTEX) == 200
        assert http_status_for_response("empty", REASON_CROSS_SHARD) == 200
        assert http_status_for_response("error", REASON_MISSING_VERTEX) == 404
        assert http_status_for_response("error", REASON_INVALID_QUERY) == 400
        # Unknown error reasons default to a caller error, never a success.
        assert http_status_for_response("error", "someday-new-reason") == 400

    def test_round_trip_strictness_proves_standard_json(self):
        """The satellite's exact claim: json.loads(json.dumps(payload))
        round-trips with parse_constant raising on Infinity/NaN."""
        response = make_response(STATUS_EMPTY, reason=REASON_CROSS_SHARD)
        payload = encode_response(response)
        assert strict_loads(json.dumps(payload)) == payload


class TestFaultToleranceWireFields:
    def test_deadline_ms_round_trips_in_configs(self):
        config = SearchConfig(k1=4, k2=3, deadline_ms=250.0)
        restored = decode_config(json_loads(json_dumps(encode_config(config))))
        assert restored == config
        assert restored.deadline_ms == 250.0

    def test_degraded_flag_round_trips(self):
        response = SearchResponse(
            method="lp-bcc",
            query=("a", "b"),
            status=STATUS_OK,
            vertices={"a", "b"},
            degraded=True,
        )
        restored = decode_response(json_loads(json_dumps(encode_response(response))))
        assert restored.degraded is True

    def test_degraded_default_keeps_payloads_byte_identical(self):
        # Back-compat: a non-degraded response encodes without the field,
        # and decoding an old payload (no "degraded" key) restores False.
        response = SearchResponse(
            method="lp-bcc", query=("a", "b"), status=STATUS_OK, vertices={"a"}
        )
        payload = encode_response(response)
        assert "degraded" not in payload
        assert decode_response(payload).degraded is False
