"""Chaos suite: seeded fault plans driving the fault-tolerant serving path.

Everything here is deterministic — injection schedules are seeded and
counted, breaker clocks are fake, retry sleeps are recorded instead of
slept — so ejection, re-admission, failover, deadlines and degraded mode
are asserted exactly, with no wall-clock races.

Run standalone with ``pytest -m chaos``.
"""

from __future__ import annotations

import http.client
import threading
import time

import pytest

from repro.api import BCCEngine, Query, SearchConfig
from repro.exceptions import (
    REASON_DEADLINE_EXCEEDED,
    AllReplicasEjectedError,
    VertexNotFoundError,
)
from repro.graph.generators import paper_example_graph
from repro.server import (
    FaultPlan,
    FaultRule,
    Gateway,
    GatewayClient,
    GatewayError,
    GatewayUnavailableError,
    InjectedFault,
    HealthPolicy,
    ReplicaSet,
    RetryPolicy,
)
from repro.server.resilience import HEALTH_DOWN, HEALTH_OK
from repro.serving import GraphDirectory

pytestmark = pytest.mark.chaos

#: A deterministic query trace over the Figure 1 graph: found communities,
#: empty answers, and repeats (cache-friendly), in a fixed order.
TRACE = [
    Query("lp-bcc", ("ql", "qr")),
    Query("lp-bcc", ("ql", "u1")),
    Query("lp-bcc", ("ql", "z1")),
    Query("lp-bcc", ("qr", "v1")),
    Query("lp-bcc", ("ql", "qr")),
    Query("lp-bcc", ("u1", "v1")),
    Query("lp-bcc", ("ql", "u2")),
    Query("lp-bcc", ("z1", "u5")),
    Query("lp-bcc", ("ql", "qr")),
    Query("lp-bcc", ("qr", "z2")),
]

CONFIG = SearchConfig(k1=4, k2=3)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def fault_free_answers():
    engine = BCCEngine(paper_example_graph(), CONFIG)
    return [engine.search(query) for query in TRACE]


class TestReplicaFailureCycle:
    """The acceptance scenario: 1-of-4 replicas fails, is ejected, probes
    back in, and the whole trace answers with exact fault-free parity."""

    def test_ejection_readmission_and_parity(self):
        clock = FakeClock()
        # Replica 0 (the tie-break favorite, so it actually gets traffic)
        # fails its first 3 dispatches, then recovers.
        plan = FaultPlan(
            [FaultRule("replica.search", where={"replica": 0}, count=3)]
        )
        replica_set = ReplicaSet(
            paper_example_graph(),
            CONFIG,
            replicas=4,
            health_policy=HealthPolicy(failure_threshold=3, ejection_seconds=30.0),
            fault_plan=plan,
            clock=clock,
        )
        expected = fault_free_answers()

        answers = []
        for index, query in enumerate(TRACE):
            if index == 6:
                # Past the ejection window: the next acquisition of replica
                # 0 is its probe, which succeeds (the fault budget is spent)
                # and re-admits it.
                clock.advance(31.0)
            answers.append(replica_set.search(query))

        # Zero failed rows: every fault was absorbed by failover.
        for got, want in zip(answers, expected):
            assert got.status == want.status
            assert got.vertices == want.vertices
            assert got.reason == want.reason

        health = replica_set.replica_health(0).snapshot()
        assert health["failures"] == 3
        assert health["ejections"] == 1
        assert health["readmissions"] == 1
        assert health["state"] == HEALTH_OK

        counters = replica_set.counters_snapshot()
        assert counters["failovers"] == 3
        assert counters["replica_failures"] == 3
        assert counters["ejections"] == 1
        assert counters["readmissions"] == 1
        assert counters["searches"] == len(TRACE)

        # The plan spent exactly its budget, nothing leaked.
        assert plan.injected() == 3
        assert replica_set.in_flight() == [0, 0, 0, 0]
        assert replica_set.health_summary()["state"] == "ok"

    def test_all_replicas_ejected_raises_instead_of_hanging(self):
        clock = FakeClock()
        plan = FaultPlan([FaultRule("replica.search")])  # every dispatch
        replica_set = ReplicaSet(
            paper_example_graph(),
            CONFIG,
            replicas=2,
            health_policy=HealthPolicy(failure_threshold=1, ejection_seconds=60.0),
            fault_plan=plan,
            clock=clock,
        )
        # First query burns through both replicas; its own error surfaces.
        with pytest.raises(InjectedFault):
            replica_set.search(TRACE[0])
        summary = replica_set.health_summary()
        assert summary["state"] == "down"
        assert summary["available"] == 0
        assert summary["states"] == [HEALTH_DOWN, HEALTH_DOWN]
        # Further queries fail fast with the set-level error.
        with pytest.raises(AllReplicasEjectedError):
            replica_set.search(TRACE[1])
        assert replica_set.in_flight() == [0, 0]

    def test_caller_errors_never_penalize_replicas(self):
        plan = FaultPlan()  # inert
        replica_set = ReplicaSet(
            paper_example_graph(), CONFIG, replicas=2, fault_plan=plan
        )
        for _ in range(10):
            with pytest.raises(VertexNotFoundError):
                replica_set.search(Query("lp-bcc", ("ql", "nope")))
        assert replica_set.health_summary()["state"] == "ok"
        assert replica_set.counters_snapshot()["replica_failures"] == 0
        assert replica_set.in_flight() == [0, 0]


class TestInFlightAccounting:
    """Satellite regression: the in-flight gauge survives failing replicas."""

    def test_gauge_never_negative_and_returns_to_zero_after_failures(self):
        plan = FaultPlan(
            [FaultRule("replica.search", where={"replica": 0}, count=50)]
        )
        replica_set = ReplicaSet(
            paper_example_graph(),
            CONFIG,
            replicas=3,
            health_policy=HealthPolicy(failure_threshold=10_000),  # never eject
            fault_plan=plan,
        )
        errors = []

        def worker():
            for _ in range(10):
                try:
                    replica_set.search(TRACE[0], use_cache=False)
                except Exception as exc:  # pragma: no cover - defensive
                    errors.append(exc)
                gauge = replica_set.in_flight()
                assert all(value >= 0 for value in gauge), gauge

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors  # every fault failed over to a healthy replica
        assert replica_set.in_flight() == [0, 0, 0]
        # Routing still works and still balances after the failure storm.
        stats = replica_set.stats()
        routed = [block["routed"] for block in stats.replicas]
        assert sum(routed) >= 40

    def test_gauge_returns_to_zero_after_caller_errors(self):
        replica_set = ReplicaSet(paper_example_graph(), CONFIG, replicas=2)
        for _ in range(6):
            with pytest.raises(VertexNotFoundError):
                replica_set.search(Query("lp-bcc", ("ql", "missing")))
        assert replica_set.in_flight() == [0, 0]


class TestDeadlines:
    """One stalled row costs its own budget, never the batch's liveness."""

    def test_stalled_row_becomes_deadline_row_rest_parity(self):
        stall_vertices = ("ql", "z1")  # TRACE[2]
        plan = FaultPlan(
            [
                FaultRule(
                    "engine.search",
                    kind="stall",
                    where={"vertices": stall_vertices},
                    delay_seconds=20.0,
                )
            ]
        )
        engine = BCCEngine(paper_example_graph(), CONFIG, fault_plan=plan)
        expected = fault_free_answers()

        started = time.perf_counter()
        # Config precedence replaces whole configs, so the deadline rides a
        # config that also restates the engine's k1/k2.
        deadline_config = SearchConfig(k1=4, k2=3, deadline_ms=300.0)
        responses = engine.search_many(
            [Query(q.method, q.vertices, config=deadline_config) for q in TRACE],
            on_error="return",
        )
        elapsed = time.perf_counter() - started

        # The batch returned long before the 20s stall would have.
        assert elapsed < 10.0
        assert len(responses) == len(TRACE)
        for index, (got, want) in enumerate(zip(responses, expected)):
            if TRACE[index].vertices == stall_vertices:
                assert got.status == "error"
                assert got.reason == REASON_DEADLINE_EXCEEDED
            else:
                assert got.status == want.status
                assert got.vertices == want.vertices

    def test_gateway_search_enforces_deadline_as_504(self):
        plan = FaultPlan(
            [FaultRule("engine.search", kind="stall", delay_seconds=20.0)]
        )
        directory = GraphDirectory(sharded=False)
        directory.add(
            "paper", paper_example_graph(), config=CONFIG, fault_plan=plan
        )
        with Gateway(directory, port=0) as gateway:
            client = GatewayClient(gateway.url, timeout_seconds=10.0)
            from repro.exceptions import DeadlineExceededError

            started = time.perf_counter()
            with pytest.raises(DeadlineExceededError):
                client.search(
                    "paper",
                    TRACE[0],
                    config=SearchConfig(k1=4, k2=3, deadline_ms=300.0),
                )
            assert time.perf_counter() - started < 10.0
            assert gateway.counters_snapshot()["deadline_exceeded"] == 1


class TestClientRetries:
    """Backoff schedules asserted against a recorded fake sleep."""

    def test_429_retry_waits_at_least_retry_after(self, paper_directory):
        with Gateway(
            paper_directory, port=0, max_in_flight=2, retry_after_seconds=2
        ) as gateway:
            slept = []

            def sleep_and_free_slot(seconds: float) -> None:
                # The recorded "sleep" doubles as the event that frees a
                # slot, so the retry deterministically succeeds.
                slept.append(seconds)
                gateway.release()

            client = GatewayClient(
                gateway.url,
                timeout_seconds=10.0,
                retry_policy=RetryPolicy(
                    max_attempts=3, base_delay_seconds=0.05, max_delay_seconds=0.1
                ),
                sleep=sleep_and_free_slot,
            )
            assert gateway.try_acquire() and gateway.try_acquire()
            try:
                response = client.search("paper", TRACE[0])
            finally:
                gateway.release()  # the second held slot
            assert response.status == "ok"
            # Jitter caps at 0.1s but the server asked for 2s: the client
            # honors the larger of the two, exactly once.
            assert slept == [2.0]
            assert client.retries() == 1
            assert gateway.counters_snapshot()["rejections"] == 1

    def test_retry_schedule_is_deterministic_and_bounded(self):
        # A dead port: every attempt is a transport failure, so the client
        # retries exactly max_attempts times and the recorded schedule is
        # the policy's seeded jitter.
        import socket

        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        dead_port = placeholder.getsockname()[1]
        placeholder.close()

        policy = RetryPolicy(
            max_attempts=4,
            base_delay_seconds=0.1,
            max_delay_seconds=1.0,
            multiplier=2.0,
        )
        slept = []
        client = GatewayClient(
            f"http://127.0.0.1:{dead_port}",
            timeout_seconds=1.0,
            retry_policy=policy,
            sleep=slept.append,
        )
        with pytest.raises(GatewayError):
            client.healthz()
        assert client.retries() == 3  # 4 attempts = 3 retries
        assert len(slept) == 3
        for attempt, delay in enumerate(slept):
            assert 0.0 <= delay <= min(1.0, 0.1 * (2.0 ** attempt))

        # Same policy, same seed, fresh client: identical schedule.
        slept_again = []
        repeat = GatewayClient(
            f"http://127.0.0.1:{dead_port}",
            timeout_seconds=1.0,
            retry_policy=policy,
            sleep=slept_again.append,
        )
        with pytest.raises(GatewayError):
            repeat.healthz()
        assert slept_again == slept

    def test_no_policy_means_no_retries(self):
        import socket

        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        dead_port = placeholder.getsockname()[1]
        placeholder.close()

        client = GatewayClient(f"http://127.0.0.1:{dead_port}", timeout_seconds=1.0)
        with pytest.raises(GatewayError):
            client.healthz()
        assert client.retries() == 0


class TestDegradedGateway:
    """All replicas down: /healthz flips, cached answers replay degraded,
    uncached requests answer 503 + Retry-After."""

    def _down_directory(self):
        # Replica dispatches succeed once (warming the degraded cache via
        # the gateway), then every dispatch faults; with a one-failure
        # threshold and an hour-long window both replicas stay ejected for
        # the whole test.
        plan = FaultPlan([FaultRule("replica.search", after=1)])
        directory = GraphDirectory(sharded=False)
        directory.add(
            "paper",
            paper_example_graph(),
            config=CONFIG,
            replicas=2,
            health_policy=HealthPolicy(failure_threshold=1, ejection_seconds=3600.0),
            fault_plan=plan,
        )
        return directory

    def test_degraded_replay_then_503_for_cold_queries(self):
        directory = self._down_directory()
        with Gateway(directory, port=0, retry_after_seconds=9) as gateway:
            client = GatewayClient(gateway.url, timeout_seconds=10.0)

            live = client.search("paper", TRACE[0])
            assert live.status == "ok" and not live.degraded
            assert client.healthz()["status"] == "ok"

            # This request kills both replicas (fault → eject, failover,
            # fault → eject) and surfaces the last replica's own error.
            with pytest.raises(GatewayError):
                client.search("paper", TRACE[1])

            # Same request as the warm one: replayed from the degraded
            # cache, marked so, byte-for-byte the same answer otherwise.
            stale = client.search("paper", TRACE[0])
            assert stale.degraded
            assert stale.status == "ok"
            assert stale.vertices == live.vertices
            assert gateway.counters_snapshot()["degraded"] == 1

            # A request never served before has nothing to replay: 503
            # with the server's Retry-After hint.
            with pytest.raises(GatewayUnavailableError) as failure:
                client.search("paper", TRACE[3])
            assert failure.value.retry_after_seconds == 9.0
            assert gateway.counters_snapshot()["unavailable"] == 1

    def test_healthz_reports_down_with_503(self):
        directory = self._down_directory()
        with Gateway(directory, port=0) as gateway:
            client = GatewayClient(gateway.url, timeout_seconds=10.0)
            assert client.healthz()["graphs"]["paper"]["state"] == "ok"

            client.search("paper", TRACE[0])  # warm (one good dispatch)
            with pytest.raises(GatewayError):
                client.search("paper", TRACE[1])  # ejects both replicas

            # /healthz now answers 503 with the full readiness payload.
            connection = http.client.HTTPConnection(
                gateway.host, gateway.port, timeout=10.0
            )
            try:
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                body = response.read()
                assert response.status == 503
            finally:
                connection.close()
            import json

            payload = json.loads(body)
            assert payload["status"] == "down"
            assert payload["graphs"]["paper"]["state"] == "down"
            assert payload["graphs"]["paper"]["available"] == 0

    def test_degraded_cache_disabled_means_plain_503(self):
        directory = self._down_directory()
        with Gateway(directory, port=0, degraded_cache_size=0) as gateway:
            client = GatewayClient(gateway.url, timeout_seconds=10.0)
            client.search("paper", TRACE[0])
            with pytest.raises(GatewayError):
                client.search("paper", TRACE[1])
            with pytest.raises(GatewayUnavailableError):
                client.search("paper", TRACE[0])  # warm, but cache disabled


class TestRequestIds:
    def test_supplied_request_id_is_echoed(self, gateway):
        connection = http.client.HTTPConnection(
            gateway.host, gateway.port, timeout=10.0
        )
        try:
            connection.request(
                "GET", "/healthz", headers={"X-Request-Id": "trace-abc-123"}
            )
            response = connection.getresponse()
            response.read()
            assert response.getheader("X-Request-Id") == "trace-abc-123"
        finally:
            connection.close()

    def test_missing_request_id_is_generated(self, gateway):
        connection = http.client.HTTPConnection(
            gateway.host, gateway.port, timeout=10.0
        )
        try:
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            response.read()
            generated = response.getheader("X-Request-Id")
            assert generated and len(generated) == 32
        finally:
            connection.close()

    def test_unprintable_request_id_is_replaced(self, gateway):
        connection = http.client.HTTPConnection(
            gateway.host, gateway.port, timeout=10.0
        )
        try:
            connection.request(
                "GET", "/healthz", headers={"X-Request-Id": "x" * 500}
            )
            response = connection.getresponse()
            response.read()
            echoed = response.getheader("X-Request-Id")
            assert echoed and echoed != "x" * 500
        finally:
            connection.close()

    def test_request_id_lands_in_error_payloads_and_access_log(
        self, gateway, caplog
    ):
        import json
        import logging

        connection = http.client.HTTPConnection(
            gateway.host, gateway.port, timeout=10.0
        )
        try:
            with caplog.at_level(logging.INFO, logger="repro.server.access"):
                connection.request(
                    "GET", "/nowhere", headers={"X-Request-Id": "err-42"}
                )
                response = connection.getresponse()
                body = json.loads(response.read())
                assert response.status == 404
        finally:
            connection.close()
        assert body["request_id"] == "err-42"
        logged = [json.loads(record.message) for record in caplog.records]
        assert any(entry.get("request_id") == "err-42" for entry in logged)
