"""ReplicaHealth breaker transitions, RetryPolicy schedules, deadlines.

Everything runs on fake clocks — no wall-clock sleeps anywhere.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.exceptions import DeadlineExceededError
from repro.server.resilience import (
    HEALTH_DOWN,
    HEALTH_OK,
    HEALTH_PROBING,
    HealthPolicy,
    ReplicaHealth,
    RetryPolicy,
    run_with_deadline,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_health(clock, **policy):
    policy.setdefault("failure_threshold", 3)
    policy.setdefault("ejection_seconds", 30.0)
    return ReplicaHealth(HealthPolicy(**policy), clock=clock)


class TestHealthPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            HealthPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            HealthPolicy(ejection_seconds=-1)
        with pytest.raises(ValueError):
            HealthPolicy(latency_alpha=0.0)
        with pytest.raises(ValueError):
            HealthPolicy(latency_threshold_seconds=0.0)
        with pytest.raises(ValueError):
            HealthPolicy(latency_min_samples=0)


class TestCircuitBreaker:
    def test_consecutive_failures_eject_at_threshold(self):
        clock = FakeClock()
        health = make_health(clock)
        health.record_failure()
        health.record_failure()
        assert health.state() == HEALTH_OK  # below threshold
        health.record_failure()
        assert health.state() == HEALTH_DOWN
        assert not health.try_admit()

    def test_success_resets_the_consecutive_count(self):
        clock = FakeClock()
        health = make_health(clock)
        health.record_failure()
        health.record_failure()
        health.record_success(0.01)
        health.record_failure()
        health.record_failure()
        assert health.state() == HEALTH_OK

    def test_ejection_window_then_single_probe(self):
        clock = FakeClock()
        health = make_health(clock)
        for _ in range(3):
            health.record_failure()
        clock.advance(29.9)
        assert not health.try_admit()  # window not yet elapsed
        clock.advance(0.2)
        assert health.try_admit()  # the probe
        assert health.state() == HEALTH_PROBING
        assert not health.try_admit()  # one probe at a time

    def test_probe_success_readmits(self):
        clock = FakeClock()
        health = make_health(clock)
        for _ in range(3):
            health.record_failure()
        clock.advance(31.0)
        assert health.try_admit()
        health.record_success(0.01)
        assert health.state() == HEALTH_OK
        assert health.try_admit()
        snapshot = health.snapshot()
        assert snapshot["ejections"] == 1
        assert snapshot["readmissions"] == 1

    def test_probe_failure_reejects_immediately(self):
        clock = FakeClock()
        health = make_health(clock)
        for _ in range(3):
            health.record_failure()
        clock.advance(31.0)
        assert health.try_admit()
        health.record_failure()  # probe failed: no threshold credit
        assert health.state() == HEALTH_DOWN
        assert not health.try_admit()
        clock.advance(31.0)
        assert health.try_admit()  # next window, next probe

    def test_neutral_releases_probe_slot_without_verdict(self):
        clock = FakeClock()
        health = make_health(clock)
        for _ in range(3):
            health.record_failure()
        clock.advance(31.0)
        assert health.try_admit()
        health.record_neutral()  # caller error during the probe
        assert health.state() == HEALTH_PROBING
        assert health.try_admit()  # slot free again for a real probe

    def test_peek_available_has_no_side_effects(self):
        clock = FakeClock()
        health = make_health(clock)
        for _ in range(3):
            health.record_failure()
        clock.advance(31.0)
        assert health.peek_available()
        assert health.state() == HEALTH_DOWN  # peek did not flip to probing
        assert health.try_admit()
        assert not health.peek_available()  # probe slot claimed
        assert health.state() == HEALTH_PROBING


class TestLatencyEjection:
    def test_slow_successes_eject_after_min_samples(self):
        clock = FakeClock()
        health = make_health(
            clock,
            latency_threshold_seconds=0.1,
            latency_min_samples=5,
            latency_alpha=1.0,  # EWMA == last sample, for exactness
        )
        for _ in range(4):
            health.record_success(5.0)
        assert health.state() == HEALTH_OK  # not enough samples yet
        health.record_success(5.0)
        assert health.state() == HEALTH_DOWN

    def test_fast_replica_never_trips_latency_trigger(self):
        clock = FakeClock()
        health = make_health(
            clock, latency_threshold_seconds=0.1, latency_min_samples=2
        )
        for _ in range(50):
            health.record_success(0.001)
        assert health.state() == HEALTH_OK

    def test_ewma_smooths_one_outlier(self):
        clock = FakeClock()
        health = make_health(
            clock,
            latency_threshold_seconds=1.0,
            latency_min_samples=2,
            latency_alpha=0.2,
        )
        for _ in range(10):
            health.record_success(0.01)
        health.record_success(4.0)  # one spike: ewma ≈ 0.2*4 = 0.8 < 1.0
        assert health.state() == HEALTH_OK


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_seconds=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_full_jitter_bounds_and_growth(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_delay_seconds=0.1,
            max_delay_seconds=1.0,
            multiplier=2.0,
        )
        rng = random.Random(0)
        for attempt in range(6):
            cap = min(1.0, 0.1 * (2.0 ** attempt))
            for _ in range(20):
                delay = policy.delay_seconds(attempt, rng)
                assert 0.0 <= delay <= cap

    def test_seeded_schedule_is_deterministic(self):
        policy = RetryPolicy()
        first = [policy.delay_seconds(i, random.Random(3)) for i in range(4)]
        second = [policy.delay_seconds(i, random.Random(3)) for i in range(4)]
        assert first == second


class TestRunWithDeadline:
    def test_none_runs_inline(self):
        assert run_with_deadline(lambda: 42, None) == 42

    def test_fast_call_beats_its_deadline(self):
        assert run_with_deadline(lambda: "ok", 5.0) == "ok"

    def test_stalled_call_raises_within_budget(self):
        started = time.perf_counter()
        with pytest.raises(DeadlineExceededError) as excinfo:
            run_with_deadline(lambda: time.sleep(30.0), 0.05, what="stall")
        elapsed = time.perf_counter() - started
        assert elapsed < 5.0  # gave up, did not sit out the 30s
        assert excinfo.value.deadline_ms == pytest.approx(50.0)

    def test_worker_exceptions_reraise_in_caller(self):
        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError, match="inner"):
            run_with_deadline(boom, 5.0)
