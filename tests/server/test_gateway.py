"""Gateway endpoints, HTTP status mapping, backpressure, access logs."""

from __future__ import annotations

import json
import logging
import math
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import BatchQuery, Query, SearchConfig
from repro.api.query import STATUS_ERROR, STATUS_OK
from repro.exceptions import (
    REASON_MISSING_VERTEX,
    REASON_UNKNOWN_METHOD,
    GraphNotFoundError,
    QueryError,
)
from repro.graph.generators import paper_example_graph
from repro.server import (
    Gateway,
    GatewayClient,
    GatewayOverloadedError,
    PROTOCOL_VERSION,
)
from repro.server.app import ACCESS_LOGGER
from repro.serving import GraphDirectory

OK_QUERY = Query("online-bcc", ("ql", "qr"))


def raw_request(url: str, method: str = "GET", body: bytes = b"", timeout=10.0):
    """A raw HTTP exchange returning (status, parsed-or-raw body)."""
    request = urllib.request.Request(url, method=method, data=body or None)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        payload = exc.read()
        try:
            return exc.code, json.loads(payload)
        except json.JSONDecodeError:
            return exc.code, payload


class TestObservabilityEndpoints:
    def test_healthz(self, client, gateway):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["protocol_version"] == PROTOCOL_VERSION
        assert health["served_graphs"] == 1
        assert health["uptime_seconds"] >= 0.0
        assert health["max_in_flight"] == gateway.max_in_flight

    def test_graphs(self, client):
        assert client.graphs() == ["paper"]

    def test_stats_is_the_directory_payload(self, client, paper_directory):
        client.search("paper", OK_QUERY)
        stats = client.stats()
        assert stats["schema_version"] == 2
        assert stats["served_graphs"] == 1
        assert stats["graphs"]["paper"]["kind"] == "monolithic"
        assert stats["graphs"]["paper"]["counters"]["searches"] >= 1

    def test_unknown_get_endpoint_is_404(self, gateway):
        status, body = raw_request(f"{gateway.url}/nope")
        assert status == 404
        assert body["code"] == "not-found"


class TestSearchEndpoint:
    def test_ok_search_decodes_to_a_real_response(self, client, paper_directory):
        remote = client.search("paper", OK_QUERY)
        local = paper_directory.get("paper").search(OK_QUERY)
        assert remote.status == STATUS_OK
        assert remote.vertices == local.vertices
        assert remote.iterations == local.iterations
        assert remote.query_distance == local.query_distance

    def test_missing_vertex_is_http_404_query_error(self, client, gateway):
        with pytest.raises(QueryError):
            client.search("paper", Query("online-bcc", ("ql", "zz")))
        status, body = raw_request(
            f"{gateway.url}/graphs/paper/search",
            method="POST",
            body=json.dumps(
                {"query": {"method": "online-bcc", "vertices": ["ql", "zz"],
                           "config": None}}
            ).encode(),
        )
        assert status == 404
        assert body["status"] == STATUS_ERROR
        assert body["reason"] == REASON_MISSING_VERTEX
        assert body["query_distance"] == "inf"  # never Infinity

    def test_unknown_method_is_http_400(self, gateway):
        status, body = raw_request(
            f"{gateway.url}/graphs/paper/search",
            method="POST",
            body=json.dumps(
                {"query": {"method": "warp", "vertices": ["ql", "qr"],
                           "config": None}}
            ).encode(),
        )
        assert status == 400
        assert body["reason"] == REASON_UNKNOWN_METHOD

    def test_unknown_graph_is_graph_not_found(self, client):
        with pytest.raises(GraphNotFoundError):
            client.search("atlantis", OK_QUERY)

    def test_config_override_rides_through(self, client):
        response = client.search(
            "paper", Query("online-bcc", ("ql", "qr")), config=SearchConfig(k1=4, k2=3)
        )
        assert response.status == STATUS_OK

    def test_malformed_body_is_400(self, gateway):
        status, body = raw_request(
            f"{gateway.url}/graphs/paper/search", method="POST", body=b"{not json"
        )
        assert status == 400
        assert body["code"] == "bad-request"

    def test_unknown_action_is_404(self, gateway):
        status, body = raw_request(
            f"{gateway.url}/graphs/paper/teleport", method="POST", body=b"{}"
        )
        assert status == 404

    def test_unencodable_response_is_500_not_callers_fault(self):
        """A graph may host non-scalar vertices in-process; a community
        containing one cannot ride the wire — that is a server-side 500,
        never a 400 blaming the well-formed request."""
        from repro.graph.labeled_graph import LabeledGraph
        from repro.server import GatewayError

        graph = LabeledGraph()
        for vertex in ("a", "b", ("t", 1)):
            graph.add_vertex(vertex, label="L")
        for vertex in ("x", "y", ("t", 2)):
            graph.add_vertex(vertex, label="R")
        for left in ("a", "b", ("t", 1)):
            for right in ("x", "y", ("t", 2)):
                graph.add_edge(left, right)
        for u, v in (("a", "b"), ("a", ("t", 1)), ("x", "y"), ("x", ("t", 2))):
            graph.add_edge(u, v)
        directory = GraphDirectory(sharded=False)
        directory.add("mixed", graph, config=SearchConfig(k1=1, k2=1))
        local = directory.serve("mixed", Query("online-bcc", ("a", "x")))
        assert any(isinstance(v, tuple) for v in local.vertices)
        with Gateway(directory, port=0) as gateway:
            client = GatewayClient(gateway.url, timeout_seconds=10.0)
            with pytest.raises(GatewayError) as failure:
                client.search("mixed", Query("online-bcc", ("a", "x")))
            assert "500" in str(failure.value)


class TestSearchManyEndpoint:
    def test_batch_with_one_bad_query_returns_aligned_rows(self, client):
        rows = client.search_many(
            "paper",
            [OK_QUERY, Query("online-bcc", ("ql", "nope")), OK_QUERY],
            on_error="return",
        )
        assert [row.status for row in rows] == [STATUS_OK, STATUS_ERROR, STATUS_OK]
        assert rows[1].reason == REASON_MISSING_VERTEX
        assert rows[1].query_distance == math.inf
        assert rows[0].vertices == rows[2].vertices

    def test_on_error_raise_aborts_with_the_query_error(self, client):
        with pytest.raises(QueryError):
            client.search_many(
                "paper", [OK_QUERY, Query("online-bcc", ("ql", "nope"))],
                on_error="raise",
            )

    def test_batch_query_shared_config_rides_through(self, client):
        batch = BatchQuery(queries=(OK_QUERY,), config=SearchConfig(k1=4, k2=3))
        rows = client.search_many("paper", batch)
        assert rows[0].status == STATUS_OK

    def test_call_level_config_beats_query_config_like_in_process(
        self, client, paper_directory
    ):
        """Config precedence over the wire: call > query > batch — the
        call-level override must ride as its own field, not be folded into
        the batch config (which per-query configs would beat)."""
        query = Query(
            "online-bcc", ("ql", "qr"), config=SearchConfig(max_iterations=0)
        )
        call_config = SearchConfig(k1=4, k2=3, max_iterations=200)
        local = paper_directory.serve_many(
            "paper", [query], config=call_config
        )
        remote = client.search_many("paper", [query], config=call_config)
        assert remote[0].vertices == local[0].vertices
        assert remote[0].iterations == local[0].iterations
        # And the call override genuinely changed the answer vs the
        # query's own config (otherwise this test proves nothing).
        unoverridden = client.search_many(
            "paper", [Query("online-bcc", ("ql", "qr"),
                            config=SearchConfig(k1=4, k2=3, max_iterations=0))]
        )
        assert unoverridden[0].iterations != remote[0].iterations

    def test_bad_options_are_400(self, gateway):
        body = json.dumps(
            {"queries": [{"method": "online-bcc", "vertices": ["ql", "qr"],
                          "config": None}],
             "config": None, "on_error": "explode"}
        ).encode()
        status, payload = raw_request(
            f"{gateway.url}/graphs/paper/search_many", method="POST", body=body
        )
        assert status == 400


class TestExplainEndpoint:
    def test_explain_reports_dispatch(self, client):
        report = client.explain("paper", Query("lp-bcc", ("ql", "qr")))
        assert report["method"]["name"] == "lp-bcc"
        assert report["resolved"]["left_label"] == "SE"

    def test_explain_caller_error_is_mapped(self, client):
        with pytest.raises(QueryError):
            client.explain("paper", Query("lp-bcc", ("ql", "zz")))


class TestBackpressure:
    def test_forced_429_with_retry_after(self, paper_directory):
        with Gateway(paper_directory, port=0, max_in_flight=2,
                     retry_after_seconds=7) as gateway:
            client = GatewayClient(gateway.url, timeout_seconds=10.0)
            # Deterministically exhaust both slots, then expect rejection.
            assert gateway.try_acquire() and gateway.try_acquire()
            try:
                with pytest.raises(GatewayOverloadedError) as failure:
                    client.search("paper", OK_QUERY)
                assert failure.value.retry_after_seconds == 7.0
                assert gateway.counters_snapshot()["rejections"] == 1
            finally:
                gateway.release()
                gateway.release()
            # Slots free again: the same request now succeeds.
            assert client.search("paper", OK_QUERY).status == STATUS_OK

    def test_get_endpoints_are_exempt_from_backpressure(self, paper_directory):
        with Gateway(paper_directory, port=0, max_in_flight=1) as gateway:
            client = GatewayClient(gateway.url, timeout_seconds=10.0)
            assert gateway.try_acquire()
            try:
                # Stats/health stay readable while serving is saturated.
                assert client.healthz()["in_flight"] == 1
                assert "paper" in client.stats()["graphs"]
            finally:
                gateway.release()

    def test_concurrent_overflow_is_rejected_not_queued(self, paper_directory):
        """Offered concurrency above the cap produces 429s, not a pile-up."""
        import repro.api.methods  # ensure built-ins registered before patching
        from repro.api.registry import get_method

        gate = threading.Event()
        spec = get_method("online-bcc")
        original_runner = spec.runner

        def slow_runner(engine, query, config, instrumentation):
            gate.wait(timeout=10.0)
            return original_runner(engine, query, config, instrumentation)

        object.__setattr__(spec, "runner", slow_runner)
        try:
            with Gateway(paper_directory, port=0, max_in_flight=1) as gateway:
                client = GatewayClient(gateway.url, timeout_seconds=15.0)
                outcomes = []

                def call():
                    try:
                        outcomes.append(client.search(
                            "paper", OK_QUERY, use_cache=False).status)
                    except GatewayOverloadedError:
                        outcomes.append("rejected")

                threads = [threading.Thread(target=call) for _ in range(4)]
                for thread in threads:
                    thread.start()
                # Let the slow query occupy the slot, then release it.
                import time
                time.sleep(0.3)
                gate.set()
                for thread in threads:
                    thread.join(timeout=15.0)
                assert "rejected" in outcomes          # backpressure engaged
                assert STATUS_OK in outcomes           # and real work finished
        finally:
            object.__setattr__(spec, "runner", original_runner)


class TestAccessLogs:
    def test_structured_json_lines_are_emitted(self, client, caplog):
        import time

        with caplog.at_level(logging.INFO, logger=ACCESS_LOGGER.name):
            client.search("paper", OK_QUERY)
            client.healthz()
            # The access line is logged *after* the response body is sent,
            # so the server thread may still be writing it when the client
            # returns — poll instead of racing.
            deadline = time.monotonic() + 5.0
            while len(caplog.records) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
        records = [json.loads(record.getMessage()) for record in caplog.records]
        posts = [r for r in records if r["method"] == "POST"]
        gets = [r for r in records if r["method"] == "GET"]
        assert posts and gets
        assert posts[0]["path"] == "/graphs/paper/search"
        assert posts[0]["status"] == 200
        assert posts[0]["duration_ms"] >= 0.0
        assert "in_flight" in posts[0]


class TestLifecycle:
    def test_context_manager_binds_ephemeral_port_and_stops(self, paper_directory):
        with Gateway(paper_directory, port=0) as gateway:
            port = gateway.port
            assert port != 0
            assert GatewayClient(gateway.url).healthz()["status"] == "ok"
        # After stop, the port no longer answers.
        from repro.server import GatewayError
        with pytest.raises(GatewayError):
            GatewayClient(f"http://127.0.0.1:{port}", timeout_seconds=0.5).healthz()

    def test_double_start_is_refused(self, paper_directory):
        gateway = Gateway(paper_directory, port=0).start()
        try:
            with pytest.raises(RuntimeError):
                gateway.start()
        finally:
            gateway.stop()

    def test_invalid_construction(self, paper_directory):
        with pytest.raises(ValueError):
            Gateway(paper_directory, max_in_flight=0)
