"""Shared fixtures for the HTTP gateway tests.

Each gateway fixture binds an ephemeral port (``port=0``), serves from a
daemon thread and is torn down after the test, so the suite never collides
with itself (or anything else) on a fixed port.
"""

from __future__ import annotations

import pytest

from repro.api import SearchConfig
from repro.graph.generators import paper_example_graph
from repro.server import Gateway, GatewayClient
from repro.serving import GraphDirectory


@pytest.fixture
def paper_directory() -> GraphDirectory:
    """A directory serving the Figure 1 graph monolithically as "paper"."""
    directory = GraphDirectory(sharded=False)
    directory.add("paper", paper_example_graph(), config=SearchConfig(k1=4, k2=3))
    return directory


@pytest.fixture
def gateway(paper_directory: GraphDirectory):
    """A running gateway over ``paper_directory`` on an ephemeral port."""
    with Gateway(paper_directory, port=0, max_in_flight=8) as server:
        yield server


@pytest.fixture
def client(gateway: Gateway) -> GatewayClient:
    """A client bound to the running gateway (short timeout: hangs fail fast)."""
    return GatewayClient(gateway.url, timeout_seconds=10.0)
