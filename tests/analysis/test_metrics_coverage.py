"""BCC006 fixtures: manifest anchoring, the four bump shapes, noqa."""

from conftest import rules_of

#: A minimal manifest fixture — only these three names are declared.
MANIFEST = '''
EXPORTED_COUNTERS = frozenset(
    {
        "searches",
        "dispatched",
        "requests",
    }
)
'''


def test_undeclared_count_call_fires(lint):
    report = lint(
        {
            "repro/obs/metrics.py": MANIFEST,
            "repro/api/bumps.py": '''
            class Thing:
                def work(self):
                    self._count("mystery")
            ''',
        }
    )
    assert rules_of(report) == ["BCC006"]
    assert "'mystery'" in report.findings[0].message


def test_declared_count_call_is_clean(lint):
    report = lint(
        {
            "repro/obs/metrics.py": MANIFEST,
            "repro/api/bumps.py": '''
            class Thing:
                def work(self):
                    self._count("searches", 2)
            ''',
        }
    )
    assert report.findings == []


def test_count_worker_checks_the_second_argument(lint):
    report = lint(
        {
            "repro/obs/metrics.py": MANIFEST,
            "repro/parallel/bumps.py": '''
            class Pool:
                def ok(self, worker):
                    self._count_worker(worker, "dispatched")

                def bad(self, worker):
                    self._count_worker(worker, "mystery")
            ''',
        }
    )
    assert rules_of(report) == ["BCC006"]
    assert report.findings[0].line == 7


def test_gateway_count_receiver_is_scoped(lint):
    report = lint(
        {
            "repro/obs/metrics.py": MANIFEST,
            "repro/server/bumps.py": '''
            import itertools

            class Handler:
                def ok(self, gateway):
                    gateway.count("requests")
                    self.gateway.count("requests")

                def bad(self, gateway):
                    gateway.count("mystery")

                def out_of_scope(self):
                    # not a counter bump: a different receiver entirely
                    return itertools.count("ignored")
            ''',
        }
    )
    assert rules_of(report) == ["BCC006"]
    assert report.findings[0].line == 10


def test_counters_subscript_augassign_fires(lint):
    report = lint(
        {
            "repro/obs/metrics.py": MANIFEST,
            "repro/store/bumps.py": '''
            class Store:
                def work(self):
                    self._counters["mystery"] += 1
            ''',
        }
    )
    assert rules_of(report) == ["BCC006"]


def test_dynamic_names_are_out_of_scope(lint):
    report = lint(
        {
            "repro/obs/metrics.py": MANIFEST,
            "repro/api/bumps.py": '''
            class Thing:
                def forward(self, name):
                    self._count(name)
                    self._counters[name] += 1
            ''',
        }
    )
    assert report.findings == []


def test_without_a_manifest_the_checker_stays_silent(lint):
    # Linting a subtree that does not include metrics.py must not invent
    # findings about a manifest it was never shown.
    report = lint(
        {
            "repro/api/bumps.py": '''
            class Thing:
                def work(self):
                    self._count("mystery")
            ''',
        }
    )
    assert report.findings == []


def test_test_files_are_skipped(lint):
    report = lint(
        {
            "repro/obs/metrics.py": MANIFEST,
            "test_bumps.py": '''
            class Stub:
                def work(self):
                    self._count("throwaway")
            ''',
        }
    )
    assert report.findings == []


def test_noqa_suppresses_a_declared_exception(lint):
    report = lint(
        {
            "repro/obs/metrics.py": MANIFEST,
            "repro/api/bumps.py": '''
            class Thing:
                def work(self):
                    self._count("mystery")  # noqa: BCC006
            ''',
        }
    )
    assert report.findings == []
