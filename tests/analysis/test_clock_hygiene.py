"""BCC002 fixtures: server-scope seams, chaos strictness, noqa."""

from conftest import rules_of


def test_bare_sleep_in_server_package_fires(lint):
    report = lint(
        {
            "repro/server/poller.py": '''
            import time

            def poll():
                time.sleep(0.1)
            '''
        }
    )
    assert rules_of(report) == ["BCC002"]
    assert "time.sleep" in report.findings[0].message


def test_parameter_default_seam_is_clean(lint):
    report = lint(
        {
            "repro/server/breaker.py": '''
            import time

            class Breaker:
                def __init__(self, clock=time.monotonic, sleep=time.sleep):
                    self._clock = clock
                    self._sleep = sleep

                def wait(self, seconds):
                    self._sleep(seconds)
                    return self._clock()
            '''
        }
    )
    assert report.findings == []


def test_from_import_fires(lint):
    report = lint(
        {
            "repro/server/wedge.py": '''
            from time import sleep

            def wedge():
                sleep(1.0)
            '''
        }
    )
    assert rules_of(report) == ["BCC002"]
    assert "from time import sleep" in report.findings[0].message


def test_perf_counter_is_allowed(lint):
    report = lint(
        {
            "repro/server/timing.py": '''
            import time

            def measure(fn):
                started = time.perf_counter()
                fn()
                return time.perf_counter() - started
            '''
        }
    )
    assert report.findings == []


def test_outside_server_package_is_out_of_scope(lint):
    report = lint(
        {
            "repro/serving/warm.py": '''
            import time

            def warm():
                time.sleep(0.5)
            '''
        }
    )
    assert report.findings == []


def test_chaos_suite_bans_even_defaults(lint):
    # test_chaos.py runs on fake clocks only: the seam exemption that
    # server modules get does not apply there.
    report = lint(
        {
            "test_chaos.py": '''
            import time

            def test_breaker(clock=time.monotonic):
                assert clock() >= 0
            '''
        }
    )
    assert rules_of(report) == ["BCC002"]
    assert "fake clocks" in report.findings[0].message


def test_noqa_suppresses_declared_exemption(lint):
    report = lint(
        {
            "repro/server/startup.py": '''
            import time

            def warmup_pause():
                time.sleep(0.01)  # noqa: BCC002
            '''
        }
    )
    assert report.findings == []
