"""Meta-test: the shipped tree itself passes the linter with no baseline.

This is the ratchet's anchor: ISSUE 8 requires the baseline to ship
*empty* for ``src/`` — real findings (like the old unlocked counter read
in ``BCCEngine.__repr__``) were fixed, not grandfathered.  If a future
change violates an invariant, this test fails locally exactly like the
CI ``analysis`` job does.
"""

import json
from pathlib import Path

from repro.analysis import all_checkers, discover_files, run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "analysis-baseline.json"


def _findings_over(*trees: str):
    files = discover_files([REPO_ROOT / tree for tree in trees])
    report = run_analysis(files, root=REPO_ROOT)
    return report.findings


def test_all_six_rules_are_registered():
    rules = [checker.rule for checker in all_checkers()]
    assert rules == ["BCC001", "BCC002", "BCC003", "BCC004", "BCC005", "BCC006"]


def test_src_has_zero_findings():
    findings = _findings_over("src")
    assert findings == [], "\n".join(f.render() for f in findings)


def test_src_and_tests_have_zero_findings():
    # The full CI scope: cross-file rules (method parity, chaos-suite
    # clock strictness) only see both halves when src and tests run
    # together.
    findings = _findings_over("src", "tests")
    assert findings == [], "\n".join(f.render() for f in findings)


def test_committed_baseline_is_empty():
    payload = json.loads(BASELINE.read_text(encoding="utf-8"))
    assert payload == {"version": 1, "findings": []}
