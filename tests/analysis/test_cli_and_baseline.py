"""CLI surface: formats, exit codes, determinism, the baseline ratchet."""

import json
import textwrap

import pytest

from repro.analysis import main, save_baseline
from repro.analysis.baseline import BaselineError, load_baseline

VIOLATING_ENGINE = textwrap.dedent(
    '''
    class BCCEngine:
        def read(self):
            return self._counters["searches"]

        def read_again(self):
            return self._counters["searches"]
    '''
)


@pytest.fixture
def tree(tmp_path, monkeypatch):
    """A tmp tree with one two-violation file; cwd moved there for the CLI."""
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "engine.py").write_text(
        VIOLATING_ENGINE, encoding="utf-8"
    )
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_text_format_and_exit_code(tree, capsys):
    assert main(["pkg"]) == 1
    out = capsys.readouterr().out
    assert "pkg/engine.py" in out
    assert "BCC001" in out
    assert "2 findings" in out


def test_json_format_payload(tree, capsys):
    assert main(["--format", "json", "pkg"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["summary"]["active"] == 2
    assert payload["summary"]["by_rule"] == {"BCC001": 2}
    assert [f["rule"] for f in payload["findings"]] == ["BCC001", "BCC001"]


def test_clean_tree_exits_zero(tree, capsys):
    (tree / "pkg" / "engine.py").write_text("x = 1\n", encoding="utf-8")
    assert main(["pkg"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_output_writes_json_artifact(tree, capsys):
    assert main(["--output", "report.json", "pkg"]) == 1
    payload = json.loads((tree / "report.json").read_text(encoding="utf-8"))
    assert payload["summary"]["active"] == 2
    # Terminal output stays text when --format was not given.
    assert "BCC001" in capsys.readouterr().out


def test_deterministic_output(tree, capsys):
    main(["--format", "json", "pkg"])
    first = capsys.readouterr().out
    main(["--format", "json", "pkg"])
    second = capsys.readouterr().out
    assert first == second
    findings = json.loads(first)["findings"]
    keys = [(f["file"], f["line"], f["col"], f["rule"]) for f in findings]
    assert keys == sorted(keys)


def test_missing_path_is_usage_error(tree, capsys):
    assert main(["no-such-dir"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_syntax_error_reports_bcc000(tree, capsys):
    (tree / "pkg" / "broken.py").write_text("def f(:\n", encoding="utf-8")
    assert main(["pkg"]) == 1
    assert "BCC000" in capsys.readouterr().out


def test_write_baseline_then_ratchet(tree, capsys):
    # Grandfather the two findings...
    assert main(["--baseline", "baseline.json", "--write-baseline", "pkg"]) == 0
    assert len(load_baseline(tree / "baseline.json")) >= 1
    # ...now the same tree passes with them reported as baselined...
    assert main(["--baseline", "baseline.json", "pkg"]) == 0
    out = capsys.readouterr().out
    assert "0 findings (2 baselined)" in out
    # ...but a NEW violation still fails.
    (tree / "pkg" / "replicas.py").write_text(
        textwrap.dedent(
            '''
            class ReplicaSet:
                def read(self):
                    return self._searches
            '''
        ),
        encoding="utf-8",
    )
    assert main(["--baseline", "baseline.json", "pkg"]) == 1
    out = capsys.readouterr().out
    assert "1 finding (2 baselined)" in out


def test_baseline_matching_is_a_multiset(tree, capsys):
    # Two identical violations, one baseline slot: one stays active.
    assert main(["--baseline", "baseline.json", "--write-baseline", "pkg"]) == 0
    payload = json.loads((tree / "baseline.json").read_text(encoding="utf-8"))
    payload["findings"] = payload["findings"][:1]
    (tree / "baseline.json").write_text(
        json.dumps(payload), encoding="utf-8"
    )
    assert main(["--baseline", "baseline.json", "pkg"]) == 1
    assert "1 finding (1 baselined)" in capsys.readouterr().out


def test_baseline_survives_line_shifts(tree, capsys):
    assert main(["--baseline", "baseline.json", "--write-baseline", "pkg"]) == 0
    shifted = "# a new leading comment\n\n" + VIOLATING_ENGINE
    (tree / "pkg" / "engine.py").write_text(shifted, encoding="utf-8")
    assert main(["--baseline", "baseline.json", "pkg"]) == 0


def test_malformed_baseline_is_usage_error(tree, capsys):
    (tree / "baseline.json").write_text("[]", encoding="utf-8")
    assert main(["--baseline", "baseline.json", "pkg"]) == 2
    assert "baseline" in capsys.readouterr().err


def test_save_and_load_round_trip(tmp_path):
    from repro.analysis import Finding

    findings = [
        Finding("b.py", 2, 0, "BCC001", "m1"),
        Finding("a.py", 9, 4, "BCC002", "m2"),
    ]
    save_baseline(tmp_path / "b.json", findings)
    loaded = load_baseline(tmp_path / "b.json")
    assert loaded[("a.py", "BCC002", "m2")] == 1
    assert loaded[("b.py", "BCC001", "m1")] == 1
    with pytest.raises(BaselineError):
        load_baseline(tmp_path / "missing.json")
