"""BCC001 fixtures: violating, clean, receiver-aware, exempt, noqa."""

from conftest import rules_of

# The shape of the real seeded bug: BCCEngine.__repr__ reading a guarded
# counter outside its lock (src/repro/api/engine.py:936 before the fix).
ENGINE_REPR_BUG = '''
import threading

class BCCEngine:
    def __init__(self):
        self._counters_lock = threading.Lock()
        self._counters = {"searches": 0}

    def bump(self):
        with self._counters_lock:
            self._counters["searches"] += 1

    def __repr__(self):
        return f"BCCEngine(searches={self._counters['searches']})"
'''


def test_engine_repr_bug_fires(lint):
    report = lint({"engine.py": ENGINE_REPR_BUG})
    assert rules_of(report) == ["BCC001"]
    (finding,) = report.findings
    assert "_counters" in finding.message
    assert "_counters_lock" in finding.message
    # The locked bump() must not fire — only the repr line does.
    assert "self._counters" in ENGINE_REPR_BUG.splitlines()[finding.line - 1]
    assert "__repr__" in ENGINE_REPR_BUG.splitlines()[finding.line - 2]


def test_locked_access_is_clean(lint):
    report = lint(
        {
            "engine.py": '''
            import threading

            class BCCEngine:
                def __init__(self):
                    self._counters_lock = threading.Lock()
                    self._counters = {}

                def counters_snapshot(self):
                    with self._counters_lock:
                        return dict(self._counters)
            '''
        }
    )
    assert report.findings == []


def test_wrong_lock_still_fires(lint):
    report = lint(
        {
            "engine.py": '''
            class BCCEngine:
                def read(self):
                    with self._cache_lock:
                        return self._counters["searches"]
            '''
        }
    )
    assert rules_of(report) == ["BCC001"]


def test_receiver_aware_merge_is_clean(lint):
    # LatencyHistogram.merge snapshots *other* under other._lock — the
    # checker must track (receiver, lock) pairs, not just lock names.
    report = lint(
        {
            "stats.py": '''
            class LatencyHistogram:
                def merge(self, other):
                    with other._lock:
                        counts = list(other._counts)
                    with self._lock:
                        self._count += len(counts)
                    return self
            '''
        }
    )
    assert report.findings == []


def test_wrong_receiver_fires(lint):
    report = lint(
        {
            "stats.py": '''
            class LatencyHistogram:
                def merge(self, other):
                    with self._lock:
                        return list(other._counts)
            '''
        }
    )
    assert rules_of(report) == ["BCC001"]
    assert "other._lock" in report.findings[0].message


def test_locked_suffix_methods_are_exempt(lint):
    report = lint(
        {
            "resilience.py": '''
            class ReplicaHealth:
                def _eject_locked(self, until):
                    self._state = "ejected"
                    self._ejected_until = until
            '''
        }
    )
    assert report.findings == []


def test_init_is_exempt(lint):
    report = lint(
        {
            "store.py": '''
            import threading

            class SnapshotStore:
                def __init__(self):
                    self._counters_lock = threading.Lock()
                    self._counters = {}
            '''
        }
    )
    assert report.findings == []


def test_noqa_suppresses_one_line(lint):
    report = lint(
        {
            "engine.py": '''
            class BCCEngine:
                def live_view(self):
                    return self._counters  # noqa: BCC001

                def still_flagged(self):
                    return self._counters
            '''
        }
    )
    assert rules_of(report) == ["BCC001"]
    assert report.findings[0].line == 7  # the un-noqa'd access only


def test_unregistered_fields_and_classes_ignored(lint):
    # _groups is deliberately not registered (double-checked fill-once),
    # and classes/files outside the registry are out of scope entirely.
    report = lint(
        {
            "engine.py": '''
            class BCCEngine:
                def group(self, label):
                    return self._groups.get(label)

            class Helper:
                def read(self):
                    return self._counters["x"]
            ''',
            "somewhere_else.py": '''
            class BCCEngine:
                def read(self):
                    return self._counters["x"]
            ''',
        }
    )
    assert report.findings == []
