"""BCC003/BCC004/BCC005 fixtures: the cross-file contract checkers."""

from conftest import rules_of

# ---------------------------------------------------------------------------
# BCC003 — wire drift
# ---------------------------------------------------------------------------

MODEL_WITH_EXTRA_FIELD = '''
from dataclasses import dataclass

@dataclass
class Query:
    method: str
    vertices: tuple
    config: object = None
    priority: int = 0
'''

CODEC_WITHOUT_PRIORITY = '''
def encode_query(query):
    return {
        "method": query.method,
        "vertices": list(query.vertices),
        "config": query.config,
    }

def decode_query(payload):
    return (payload["method"], payload["vertices"], payload["config"])
'''


def test_unhandled_field_fires_on_both_codec_sides(lint):
    report = lint(
        {
            "query.py": MODEL_WITH_EXTRA_FIELD,
            "protocol.py": CODEC_WITHOUT_PRIORITY,
        }
    )
    assert rules_of(report) == ["BCC003", "BCC003"]
    messages = sorted(f.message for f in report.findings)
    assert "decode_query" in messages[0]
    assert "encode_query" in messages[1]
    assert all("Query.priority" in m for m in messages)


def test_fully_handled_fields_are_clean(lint):
    report = lint(
        {
            "query.py": MODEL_WITH_EXTRA_FIELD,
            "protocol.py": '''
            def encode_query(query):
                return {
                    "method": query.method,
                    "vertices": list(query.vertices),
                    "config": query.config,
                    "priority": query.priority,
                }

            def decode_query(payload):
                return (
                    payload["method"],
                    payload["vertices"],
                    payload["config"],
                    payload["priority"],
                )
            ''',
        }
    )
    assert report.findings == []


def test_declared_server_side_fields_are_exempt(lint):
    report = lint(
        {
            "query.py": '''
            from dataclasses import dataclass

            @dataclass
            class SearchResponse:
                method: str
                result: object = None
                instrumentation: object = None
            ''',
            "protocol.py": '''
            def encode_query(query):
                return {}

            def encode_response(response):
                return {"method": response.method}

            def decode_response(payload):
                return payload["method"]
            ''',
        }
    )
    assert report.findings == []


def test_absent_anchors_skip_quietly(lint):
    report = lint({"query.py": MODEL_WITH_EXTRA_FIELD})
    assert report.findings == []


# ---------------------------------------------------------------------------
# BCC004 — reason / method-registry exhaustiveness
# ---------------------------------------------------------------------------


def test_unmapped_reason_fires(lint):
    report = lint(
        {
            "exceptions.py": '''
            REASON_NO_CORE = "no-core"
            REASON_BRAND_NEW = "brand-new"

            HTTP_STATUS_BY_REASON = {
                REASON_NO_CORE: 200,
            }
            '''
        }
    )
    assert rules_of(report) == ["BCC004"]
    assert "REASON_BRAND_NEW" in report.findings[0].message


def test_method_missing_from_parity_suite_fires(lint):
    report = lint(
        {
            "methods.py": '''
            @register_method("psa", display="PSA")
            def run_psa():
                pass

            @register_method("novel-method")
            def run_novel():
                pass
            ''',
            "test_parity.py": '''
            PAIR_METHODS = {"psa": None}
            ''',
        }
    )
    assert rules_of(report) == ["BCC004"]
    assert "novel-method" in report.findings[0].message


def test_parity_half_skips_without_parity_file(lint):
    report = lint(
        {
            "methods.py": '''
            @register_method("unchecked")
            def run_unchecked():
                pass
            '''
        }
    )
    assert report.findings == []


# ---------------------------------------------------------------------------
# BCC005 — snapshot schema
# ---------------------------------------------------------------------------

SNAPSHOT_WITH_DRIFT = '''
_CORE_SEGMENTS = {
    "offsets": ("q", 1),
    "labels": ("i", 1),
}

class SnapshotWriter:
    def write(self):
        segments = [
            ("offsets", "q", pack()),
            ("orphan", "i", pack()),
        ]
        for pair_id in self.pairs:
            segments.append((f"bf_ids_{pair_id}", "i", pack()))
        return segments

class Snapshot:
    def attach(self):
        self.segment("offsets")
        self.segment("bf_ids_3")
        self.segment("ghost")
'''


def test_snapshot_schema_drift_fires_in_all_directions(lint):
    report = lint({"snapshot.py": SNAPSHOT_WITH_DRIFT})
    assert rules_of(report) == ["BCC005", "BCC005", "BCC005"]
    messages = " | ".join(f.message for f in report.findings)
    # Declared but never written; read but never written; written but dead.
    assert "'labels'" in messages and "never writes" in messages
    assert "'ghost'" in messages
    assert "'orphan'" in messages and "dead segment" in messages
    # The f-string family read is covered by the declared prefix.
    assert "bf_ids_3" not in messages


def test_agreeing_writer_and_reader_are_clean(lint):
    report = lint(
        {
            "snapshot.py": '''
            _CORE_SEGMENTS = {
                "offsets": ("q", 1),
            }

            class SnapshotWriter:
                def write(self):
                    return [("offsets", "q", pack())]

            class Snapshot:
                def attach(self):
                    return self.segment("offsets")
            '''
        }
    )
    assert report.findings == []


def test_reads_outside_store_directory_are_ignored(lint):
    # Tests probing a deliberately missing segment live in another
    # directory and must not register as schema readers.
    report = lint(
        {
            "store/snapshot.py": '''
            _CORE_SEGMENTS = {"offsets": ("q", 1)}

            class SnapshotWriter:
                def write(self):
                    return [("offsets", "q", pack())]

            class Snapshot:
                def attach(self):
                    return self.segment("offsets")
            ''',
            "tests/test_snapshot.py": '''
            def test_missing_segment(snapshot):
                snapshot.segment("definitely-not-there")
            ''',
        }
    )
    assert report.findings == []
