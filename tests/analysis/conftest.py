"""Shared fixture: lint an in-memory dict of fixture files in a tmp tree.

Checkers anchor on basenames (``engine.py``, ``protocol.py``…), so a rule
is reproduced by writing a same-named snippet into ``tmp_path`` and
running the real pipeline over it — no imports, no packaging.
"""

import textwrap
from pathlib import Path
from typing import Dict, Optional

import pytest

from repro.analysis import Report, discover_files, run_analysis


@pytest.fixture
def lint(tmp_path):
    """``lint({relpath: source, ...})`` -> :class:`Report` over tmp_path."""

    def _lint(
        files: Dict[str, str], baseline_path: Optional[Path] = None
    ) -> Report:
        for rel, text in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text), encoding="utf-8")
        return run_analysis(
            discover_files([tmp_path]),
            root=tmp_path,
            baseline_path=baseline_path,
        )

    _lint.root = tmp_path
    return _lint


def rules_of(report: Report):
    """The active rule ids of a report, as a sorted list with duplicates."""
    return sorted(f.rule for f in report.findings)
