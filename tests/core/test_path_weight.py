"""Unit tests for the butterfly-core path weight (Def. 6) and its search."""

from __future__ import annotations

import pytest

from repro.core.bc_index import BCIndex
from repro.core.path_weight import (
    PathWeightConfig,
    butterfly_core_shortest_path,
    path_weight,
)
from repro.graph.generators import paper_example_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.traversal import shortest_path


def diamond_graph() -> LabeledGraph:
    """Two parallel s-t routes of equal hop length: one through high-coreness,
    high-butterfly hub vertices, one through a low-coreness pendant vertex."""
    g = LabeledGraph()
    for v in ("s", "hub", "h2", "weak"):
        g.add_vertex(v, label="L")
    for v in ("t", "t2", "t3"):
        g.add_vertex(v, label="R")
    # Left triangle {s, hub, h2} gives those three coreness 2; "weak" hangs
    # off s with coreness 1.
    for u, v in (("s", "hub"), ("s", "h2"), ("hub", "h2"), ("s", "weak")):
        g.add_edge(u, v)
    # Right triangle {t, t2, t3} gives coreness 2 on the right.
    for u, v in (("t", "t2"), ("t", "t3"), ("t2", "t3")):
        g.add_edge(u, v)
    # Cross edges: {hub, h2} x {t, t2} is a butterfly; weak reaches t with a
    # single cross edge (same hop count, no butterfly, low coreness).
    g.add_edge("hub", "t")
    g.add_edge("hub", "t2")
    g.add_edge("h2", "t")
    g.add_edge("h2", "t2")
    g.add_edge("weak", "t")
    return g


class TestPathWeight:
    def test_weight_of_explicit_path(self):
        g = diamond_graph()
        index = BCIndex(g)
        config = PathWeightConfig(gamma1=0.5, gamma2=0.5)
        strong = path_weight(["s", "hub", "t"], index, "L", "R", config)
        weak = path_weight(["s", "weak", "t"], index, "L", "R", config)
        assert strong < weak

    def test_empty_path_is_infinite(self):
        g = diamond_graph()
        index = BCIndex(g)
        assert path_weight([], index, "L", "R") == float("inf")

    def test_gamma_zero_reduces_to_hops(self):
        g = diamond_graph()
        index = BCIndex(g)
        config = PathWeightConfig(gamma1=0.0, gamma2=0.0)
        assert path_weight(["s", "hub", "t"], index, "L", "R", config) == 2
        assert path_weight(["s", "weak", "t"], index, "L", "R", config) == 2

    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError):
            PathWeightConfig(gamma1=-0.1)


class TestWeightedShortestPath:
    def test_prefers_high_coreness_high_butterfly_route(self):
        g = diamond_graph()
        index = BCIndex(g)
        path = butterfly_core_shortest_path(g, "s", "t", index, "L", "R")
        assert path is not None
        assert path[0] == "s" and path[-1] == "t"
        assert path[1] in {"hub", "h2"}
        assert "weak" not in path

    def test_plain_bfs_may_differ(self):
        """The unweighted shortest path can legitimately take the weak route;
        the weighted search must not (this is the whole point of Def. 6)."""
        g = diamond_graph()
        index = BCIndex(g)
        weighted = butterfly_core_shortest_path(g, "s", "t", index, "L", "R")
        unweighted = shortest_path(g, "s", "t")
        assert len(unweighted) == len(weighted)  # same hop count here
        assert weighted[1] in {"hub", "h2"}

    def test_disconnected_returns_none(self):
        g = diamond_graph()
        g.add_vertex("island", label="L")
        index = BCIndex(g)
        assert butterfly_core_shortest_path(g, "s", "island", index, "L", "R") is None

    def test_source_equals_target(self):
        g = diamond_graph()
        index = BCIndex(g)
        path = butterfly_core_shortest_path(g, "s", "s", index, "L", "R")
        assert path == ["s"]

    def test_missing_endpoint_returns_none(self):
        g = diamond_graph()
        index = BCIndex(g)
        assert butterfly_core_shortest_path(g, "s", "ghost", index, "L", "R") is None

    def test_expansion_cap_falls_back_to_bfs(self):
        g = paper_example_graph()
        index = BCIndex(g)
        path = butterfly_core_shortest_path(
            g, "ql", "qr", index, "SE", "UI", max_expansions=1
        )
        assert path is not None
        assert path[0] == "ql" and path[-1] == "qr"

    def test_on_paper_example(self):
        g = paper_example_graph()
        index = BCIndex(g)
        path = butterfly_core_shortest_path(g, "ql", "qr", index, "SE", "UI")
        assert path is not None
        assert path[0] == "ql" and path[-1] == "qr"
        # q_l and q_r are adjacent, and both are butterfly members, so the
        # direct edge is optimal.
        assert len(path) == 2
