"""Unit tests for Algorithm 2 (finding the maximal candidate community G0)."""

from __future__ import annotations

import pytest

from repro.core.bcc_model import BCCParameters, is_bcc
from repro.core.find_g0 import find_g0, maximal_bcc_exists
from repro.eval.instrumentation import SearchInstrumentation
from repro.exceptions import QueryError
from repro.graph.generators import paper_example_graph
from repro.graph.labeled_graph import LabeledGraph


class TestFindG0OnPaperExample:
    def test_returns_figure2_superset(self):
        g = paper_example_graph()
        result = find_g0(g, "ql", "qr", BCCParameters(4, 3, 1))
        assert result is not None
        expected = {"ql", "v1", "v2", "v3", "v4", "v5", "qr", "u1", "u2", "u3"}
        assert set(result.community.vertices()) == expected
        assert result.left_label == "SE"
        assert result.right_label == "UI"

    def test_g0_is_valid_bcc(self):
        g = paper_example_graph()
        params = BCCParameters(4, 3, 1)
        result = find_g0(g, "ql", "qr", params)
        assert is_bcc(result.community, params, ["ql", "qr"])

    def test_parts_are_consistent(self):
        g = paper_example_graph()
        result = find_g0(g, "ql", "qr", BCCParameters(4, 3, 1))
        assert set(result.left.vertices()) <= set(result.community.vertices())
        assert set(result.right.vertices()) <= set(result.community.vertices())
        assert result.bipartite.num_edges() == 4
        assert result.butterfly_degrees["ql"] == 1

    def test_instrumentation_counts_one_butterfly_counting(self):
        g = paper_example_graph()
        inst = SearchInstrumentation()
        find_g0(g, "ql", "qr", BCCParameters(4, 3, 1), instrumentation=inst)
        assert inst.butterfly_counting_calls == 1


class TestFailureModes:
    def test_unsatisfiable_core_returns_none(self):
        g = paper_example_graph()
        assert find_g0(g, "ql", "qr", BCCParameters(10, 3, 1)) is None
        assert find_g0(g, "ql", "qr", BCCParameters(4, 10, 1)) is None

    def test_unsatisfiable_butterfly_returns_none(self):
        g = paper_example_graph()
        assert find_g0(g, "ql", "qr", BCCParameters(4, 3, 50)) is None
        assert not maximal_bcc_exists(g, "ql", "qr", BCCParameters(4, 3, 50))

    def test_same_label_query_rejected(self):
        g = paper_example_graph()
        with pytest.raises(QueryError):
            find_g0(g, "ql", "v1", BCCParameters(1, 1, 1))

    def test_disconnected_query_returns_none(self):
        g = LabeledGraph()
        # Two label-cores with no cross edge between them at all.
        for u, v in (("a", "b"), ("b", "c"), ("a", "c")):
            g.add_edge(u, v)
        for u, v in (("x", "y"), ("y", "z"), ("x", "z")):
            g.add_edge(u, v)
        for v in ("a", "b", "c"):
            g.set_label(v, "L")
        for v in ("x", "y", "z"):
            g.set_label(v, "R")
        assert find_g0(g, "a", "x", BCCParameters(2, 2, 0)) is None

    def test_b_zero_accepts_core_only_communities(self):
        g = LabeledGraph()
        for u, v in (("a", "b"), ("b", "c"), ("a", "c")):
            g.add_edge(u, v)
        for u, v in (("x", "y"), ("y", "z"), ("x", "z")):
            g.add_edge(u, v)
        for v in ("a", "b", "c"):
            g.set_label(v, "L")
        for v in ("x", "y", "z"):
            g.set_label(v, "R")
        g.add_edge("a", "x")  # single cross edge, no butterfly
        result = find_g0(g, "a", "x", BCCParameters(2, 2, 0))
        assert result is not None
        assert result.community.num_vertices() == 6

    def test_require_connected_query_can_be_disabled(self):
        g = LabeledGraph()
        for u, v in (("a", "b"), ("b", "c"), ("a", "c")):
            g.add_edge(u, v)
        for u, v in (("x", "y"), ("y", "z"), ("x", "z")):
            g.add_edge(u, v)
        for v in ("a", "b", "c"):
            g.set_label(v, "L")
        for v in ("x", "y", "z"):
            g.set_label(v, "R")
        result = find_g0(
            g, "a", "x", BCCParameters(2, 2, 0), require_connected_query=False
        )
        assert result is not None
        assert result.community.num_vertices() == 6


class TestMaximality:
    def test_g0_contains_every_qualifying_core_vertex(self):
        """G0 must be maximal: every SE vertex of the connected 4-core and UI
        vertex of the connected 3-core around the query belongs to it."""
        g = paper_example_graph()
        result = find_g0(g, "ql", "qr", BCCParameters(2, 2, 1))
        # With k1 = k2 = 2 the candidate grows beyond the Figure 2 community.
        assert result is not None
        assert result.community.num_vertices() >= 10
