"""Unit tests for k-truss machinery (CTC baseline substrate)."""

from __future__ import annotations

import itertools

from repro.core.ktruss import (
    edge_support,
    is_k_truss,
    k_truss,
    k_truss_containing,
    k_truss_edges,
    k_truss_vertices,
    maintain_k_truss,
    max_truss_value_containing,
    truss_decomposition,
)
from repro.graph.labeled_graph import LabeledGraph


def clique(n: int, offset: int = 0) -> LabeledGraph:
    g = LabeledGraph()
    for i in range(offset, offset + n):
        g.add_vertex(i, label="A")
    for u, v in itertools.combinations(range(offset, offset + n), 2):
        g.add_edge(u, v)
    return g


def clique_with_pendant() -> LabeledGraph:
    g = clique(4)
    g.add_vertex(9, label="A")
    g.add_edge(3, 9)
    return g


class TestEdgeSupport:
    def test_clique_support(self):
        g = clique(4)
        support = edge_support(g)
        assert all(value == 2 for value in support.values())

    def test_pendant_edge_support_zero(self):
        g = clique_with_pendant()
        support = edge_support(g)
        assert support[frozenset((3, 9))] == 0

    def test_triangle_free_graph(self):
        g = LabeledGraph(edges=[(0, 1), (1, 2), (2, 3)])
        assert all(value == 0 for value in edge_support(g).values())


class TestTrussDecomposition:
    def test_clique_trussness(self):
        g = clique(5)
        trussness = truss_decomposition(g)
        assert all(value == 5 for value in trussness.values())

    def test_mixed_graph(self):
        g = clique_with_pendant()
        trussness = truss_decomposition(g)
        assert trussness[frozenset((0, 1))] == 4
        assert trussness[frozenset((3, 9))] == 2

    def test_trussness_consistent_with_k_truss_membership(self):
        g = clique_with_pendant()
        trussness = truss_decomposition(g)
        for edge, k in trussness.items():
            assert edge in k_truss_edges(g, k)
            assert edge not in k_truss_edges(g, k + 1)


class TestKTrussExtraction:
    def test_k_truss_of_clique(self):
        g = clique(5)
        truss = k_truss(g, 5)
        assert truss.num_vertices() == 5
        assert truss.num_edges() == 10
        assert is_k_truss(truss, 5)

    def test_pendant_dropped_from_3_truss(self):
        g = clique_with_pendant()
        assert k_truss_vertices(g, 3) == {0, 1, 2, 3}
        assert 9 not in k_truss_vertices(g, 4)

    def test_low_k_keeps_everything(self):
        g = clique_with_pendant()
        assert k_truss_edges(g, 2) == {frozenset(e) for e in g.edges()}

    def test_k_truss_containing_query(self):
        g = clique_with_pendant()
        result = k_truss_containing(g, 4, [0, 3])
        assert result is not None
        assert set(result.vertices()) == {0, 1, 2, 3}
        assert k_truss_containing(g, 4, [0, 9]) is None

    def test_k_truss_containing_requires_connectivity(self):
        g = clique(4)
        g.merge(clique(4, offset=10))
        assert k_truss_containing(g, 4, [0, 10]) is None

    def test_is_k_truss(self):
        assert is_k_truss(clique(4), 4)
        assert not is_k_truss(clique_with_pendant(), 3)
        assert is_k_truss(LabeledGraph(edges=[(0, 1)]), 2)


class TestMaxTrussValue:
    def test_within_one_clique(self):
        g = clique(5)
        assert max_truss_value_containing(g, [0, 4]) == 5

    def test_across_weakly_connected_parts(self):
        g = clique(4)
        g.merge(clique(4, offset=10))
        g.add_edge(0, 10)
        value = max_truss_value_containing(g, [0, 10])
        assert value == 2

    def test_missing_query_vertex(self):
        assert max_truss_value_containing(clique(3), [0, 99]) == 0


class TestMaintenance:
    def test_removing_vertex_prunes_truss(self):
        g = clique(5)
        removed = maintain_k_truss(g, 5, [0])
        # Without vertex 0 no edge has support 3 anymore, so everything goes.
        assert removed == {0, 1, 2, 3, 4}
        assert g.num_vertices() == 0

    def test_removal_keeps_surviving_truss(self):
        g = clique(5)
        maintain_k_truss(g, 4, [0])
        assert set(g.vertices()) == {1, 2, 3, 4}
        assert is_k_truss(g, 4)

    def test_removal_of_absent_vertex(self):
        g = clique(4)
        removed = maintain_k_truss(g, 3, [99])
        assert 99 not in removed
        assert g.num_vertices() == 4
