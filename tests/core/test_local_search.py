"""Unit tests for Algorithm 8 (L2P-BCC index-based local exploration)."""

from __future__ import annotations

import pytest

from repro.core.bc_index import BCIndex
from repro.core.bcc_model import is_bcc
from repro.core.local_search import expand_candidate_graph, l2p_bcc_search
from repro.core.lp_bcc import lp_bcc_search
from repro.eval.queries import QuerySpec, generate_query_pairs
from repro.graph.generators import paper_example_graph


class TestExpandCandidateGraph:
    def test_expansion_respects_label_and_coreness_filters(self):
        g = paper_example_graph()
        index = BCIndex(g)
        candidate = expand_candidate_graph(
            g, ["ql", "qr"], index, "SE", "UI", k_left=4, k_right=3, eta=100
        )
        labels = {g.label(v) for v in candidate.vertices()}
        assert labels <= {"SE", "UI"}
        for v in candidate.vertices():
            if v in ("ql", "qr"):
                continue
            if g.label(v) == "SE":
                assert index.coreness(v) >= 4
            else:
                assert index.coreness(v) >= 3

    def test_eta_bounds_size(self):
        g = paper_example_graph()
        index = BCIndex(g)
        small = expand_candidate_graph(
            g, ["ql", "qr"], index, "SE", "UI", k_left=0, k_right=0, eta=3
        )
        large = expand_candidate_graph(
            g, ["ql", "qr"], index, "SE", "UI", k_left=0, k_right=0, eta=100
        )
        assert small.num_vertices() <= large.num_vertices()
        assert small.num_vertices() >= 2  # the seed path always survives

    def test_seed_path_always_included(self):
        g = paper_example_graph()
        index = BCIndex(g)
        candidate = expand_candidate_graph(
            g, ["ql", "qr"], index, "SE", "UI", k_left=99, k_right=99, eta=10
        )
        assert "ql" in candidate and "qr" in candidate


class TestL2PBCCSearch:
    def test_paper_example_community(self):
        g = paper_example_graph()
        result = l2p_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1)
        expected = {"ql", "v1", "v2", "v3", "v4", "v5", "qr", "u1", "u2", "u3"}
        assert result is not None
        assert result.vertices == expected
        assert is_bcc(result.community, result.parameters, ["ql", "qr"])

    def test_automatic_parameters(self):
        g = paper_example_graph()
        result = l2p_bcc_search(g, "ql", "qr", b=1)
        assert result is not None
        assert result.parameters.k1 >= 1
        assert result.parameters.k2 >= 1
        assert "ql" in result.vertices and "qr" in result.vertices

    def test_prebuilt_index_reused(self):
        g = paper_example_graph()
        index = BCIndex(g)
        result = l2p_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1, index=index)
        assert result is not None
        # The shared index has cached the SE/UI butterfly degrees.
        assert len(index.cached_label_pairs()) >= 1

    def test_unbuilt_index_is_built(self):
        g = paper_example_graph()
        index = BCIndex(g, build=False)
        result = l2p_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1, index=index)
        assert result is not None
        assert index.is_built()

    def test_unsatisfiable_query_returns_none(self):
        g = paper_example_graph()
        assert l2p_bcc_search(g, "ql", "qr", k1=4, k2=3, b=99) is None

    def test_small_eta_still_finds_community_via_fallback(self):
        g = paper_example_graph()
        result = l2p_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1, eta=2)
        assert result is not None
        assert is_bcc(result.community, result.parameters, ["ql", "qr"])

    def test_candidate_statistics_recorded(self):
        g = paper_example_graph()
        result = l2p_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1)
        assert "candidate_vertices" in result.statistics


class TestQualityAgainstGlobalSearch:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_comparable_quality_on_baidu_tiny(self, tiny_baidu_bundle, seed):
        """L2P-BCC works on a local candidate, so it may differ from the
        global LP-BCC answer, but for ground-truth project queries it must
        still return a community overlapping the ground truth."""
        from repro.eval.metrics import f1_score

        bundle = tiny_baidu_bundle
        pairs = generate_query_pairs(bundle, QuerySpec(count=2), seed=seed)
        for q_left, q_right in pairs:
            truth = bundle.community_for_query(q_left, q_right)
            if truth is None:
                continue
            local = l2p_bcc_search(bundle.graph, q_left, q_right, b=1)
            global_ = lp_bcc_search(bundle.graph, q_left, q_right, b=1)
            assert local is not None
            assert f1_score(local.vertices, truth.members) > 0.3
            if global_ is not None:
                assert (
                    f1_score(local.vertices, truth.members)
                    >= f1_score(global_.vertices, truth.members) - 0.35
                )
