"""Unit tests for butterfly counting (Algorithm 3 and variants)."""

from __future__ import annotations

import random

import pytest

from repro.core.butterfly import (
    brute_force_butterfly_degrees,
    butterfly_degree_of,
    butterfly_degrees,
    butterfly_degrees_priority,
    enumerate_butterflies,
    max_butterfly_degree_per_side,
    total_butterflies,
    vertices_with_butterfly_at_least,
)
from repro.graph.bipartite import BipartiteView, extract_label_bipartite
from repro.graph.generators import paper_small_example_graph, random_bipartite_graph


def biclique(left_size: int, right_size: int) -> BipartiteView:
    left = [f"l{i}" for i in range(left_size)]
    right = [f"r{i}" for i in range(right_size)]
    edges = [(u, v) for u in left for v in right]
    return BipartiteView(left, right, edges)


def single_butterfly() -> BipartiteView:
    return biclique(2, 2)


class TestButterflyDegrees:
    def test_single_butterfly(self):
        view = single_butterfly()
        degrees = butterfly_degrees(view)
        assert all(value == 1 for value in degrees.values())
        assert total_butterflies(view) == 1

    def test_biclique_counts(self):
        """In a complete (m x n) biclique each left vertex lies in (m-1 choose 1)*(n choose 2) butterflies."""
        view = biclique(3, 4)
        degrees = butterfly_degrees(view)
        expected_left = (3 - 1) * (4 * 3 // 2)
        expected_right = (4 - 1) * (3 * 2 // 2)
        for i in range(3):
            assert degrees[f"l{i}"] == expected_left
        for j in range(4):
            assert degrees[f"r{j}"] == expected_right
        assert total_butterflies(view) == 3 * (4 * 3 // 2)  # C(3,2)*C(4,2)

    def test_no_butterfly_in_a_star(self):
        view = BipartiteView(["c"], ["x", "y", "z"], [("c", "x"), ("c", "y"), ("c", "z")])
        assert all(value == 0 for value in butterfly_degrees(view).values())
        assert total_butterflies(view) == 0

    def test_empty_view(self):
        view = BipartiteView([], [])
        assert butterfly_degrees(view) == {}
        assert total_butterflies(view) == 0

    def test_figure3_values(self):
        graph = paper_small_example_graph()
        view = extract_label_bipartite(graph, "L", "R")
        degrees = butterfly_degrees(view)
        assert degrees["v1"] == 6
        assert degrees["v3"] == 6
        assert degrees["u2"] == degrees["u3"] == degrees["u5"] == degrees["u6"] == 3
        assert degrees["ql"] == 0
        assert total_butterflies(view) == 6

    def test_butterfly_degree_of_single_vertex(self):
        view = single_butterfly()
        assert butterfly_degree_of(view, "l0") == 1
        assert butterfly_degree_of(view, "not-there") == 0


class TestAgreementBetweenImplementations:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_graphs_match_brute_force(self, seed):
        rng = random.Random(seed)
        left = [f"l{i}" for i in range(6)]
        right = [f"r{i}" for i in range(7)]
        edges = [(u, v) for u in left for v in right if rng.random() < 0.4]
        view = BipartiteView(left, right, edges)
        reference = brute_force_butterfly_degrees(view)
        assert butterfly_degrees(view) == reference
        assert butterfly_degrees_priority(view) == reference

    def test_priority_variant_on_figure3(self):
        graph = paper_small_example_graph()
        view = extract_label_bipartite(graph, "L", "R")
        assert butterfly_degrees_priority(view) == butterfly_degrees(view)

    def test_total_consistent_with_degrees(self):
        view = biclique(3, 3)
        degrees = butterfly_degrees(view)
        assert sum(degrees.values()) == 4 * total_butterflies(view)


class TestEnumerationAndHelpers:
    def test_enumerate_butterflies_single(self):
        view = single_butterfly()
        butterflies = list(enumerate_butterflies(view))
        assert len(butterflies) == 1
        l1, l2, r1, r2 = butterflies[0]
        assert {l1, l2} == {"l0", "l1"}
        assert {r1, r2} == {"r0", "r1"}

    def test_enumeration_count_matches_total(self):
        view = biclique(3, 4)
        assert len(list(enumerate_butterflies(view))) == total_butterflies(view)

    def test_max_per_side(self):
        graph = paper_small_example_graph()
        view = extract_label_bipartite(graph, "L", "R")
        max_left, max_right = max_butterfly_degree_per_side(view)
        assert max_left == 6
        assert max_right == 3

    def test_vertices_with_threshold(self):
        graph = paper_small_example_graph()
        view = extract_label_bipartite(graph, "L", "R")
        result = vertices_with_butterfly_at_least(view, 3)
        assert result["left"] == {"v1", "v3"}
        assert result["right"] == {"u2", "u3", "u5", "u6"}

    def test_degrees_after_vertex_removal(self):
        view = biclique(3, 3)
        before = butterfly_degrees(view)["l0"]
        view.remove_vertex("l2")
        after = butterfly_degrees(view)["l0"]
        assert after < before


class TestOnLabeledGraphExtraction:
    def test_cross_edges_only(self, simple_two_label_graph):
        view = extract_label_bipartite(simple_two_label_graph, "L", "R")
        degrees = butterfly_degrees(view)
        assert degrees["a"] == 1
        assert degrees["b"] == 1
        assert degrees["c"] == 0
        assert total_butterflies(view) == 1
