"""Unit tests for the multi-labeled BCC extension (Section 7, Algorithm 9)."""

from __future__ import annotations

import pytest

from repro.core.multilabel import (
    cross_group_connected,
    find_mbcc_candidate,
    mbcc_search,
)
from repro.datasets import generate_baidu_network
from repro.exceptions import QueryError
from repro.graph.generators import paper_example_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.traversal import are_connected


def three_group_graph() -> LabeledGraph:
    """Three label groups A-B-C where A-B and B-C interact but A-C do not."""
    g = LabeledGraph()
    groups = {
        "A": ["a0", "a1", "a2"],
        "B": ["b0", "b1", "b2"],
        "C": ["c0", "c1", "c2"],
    }
    for label, members in groups.items():
        for v in members:
            g.add_vertex(v, label=label)
        g.add_edge(members[0], members[1])
        g.add_edge(members[1], members[2])
        g.add_edge(members[0], members[2])
    # Butterfly between A and B, and between B and C; nothing between A and C.
    for u in ("a0", "a1"):
        for v in ("b0", "b1"):
            g.add_edge(u, v)
    for u in ("b0", "b2"):
        for v in ("c0", "c1"):
            g.add_edge(u, v)
    return g


class TestCrossGroupConnectivity:
    def test_connected_via_path(self):
        assert cross_group_connected(["A", "B", "C"], [("A", "B"), ("B", "C")])

    def test_disconnected(self):
        assert not cross_group_connected(["A", "B", "C"], [("A", "B")])

    def test_single_label_trivially_connected(self):
        assert cross_group_connected(["A"], [])

    def test_edges_with_unknown_labels_ignored(self):
        assert cross_group_connected(["A", "B"], [("A", "B"), ("X", "Y")])


class TestCandidate:
    def test_candidate_on_three_groups(self):
        g = three_group_graph()
        candidate = find_mbcc_candidate(
            g, ["a0", "b0", "c0"], {"A": 2, "B": 2, "C": 2}, b=1
        )
        assert candidate is not None
        assert candidate.num_vertices() == 9
        assert are_connected(candidate, ["a0", "b0", "c0"])

    def test_candidate_fails_when_a_pair_is_not_connected(self):
        g = three_group_graph()
        # Remove the B-C butterflies so the label interaction graph splits.
        for u in ("b0", "b2"):
            for v in ("c0", "c1"):
                g.remove_edge(u, v)
        candidate = find_mbcc_candidate(
            g, ["a0", "b0", "c0"], {"A": 2, "B": 2, "C": 2}, b=1
        )
        assert candidate is None

    def test_candidate_fails_when_core_impossible(self):
        g = three_group_graph()
        candidate = find_mbcc_candidate(
            g, ["a0", "b0", "c0"], {"A": 5, "B": 2, "C": 2}, b=1
        )
        assert candidate is None


class TestMBCCSearch:
    def test_two_label_query_matches_bcc_model(self):
        """With m = 2 the mBCC definition coincides with the BCC (Def. 8)."""
        g = paper_example_graph()
        result = mbcc_search(g, ["ql", "qr"], b=1)
        expected = {"ql", "v1", "v2", "v3", "v4", "v5", "qr", "u1", "u2", "u3"}
        assert result is not None
        assert result.vertices == expected

    def test_three_label_query(self):
        g = three_group_graph()
        result = mbcc_search(g, ["a0", "b0", "c0"], core_parameters=[2, 2, 2], b=1)
        assert result is not None
        assert set(result.groups) == {"A", "B", "C"}
        assert all(len(members) >= 3 for members in result.groups.values())
        assert len(result.interaction_edges) >= 2

    def test_duplicate_labels_rejected(self):
        g = paper_example_graph()
        with pytest.raises(QueryError):
            mbcc_search(g, ["ql", "v1"])

    def test_single_query_rejected(self):
        g = paper_example_graph()
        with pytest.raises(QueryError):
            mbcc_search(g, ["ql"])

    def test_unsatisfiable_butterfly_returns_none(self):
        g = three_group_graph()
        assert mbcc_search(g, ["a0", "b0", "c0"], core_parameters=[2, 2, 2], b=99) is None

    def test_result_statistics_and_distance(self):
        g = three_group_graph()
        result = mbcc_search(g, ["a0", "b0", "c0"], core_parameters=[2, 2, 2], b=1)
        assert result.query_distance >= 1
        assert result.num_edges() > 0
        assert "iterations" in result.statistics

    def test_on_multilabel_baidu_projects(self):
        bundle = generate_baidu_network("tiny", seed=5, project_labels=3)
        community = bundle.cross_group_communities()[0]
        # Build a query with one vertex per label of the project.
        by_label = {}
        for v in community.members:
            by_label.setdefault(bundle.graph.label(v), v)
        query = list(by_label.values())[:3]
        result = mbcc_search(bundle.graph, query, b=1, max_iterations=100)
        assert result is not None
        assert set(query) <= result.vertices
