"""Unit tests for Algorithm 1 (Online-BCC greedy search)."""

from __future__ import annotations

import pytest

from repro.core.bcc_model import BCCParameters, is_bcc
from repro.core.online_bcc import online_bcc_search
from repro.eval.instrumentation import SearchInstrumentation
from repro.exceptions import QueryError
from repro.graph.generators import paper_example_graph
from repro.graph.traversal import diameter


class TestPaperExample:
    def test_returns_figure2_community(self):
        g = paper_example_graph()
        result = online_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1)
        assert result is not None
        expected = {"ql", "v1", "v2", "v3", "v4", "v5", "qr", "u1", "u2", "u3"}
        assert result.vertices == expected

    def test_result_is_valid_bcc_containing_query(self):
        g = paper_example_graph()
        result = online_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1)
        assert is_bcc(result.community, result.parameters, ["ql", "qr"])

    def test_default_parameters_from_coreness(self):
        g = paper_example_graph()
        result = online_bcc_search(g, "ql", "qr", b=1)
        assert result.parameters.k1 == 4
        assert result.parameters.k2 == 3

    def test_query_distance_recorded(self):
        g = paper_example_graph()
        result = online_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1)
        assert result.query_distance == 2

    def test_junior_biased_query_finds_same_community(self):
        """Section 3.3: leader-biased and junior-biased queries give the same
        underlying community (here with explicit matching parameters)."""
        g = paper_example_graph()
        leaders = online_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1)
        juniors = online_bcc_search(g, "v1", "u1", k1=4, k2=3, b=1)
        assert juniors is not None
        assert juniors.vertices == leaders.vertices


class TestNoAnswer:
    def test_unsatisfiable_parameters(self):
        g = paper_example_graph()
        assert online_bcc_search(g, "ql", "qr", k1=9, k2=3, b=1) is None
        assert online_bcc_search(g, "ql", "qr", k1=4, k2=3, b=99) is None

    def test_same_label_query_rejected(self):
        g = paper_example_graph()
        with pytest.raises(QueryError):
            online_bcc_search(g, "ql", "v1")


class TestApproximationGuarantee:
    def test_diameter_within_twice_g0_optimal(self, tiny_baidu_bundle):
        """The returned community's diameter is at most twice the smallest
        diameter of any intermediate candidate, which upper-bounds the optimum
        reachable by the peeling sequence (Theorem 3 sanity check)."""
        bundle = tiny_baidu_bundle
        q_left, q_right = bundle.default_query()
        result = online_bcc_search(bundle.graph, q_left, q_right, b=1)
        assert result is not None
        # dist(O, Q) <= diam(O) <= 2 * dist(O, Q) always holds for the answer.
        assert result.query_distance <= diameter(result.community)
        assert diameter(result.community) <= 2 * result.query_distance

    def test_result_diameter_not_worse_than_g0(self):
        from repro.core.find_g0 import find_g0

        g = paper_example_graph()
        params = BCCParameters(4, 3, 1)
        g0 = find_g0(g, "ql", "qr", params)
        result = online_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1)
        assert diameter(result.community) <= diameter(g0.community)


class TestOptions:
    def test_single_deletion_matches_bulk_on_small_graph(self):
        g = paper_example_graph()
        bulk = online_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1, bulk_deletion=True)
        single = online_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1, bulk_deletion=False)
        assert bulk.vertices == single.vertices

    def test_max_iterations_respected(self, tiny_baidu_bundle):
        bundle = tiny_baidu_bundle
        q_left, q_right = bundle.default_query()
        result = online_bcc_search(
            bundle.graph, q_left, q_right, b=1, max_iterations=1
        )
        assert result is not None
        assert result.iterations <= 1

    def test_instrumentation_collected(self):
        g = paper_example_graph()
        inst = SearchInstrumentation()
        online_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1, instrumentation=inst)
        assert inst.butterfly_counting_calls >= 1
        assert inst.query_distance_seconds >= 0.0

    def test_statistics_embedded_in_result(self):
        g = paper_example_graph()
        result = online_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1)
        assert "butterfly_counting_calls" in result.statistics
