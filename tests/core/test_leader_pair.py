"""Unit tests for Algorithms 6 and 7 (leader pair identification and update)."""

from __future__ import annotations

import random

import pytest

from repro.core.butterfly import butterfly_degrees
from repro.core.leader_pair import (
    Leader,
    LeaderPairTracker,
    identify_leader,
    identify_leader_pair,
    updated_leader_degree,
)
from repro.eval.instrumentation import SearchInstrumentation
from repro.graph.bipartite import BipartiteView, extract_label_bipartite
from repro.graph.generators import paper_small_example_graph, random_bipartite_graph


def figure3_setup():
    graph = paper_small_example_graph()
    left = graph.label_induced_subgraph("L")
    right = graph.label_induced_subgraph("R")
    bipartite = extract_label_bipartite(graph, "L", "R")
    degrees = butterfly_degrees(bipartite)
    return graph, left, right, bipartite, degrees


class TestIdentifyLeader:
    def test_example5_left_leader_is_v1_or_v3(self):
        _, left, _, _, degrees = figure3_setup()
        leader = identify_leader(left, "ql", degrees, b=1, rho=3)
        # Example 5 picks v1; v3 is symmetric (same degree, same distance).
        assert leader.vertex in {"v1", "v3"}
        assert leader.butterfly_degree == 6

    def test_example5_right_leader(self):
        _, _, right, _, degrees = figure3_setup()
        leader = identify_leader(right, "qr", degrees, b=1, rho=3)
        assert leader.vertex in {"u2", "u3", "u5", "u6"}
        assert leader.butterfly_degree == 3

    def test_query_returned_when_it_has_large_degree(self):
        _, left, _, _, degrees = figure3_setup()
        boosted = dict(degrees)
        boosted["ql"] = 100
        leader = identify_leader(left, "ql", boosted, b=1, rho=2)
        assert leader.vertex == "ql"

    def test_query_returned_when_no_candidate_qualifies(self):
        _, left, _, _, _ = figure3_setup()
        zero = {v: 0 for v in left.vertices()}
        leader = identify_leader(left, "ql", zero, b=1, rho=2)
        assert leader.vertex == "ql"
        assert leader.butterfly_degree == 0

    def test_identify_leader_pair(self):
        _, left, right, _, degrees = figure3_setup()
        left_leader, right_leader = identify_leader_pair(
            left, right, "ql", "qr", degrees, b=1, rho=3
        )
        assert left_leader.vertex in {"v1", "v3"}
        assert right_leader.vertex in {"u2", "u3", "u5", "u6"}


class TestUpdatedLeaderDegree:
    def test_example6_same_label_update(self):
        """Deleting u6 lowers chi(u2) from 3 to 2 (Example 6, part 1)."""
        _, _, _, bipartite, degrees = figure3_setup()
        loss = updated_leader_degree(bipartite, "u2", True, "u6")
        assert loss == 1
        assert degrees["u2"] - loss == 2

    def test_example6_cross_label_update(self):
        """Deleting u6 lowers chi(v1) from 6 to 3 (Example 6, part 2)."""
        _, _, _, bipartite, degrees = figure3_setup()
        loss = updated_leader_degree(bipartite, "v1", False, "u6")
        assert loss == 3
        assert degrees["v1"] - loss == 3

    def test_no_loss_when_not_adjacent_cross_side(self):
        _, _, _, bipartite, _ = figure3_setup()
        # u9 has no cross edges, so deleting it cannot change any chi.
        assert updated_leader_degree(bipartite, "v1", False, "u9") == 0

    def test_no_loss_for_missing_vertices(self):
        _, _, _, bipartite, _ = figure3_setup()
        assert updated_leader_degree(bipartite, "v1", True, "nope") == 0
        assert updated_leader_degree(bipartite, "v1", False, "v1") == 0

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_update_matches_recount_on_random_graphs(self, seed):
        rng = random.Random(seed)
        graph = random_bipartite_graph(
            [f"l{i}" for i in range(6)],
            [f"r{i}" for i in range(6)],
            0.5,
            seed=seed,
        )
        bipartite = extract_label_bipartite(graph, "L", "R")
        degrees = butterfly_degrees(bipartite)
        vertices = [v for v in bipartite.vertices()]
        leader = max(vertices, key=lambda v: degrees.get(v, 0))
        deletable = [v for v in vertices if v != leader]
        victim = rng.choice(deletable)
        same_side = (victim in bipartite.left()) == (leader in bipartite.left())
        loss = updated_leader_degree(bipartite, leader, same_side, victim)
        bipartite.remove_vertex(victim)
        recounted = butterfly_degrees(bipartite).get(leader, 0)
        assert degrees[leader] - loss == recounted


class TestLeaderPairTracker:
    def test_tracker_keeps_leaders_consistent_with_recount(self):
        graph, left, right, bipartite, degrees = figure3_setup()
        tracker = LeaderPairTracker(bipartite.copy(), degrees, "ql", "qr", b=1)
        left_leader, right_leader = identify_leader_pair(
            left, right, "ql", "qr", degrees, b=1
        )
        tracker.set_leaders(left_leader, right_leader)
        tracker.remove_vertices(["u6"])
        tracked_left, tracked_right = tracker.leaders()
        fresh = butterfly_degrees(tracker.bipartite)
        assert tracked_left.butterfly_degree == fresh.get(tracked_left.vertex, 0)
        assert tracked_right.butterfly_degree == fresh.get(tracked_right.vertex, 0)

    def test_revalidate_without_recount_when_leaders_hold(self):
        graph, left, right, bipartite, degrees = figure3_setup()
        inst = SearchInstrumentation()
        tracker = LeaderPairTracker(
            bipartite.copy(), degrees, "ql", "qr", b=1, instrumentation=inst
        )
        assert tracker.revalidate()
        assert tracker.full_recounts == 0
        assert inst.butterfly_counting_calls == 0

    def test_revalidate_recounts_when_leader_deleted(self):
        graph, left, right, bipartite, degrees = figure3_setup()
        tracker = LeaderPairTracker(bipartite.copy(), degrees, "ql", "qr", b=1)
        left_leader, _ = tracker.leaders()
        tracker.remove_vertices([left_leader.vertex])
        # Every butterfly of Figure 3 needs both v1 and v3 on the left, so
        # deleting the left leader destroys them all: revalidation must run a
        # full recount (Algorithm 3) and then report failure.
        assert not tracker.revalidate()
        assert tracker.full_recounts == 1

    def test_revalidate_recovers_with_alternative_leader(self):
        """When the tracked leader dies but another qualifying vertex exists,
        the recount installs it and revalidation succeeds."""
        view = BipartiteView(
            ["l0", "l1", "l2"],
            ["r0", "r1"],
            [(u, v) for u in ("l0", "l1", "l2") for v in ("r0", "r1")],
        )
        degrees = butterfly_degrees(view)
        tracker = LeaderPairTracker(view.copy(), degrees, "l0", "r0", b=1)
        left_leader, _ = tracker.leaders()
        tracker.remove_vertices([left_leader.vertex])
        assert tracker.revalidate()
        assert tracker.full_recounts == 1
        new_left, new_right = tracker.leaders()
        assert new_left.butterfly_degree >= 1
        assert new_right.butterfly_degree >= 1

    def test_revalidate_fails_when_no_leader_possible(self):
        graph, left, right, bipartite, degrees = figure3_setup()
        tracker = LeaderPairTracker(bipartite.copy(), degrees, "ql", "qr", b=1)
        # Remove every right-side vertex that participates in butterflies.
        tracker.remove_vertices(["u2", "u3", "u5", "u6"])
        assert not tracker.revalidate()

    def test_leader_pair_accessor(self):
        graph, left, right, bipartite, degrees = figure3_setup()
        tracker = LeaderPairTracker(bipartite.copy(), degrees, "ql", "qr", b=1)
        pair = tracker.leader_pair()
        assert pair is not None
        assert len(pair) == 2
