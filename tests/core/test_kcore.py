"""Unit tests for k-core decomposition, extraction and maintenance."""

from __future__ import annotations

import itertools

import pytest

from repro.core.kcore import (
    core_decomposition,
    degeneracy,
    is_k_core,
    k_core,
    k_core_containing,
    k_core_vertices,
    maintain_k_core,
    max_core_value_containing,
)
from repro.exceptions import VertexNotFoundError
from repro.graph.labeled_graph import LabeledGraph


def clique(n: int) -> LabeledGraph:
    g = LabeledGraph()
    for i in range(n):
        g.add_vertex(i, label="A")
    for u, v in itertools.combinations(range(n), 2):
        g.add_edge(u, v)
    return g


def clique_with_tail() -> LabeledGraph:
    """A 4-clique {0,1,2,3} with a path tail 3-4-5."""
    g = clique(4)
    g.add_vertex(4, label="A")
    g.add_vertex(5, label="A")
    g.add_edge(3, 4)
    g.add_edge(4, 5)
    return g


class TestCoreDecomposition:
    def test_clique_coreness(self):
        coreness = core_decomposition(clique(5))
        assert all(value == 4 for value in coreness.values())

    def test_clique_with_tail(self):
        coreness = core_decomposition(clique_with_tail())
        assert coreness[0] == 3
        assert coreness[3] == 3
        assert coreness[4] == 1
        assert coreness[5] == 1

    def test_empty_graph(self):
        assert core_decomposition(LabeledGraph()) == {}

    def test_isolated_vertex_coreness_zero(self):
        g = LabeledGraph()
        g.add_vertex("alone", label="A")
        assert core_decomposition(g)["alone"] == 0

    def test_path_coreness_is_one(self):
        g = LabeledGraph(edges=[(0, 1), (1, 2), (2, 3)])
        assert set(core_decomposition(g).values()) == {1}

    def test_coreness_vs_peeling_definition(self):
        """Coreness k means the vertex survives in the k-core but not the (k+1)-core."""
        g = clique_with_tail()
        coreness = core_decomposition(g)
        for v, k in coreness.items():
            assert v in k_core_vertices(g, k)
            assert v not in k_core_vertices(g, k + 1)

    def test_degeneracy(self):
        assert degeneracy(clique(6)) == 5
        assert degeneracy(LabeledGraph()) == 0


class TestKCoreExtraction:
    def test_k_core_vertices_of_clique_with_tail(self):
        g = clique_with_tail()
        assert k_core_vertices(g, 3) == {0, 1, 2, 3}
        assert k_core_vertices(g, 1) == set(g.vertices())
        assert k_core_vertices(g, 4) == set()

    def test_k_core_zero_returns_everything(self):
        g = clique_with_tail()
        assert k_core_vertices(g, 0) == set(g.vertices())

    def test_k_core_graph_properties(self):
        g = clique_with_tail()
        core = k_core(g, 3)
        assert is_k_core(core, 3)
        assert core.num_vertices() == 4

    def test_k_core_containing_query(self):
        g = clique_with_tail()
        core = k_core_containing(g, 3, 0)
        assert core is not None
        assert set(core.vertices()) == {0, 1, 2, 3}
        assert k_core_containing(g, 3, 5) is None

    def test_k_core_containing_missing_vertex(self):
        with pytest.raises(VertexNotFoundError):
            k_core_containing(clique(3), 1, 99)

    def test_k_core_containing_returns_connected_component(self):
        g = clique(4)
        # Second disjoint 4-clique labelled 10..13.
        for u, v in itertools.combinations(range(10, 14), 2):
            g.add_edge(u, v)
        core = k_core_containing(g, 3, 0)
        assert set(core.vertices()) == {0, 1, 2, 3}


class TestMaintenance:
    def test_cascade_removal(self):
        g = clique_with_tail()
        removed = maintain_k_core(g, 3, [0])
        # Removing one clique vertex drops the others below degree 3 and the
        # tail never had degree 3.
        assert removed == {0, 1, 2, 3, 4, 5} or removed == {0, 1, 2, 3}
        assert all(g.degree(v) >= 3 for v in g.vertices())

    def test_removal_of_absent_vertex_is_noop(self):
        g = clique(4)
        removed = maintain_k_core(g, 3, [99])
        assert removed == set()
        assert g.num_vertices() == 4

    def test_no_cascade_when_degrees_stay_high(self):
        g = clique(5)
        removed = maintain_k_core(g, 3, [0])
        assert removed == {0}
        assert g.num_vertices() == 4
        assert is_k_core(g, 3)

    def test_maintenance_matches_recomputation(self):
        g = clique_with_tail()
        expected = k_core_vertices(clique_with_tail().induced_subgraph(
            set(clique_with_tail().vertices()) - {3}
        ), 2)
        maintain_k_core(g, 2, [3])
        assert set(g.vertices()) == expected


class TestHelpers:
    def test_max_core_value_containing(self):
        g = clique_with_tail()
        assert max_core_value_containing(g, 0) == 3
        assert max_core_value_containing(g, 5) == 1
        with pytest.raises(VertexNotFoundError):
            max_core_value_containing(g, 99)

    def test_is_k_core(self):
        assert is_k_core(clique(4), 3)
        assert not is_k_core(clique_with_tail(), 2)
