"""Randomized parity suite: CSR kernels ≡ object-graph kernels ≡ brute force.

The CSR fast path (:mod:`repro.graph.csr`) must be an exact drop-in for the
object-graph kernels — not approximately, but value-for-value.  This suite
drives all three butterfly/k-core/BFS kernels over 220 random graphs
(80 bipartite + 70 labeled + 70 traversal instances, plus edge cases) and
asserts exact equality, including the brute-force O(n⁴) butterfly reference
on the smaller instances, disconnected graphs, and single-label graphs
where one bipartite side is empty.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.api import SearchConfig
from repro.core.butterfly import (
    brute_force_butterfly_degrees,
    butterfly_degrees,
    butterfly_degrees_priority,
    enumerate_butterflies,
    max_butterfly_degree_per_side,
)
from repro.core.kcore import core_decomposition, k_core_vertices
from repro.core.online_bcc import online_bcc_search
from repro.core.query_distance import QueryDistanceTracker
from repro.graph.bipartite import extract_label_bipartite
from repro.graph.csr import (
    CSRBipartiteView,
    CSRGraph,
    csr_bfs_distances,
    csr_butterfly_degrees,
    csr_butterfly_degrees_two_sided,
    csr_core_decomposition,
    csr_k_core_alive,
    csr_multi_source_bfs,
)
from repro.graph.generators import (
    planted_partition_graph,
    random_bipartite_graph,
    random_labeled_graph,
)
from repro.graph.traversal import bfs_distances, multi_source_bfs

BUTTERFLY_SEEDS = range(80)
KCORE_SEEDS = range(70)
BFS_SEEDS = range(70)


def _random_bipartite(seed: int):
    rng = random.Random(seed)
    n_left = rng.randint(1, 14)
    n_right = rng.randint(1, 14)
    graph = random_bipartite_graph(
        [f"l{i}" for i in range(n_left)],
        [f"r{i}" for i in range(n_right)],
        rng.random(),
        seed=seed,
    )
    return extract_label_bipartite(graph, "L", "R")


def _random_graph(seed: int, labels=("A", "B", "C")):
    rng = random.Random(10_000 + seed)
    return random_labeled_graph(
        rng.randint(0, 28), rng.random() * 0.5, list(labels), seed=seed
    )


def _chi_dict(frozen: CSRBipartiteView, chi):
    return {frozen.vertex_of(i): c for i, c in enumerate(chi)}


class TestButterflyParity:
    @pytest.mark.parametrize("seed", BUTTERFLY_SEEDS)
    def test_all_backends_agree(self, seed):
        view = _random_bipartite(seed)
        reference = butterfly_degrees(view, backend="object")
        assert butterfly_degrees(view, backend="csr") == reference
        assert butterfly_degrees_priority(view, backend="object") == reference
        assert butterfly_degrees_priority(view, backend="csr") == reference
        frozen = CSRBipartiteView.freeze(view)
        assert _chi_dict(frozen, csr_butterfly_degrees(frozen)) == reference
        assert _chi_dict(frozen, csr_butterfly_degrees_two_sided(frozen)) == reference
        if view.num_vertices() <= 18:
            assert brute_force_butterfly_degrees(view) == reference

    def test_single_label_graph_has_empty_side(self):
        graph = random_labeled_graph(12, 0.4, ["only"], seed=5)
        view = extract_label_bipartite(graph, "only", "missing")
        reference = butterfly_degrees(view, backend="object")
        assert butterfly_degrees(view, backend="csr") == reference
        assert all(chi == 0 for chi in reference.values())

    def test_enumerate_butterflies_matches_brute_force(self):
        view = _random_bipartite(3)
        degrees = {v: 0 for v in view.vertices()}
        for l1, l2, r1, r2 in enumerate_butterflies(view):
            assert view.side(l1) == view.side(l2) == "left"
            assert view.side(r1) == view.side(r2) == "right"
            for vertex in (l1, l2, r1, r2):
                degrees[vertex] += 1
        assert degrees == butterfly_degrees(view, backend="object")

    def test_empty_degree_map_is_authoritative(self):
        view = _random_bipartite(7)
        # An explicitly supplied empty map must not trigger a recount.
        assert max_butterfly_degree_per_side(view, degrees={}) == (0, 0)
        reference = butterfly_degrees(view)
        assert max_butterfly_degree_per_side(view, degrees=reference) == \
            max_butterfly_degree_per_side(view)


class TestKCoreParity:
    @pytest.mark.parametrize("seed", KCORE_SEEDS)
    def test_coreness_and_cores_agree(self, seed):
        graph = _random_graph(seed)
        reference = core_decomposition(graph, backend="object")
        assert core_decomposition(graph, backend="csr") == reference
        frozen = CSRGraph.freeze(graph)
        n = frozen.num_vertices()
        assert {frozen.vertex_of(i): c for i, c in enumerate(csr_core_decomposition(frozen))} == reference
        max_k = (max(reference.values()) if reference else 0) + 2
        for k in range(0, max_k):
            expected = k_core_vertices(graph, k, backend="object")
            assert k_core_vertices(graph, k, backend="csr") == expected
            alive = csr_k_core_alive(frozen, k)
            assert {frozen.vertex_of(i) for i in range(n) if alive[i]} == expected
        # Warm-coreness extraction (the O(n) filter) must agree too.
        frozen.coreness()
        for k in range(0, max_k):
            alive = csr_k_core_alive(frozen, k)
            assert {frozen.vertex_of(i) for i in range(n) if alive[i]} == \
                k_core_vertices(graph, k, backend="object")

    def test_disconnected_components(self):
        graph = planted_partition_graph([8, 8, 8], 0.8, 0.0, seed=2)[0]
        assert core_decomposition(graph, backend="csr") == \
            core_decomposition(graph, backend="object")


class TestBFSParity:
    @pytest.mark.parametrize("seed", BFS_SEEDS)
    def test_distances_agree(self, seed):
        graph = _random_graph(seed, labels=("A", "B"))
        vertices = list(graph.vertices())
        if not vertices:
            return
        rng = random.Random(seed)
        frozen = CSRGraph.freeze(graph)
        n = frozen.num_vertices()
        source = rng.choice(vertices)
        for max_depth in (None, 0, 1, 3):
            reference = bfs_distances(graph, source, max_depth=max_depth, backend="object")
            assert bfs_distances(graph, source, max_depth=max_depth, backend="csr") == reference
            dist = csr_bfs_distances(frozen, frozen.id_of(source), max_depth=max_depth)
            assert {frozen.vertex_of(i): d for i, d in enumerate(dist) if d >= 0} == reference
        seeds = {v: rng.randint(0, 3) for v in rng.sample(vertices, min(4, len(vertices)))}
        reference = multi_source_bfs(graph, seeds, backend="object")
        assert multi_source_bfs(graph, seeds, backend="csr") == reference
        id_seeds = [(frozen.id_of(v), d) for v, d in seeds.items()]
        dist = csr_multi_source_bfs(frozen, id_seeds)
        assert {frozen.vertex_of(i): d for i, d in enumerate(dist) if d >= 0} == reference

    def test_restricted_multi_source(self):
        graph = _random_graph(11, labels=("A",))
        vertices = list(graph.vertices())
        if len(vertices) < 4:
            pytest.skip("graph too small for a restriction test")
        rng = random.Random(11)
        seeds = {vertices[0]: 0, vertices[1]: 2}
        restrict = set(rng.sample(vertices, len(vertices) // 2))
        reference = multi_source_bfs(graph, seeds, restrict_to=restrict, backend="object")
        assert multi_source_bfs(graph, seeds, restrict_to=restrict, backend="csr") == reference


class TestTrackerParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_deletion_sequences(self, seed):
        rng = random.Random(seed)
        graph, communities = planted_partition_graph([14, 14], 0.4, 0.06, seed=seed)
        mirror = graph.copy()
        queries = [communities[0][0], communities[1][0]]
        obj = QueryDistanceTracker(graph, queries, backend="object")
        csr = QueryDistanceTracker(mirror, queries, backend="csr")
        deletable = [v for v in graph.vertices() if v not in queries]
        rng.shuffle(deletable)
        for start in range(0, 15, 3):
            batch = deletable[start : start + 3]
            graph.remove_vertices(batch)
            mirror.remove_vertices(batch)
            obj.remove_vertices(batch)
            csr.remove_vertices(batch)
            assert obj.full_recomputations == csr.full_recomputations
            assert obj.partial_updates == csr.partial_updates
            assert obj.graph_query_distance() == csr.graph_query_distance()
            assert obj.farthest_vertices() == csr.farthest_vertices()
            for q in queries:
                assert obj.distance_map(q) == csr.distance_map(q)

    def test_deleting_query_vertex(self):
        graph, communities = planted_partition_graph([10, 10], 0.5, 0.1, seed=3)
        mirror = graph.copy()
        queries = [communities[0][0], communities[1][0]]
        obj = QueryDistanceTracker(graph, queries, backend="object")
        csr = QueryDistanceTracker(mirror, queries, backend="csr")
        graph.remove_vertex(queries[0])
        mirror.remove_vertex(queries[0])
        obj.remove_vertices([queries[0]])
        csr.remove_vertices([queries[0]])
        probe = communities[1][1]
        assert math.isinf(obj.distance(probe, queries[0]))
        assert math.isinf(csr.distance(probe, queries[0]))
        assert obj.distance_map(queries[0]) == csr.distance_map(queries[0]) == {}


class TestOnlineBCCFastPathParity:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("bulk", [True, False])
    def test_fast_path_is_byte_identical(self, seed, bulk):
        graph, communities = planted_partition_graph(
            [12, 12], 0.55, 0.08, seed=seed, label_for_community=lambda i: "LR"[i]
        )
        q_left, q_right = communities[0][0], communities[1][0]
        fast = online_bcc_search(
            graph, q_left, q_right, bulk_deletion=bulk, use_fast_path=True
        )
        slow = online_bcc_search(
            graph, q_left, q_right, bulk_deletion=bulk, use_fast_path=False
        )
        if fast is None or slow is None:
            assert fast is None and slow is None
            return
        assert set(fast.community.vertices()) == set(slow.community.vertices())
        assert fast.community == slow.community
        assert fast.left_vertices == slow.left_vertices
        assert fast.right_vertices == slow.right_vertices
        assert fast.query_distance == slow.query_distance
        assert fast.iterations == slow.iterations


class TestProcessBackendParity:
    """backend="process" ≡ the threaded path, value for value.

    The worker processes serve the *same* frozen CSR arrays from shared
    memory, so every registered method must return byte-identical wire
    payloads (community, iterations, query distance, error rows) whether
    the batch ran in-process or was scattered over workers.  A SIGKILLed
    worker costs at most its in-flight row and never the batch.
    """

    PAIR_CONFIGS = {
        "online-bcc": SearchConfig(b=1, max_iterations=60),
        "lp-bcc": SearchConfig(b=1, max_iterations=60),
        "l2p-bcc": SearchConfig(b=1, max_iterations=60),
        "ctc": SearchConfig(max_iterations=60),
        "psa": SearchConfig(),
    }

    @staticmethod
    def _canonical(response):
        from repro.server.protocol import encode_response

        payload = encode_response(response)
        payload.pop("timings")
        return payload

    @staticmethod
    def _cross_pairs(graph, limit):
        pairs = []
        for u, v in graph.cross_edges():
            pairs.append((u, v))
            if len(pairs) >= limit:
                break
        return pairs

    @pytest.mark.parallel
    @pytest.mark.parametrize("seed", range(3))
    def test_every_pair_method_agrees(self, seed):
        from repro.api import BCCEngine, Query

        graph = random_labeled_graph(24, 0.3, ["A", "B"], seed=800 + seed)
        pairs = self._cross_pairs(graph, 2)
        if not pairs:
            pytest.skip("no cross edge in this instance")
        queries = [
            Query(method, pair, config=config)
            for method, config in self.PAIR_CONFIGS.items()
            for pair in pairs
        ]
        engine = BCCEngine(graph)
        expected = engine.search_many(queries, on_error="return")
        got = engine.search_many(
            queries, on_error="return", backend="process", max_workers=2
        )
        try:
            assert [self._canonical(r) for r in got] == [
                self._canonical(r) for r in expected
            ]
        finally:
            engine.close_process_pool()

    @pytest.mark.parallel
    def test_mbcc_agrees_on_a_multilabel_graph(self):
        from repro.api import BCCEngine, Query, SearchConfig

        graph = random_labeled_graph(21, 0.4, ["A", "B", "C"], seed=31)
        by_label = [sorted(graph.vertices_with_label(l)) for l in "ABC"]
        if not all(by_label):
            pytest.skip("a label side is empty in this instance")
        query = tuple(side[0] for side in by_label)
        config = SearchConfig(b=1, max_iterations=60)
        engine = BCCEngine(graph)
        queries = [Query("mbcc", query, config=config)]
        expected = engine.search_many(queries, on_error="return")
        got = engine.search_many(
            queries, on_error="return", backend="process"
        )
        try:
            assert [self._canonical(r) for r in got] == [
                self._canonical(r) for r in expected
            ]
        finally:
            engine.close_process_pool()

    @pytest.mark.parallel
    @pytest.mark.chaos
    def test_sigkill_mid_batch_costs_one_row_at_most(self):
        import os
        import signal
        import time

        from repro.api import BCCEngine, Query
        from repro.parallel import ProcessWorkerPool

        graph = random_labeled_graph(30, 0.25, ["A", "B"], seed=77)
        pairs = self._cross_pairs(graph, 6)
        queries = [Query("online-bcc", pair) for pair in pairs]

        class KillFirstDispatch:
            def __init__(self):
                self.fired = False

            def on(self, site, **attrs):
                if site == "pool.dispatch" and not self.fired:
                    self.fired = True
                    os.kill(attrs["pid"], signal.SIGKILL)

        killer = KillFirstDispatch()
        start = time.monotonic()
        with ProcessWorkerPool(
            graph, SearchConfig(), workers=2, fault_plan=killer
        ) as pool:
            rows = pool.run_batch([(q, None, None) for q in queries])
            assert time.monotonic() - start < 60.0  # bounded, never a hang
            assert len(rows) == len(queries)
            errors = [r for r in rows if r.status == "error"]
            assert len(errors) <= 1
            for row in errors:
                assert row.reason == "worker-crashed"
            counters = pool.counters_snapshot()
            assert killer.fired
            assert counters["crashes"] >= 1 and counters["respawns"] >= 1
            # The respawned worker serves the next batch like nothing
            # happened — and with full parity.
            again = pool.run_batch([(queries[0], None, None)])
        reference = BCCEngine(graph).prepare().search(queries[0])
        assert self._canonical(again[0]) == self._canonical(reference)


class TestLabelIndexConsistency:
    """The maintained label index must always match a full scan."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_mutation_sequences(self, seed):
        rng = random.Random(seed)
        graph = _random_graph(seed)
        labels = ["A", "B", "C", "D"]
        for _ in range(60):
            op = rng.random()
            vertices = list(graph.vertices())
            if op < 0.3 or not vertices:
                graph.add_vertex(rng.randint(0, 40), label=rng.choice(labels))
            elif op < 0.5:
                graph.set_label(rng.choice(vertices), rng.choice(labels))
            elif op < 0.7 and len(vertices) >= 2:
                graph.add_edge(rng.choice(vertices), rng.choice(vertices))
            else:
                graph.remove_vertex(rng.choice(vertices))
            scan = {}
            for v in graph.vertices():
                scan.setdefault(graph.label(v), set()).add(v)
            assert graph.labels() == set(scan)
            for label in list(scan) + ["unused"]:
                assert graph.vertices_with_label(label) == scan.get(label, set())
            assert graph.label_counts() == {lab: len(s) for lab, s in scan.items()}
