"""Unit tests for LP-BCC (Algorithm 1 + fast strategies of Section 6)."""

from __future__ import annotations

import pytest

from repro.core.bcc_model import is_bcc
from repro.core.lp_bcc import lp_bcc_search
from repro.core.online_bcc import online_bcc_search
from repro.eval.instrumentation import SearchInstrumentation
from repro.eval.queries import QuerySpec, generate_query_pairs
from repro.graph.generators import paper_example_graph


class TestPaperExample:
    def test_returns_figure2_community(self):
        g = paper_example_graph()
        result = lp_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1)
        expected = {"ql", "v1", "v2", "v3", "v4", "v5", "qr", "u1", "u2", "u3"}
        assert result is not None
        assert result.vertices == expected

    def test_result_is_valid_bcc(self):
        g = paper_example_graph()
        result = lp_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1)
        assert is_bcc(result.community, result.parameters, ["ql", "qr"])

    def test_leader_pair_reported(self):
        g = paper_example_graph()
        result = lp_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1)
        assert result.leader_pair is not None
        left_leader, right_leader = result.leader_pair
        assert g.label(left_leader) == "SE"
        assert g.label(right_leader) == "UI"

    def test_no_answer_for_unsatisfiable_parameters(self):
        g = paper_example_graph()
        assert lp_bcc_search(g, "ql", "qr", k1=4, k2=3, b=99) is None
        assert lp_bcc_search(g, "ql", "qr", k1=9, k2=3, b=1) is None


class TestAgreementWithOnlineBCC:
    """LP-BCC uses the same greedy framework; on ground-truth queries the two
    must return communities of equal quality (same query distance) and, on
    these small graphs, the same vertex sets."""

    def test_same_answer_on_paper_example(self):
        g = paper_example_graph()
        online = online_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1)
        fast = lp_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1)
        assert online.vertices == fast.vertices
        assert online.query_distance == fast.query_distance

    @pytest.mark.parametrize("query_index", [0, 1, 2])
    def test_same_query_distance_on_baidu_tiny(self, tiny_baidu_bundle, query_index):
        bundle = tiny_baidu_bundle
        pairs = generate_query_pairs(bundle, QuerySpec(count=3), seed=5)
        if query_index >= len(pairs):
            pytest.skip("not enough generated queries")
        q_left, q_right = pairs[query_index]
        online = online_bcc_search(bundle.graph, q_left, q_right, b=1)
        fast = lp_bcc_search(bundle.graph, q_left, q_right, b=1)
        assert (online is None) == (fast is None)
        if online is not None:
            assert fast.query_distance == online.query_distance


class TestFastStrategiesAreUsed:
    def test_fewer_butterfly_counting_calls_than_online(self, tiny_baidu_bundle):
        bundle = tiny_baidu_bundle
        q_left, q_right = bundle.default_query()
        online_inst = SearchInstrumentation()
        lp_inst = SearchInstrumentation()
        online_bcc_search(bundle.graph, q_left, q_right, b=1, instrumentation=online_inst)
        lp_bcc_search(bundle.graph, q_left, q_right, b=1, instrumentation=lp_inst)
        assert lp_inst.butterfly_counting_calls <= online_inst.butterfly_counting_calls

    def test_partial_distance_updates_recorded(self, tiny_baidu_bundle):
        bundle = tiny_baidu_bundle
        q_left, q_right = bundle.default_query()
        result = lp_bcc_search(bundle.graph, q_left, q_right, b=1)
        assert result is not None
        assert result.statistics.get("distance_full_recomputations", 0) == 2
        assert result.statistics.get("distance_partial_updates", 0) >= 0

    def test_leader_recount_statistics_present(self):
        g = paper_example_graph()
        result = lp_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1)
        assert "leader_full_recounts" in result.statistics


class TestOptions:
    def test_single_vertex_deletion_mode(self):
        g = paper_example_graph()
        result = lp_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1, bulk_deletion=False)
        expected = {"ql", "v1", "v2", "v3", "v4", "v5", "qr", "u1", "u2", "u3"}
        assert result.vertices == expected

    def test_max_iterations(self, tiny_baidu_bundle):
        bundle = tiny_baidu_bundle
        q_left, q_right = bundle.default_query()
        result = lp_bcc_search(bundle.graph, q_left, q_right, b=1, max_iterations=1)
        assert result is not None
        assert result.iterations <= 1

    def test_rho_parameter_accepted(self):
        g = paper_example_graph()
        result = lp_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1, rho=1)
        assert result is not None
