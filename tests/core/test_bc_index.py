"""Unit tests for the BCindex (Section 6.3)."""

from __future__ import annotations

import pytest

from repro.core.bc_index import BCIndex, build_bc_index
from repro.core.butterfly import butterfly_degrees
from repro.core.kcore import core_decomposition
from repro.exceptions import IndexNotBuiltError
from repro.graph.bipartite import extract_label_bipartite
from repro.graph.generators import paper_example_graph


class TestCorenessComponent:
    def test_label_group_coreness(self):
        g = paper_example_graph()
        index = BCIndex(g)
        expected_se = core_decomposition(g.label_induced_subgraph("SE"))
        for vertex, coreness in expected_se.items():
            assert index.coreness(vertex) == coreness
        assert index.coreness("ql") == 4
        assert index.coreness("qr") == 3

    def test_max_coreness(self):
        g = paper_example_graph()
        index = BCIndex(g)
        assert index.max_coreness() == max(index.coreness_map().values())

    def test_unknown_vertex_defaults_to_zero(self):
        g = paper_example_graph()
        index = BCIndex(g)
        assert index.coreness("not-there") == 0

    def test_lazy_build(self):
        g = paper_example_graph()
        index = BCIndex(g, build=False)
        assert not index.is_built()
        with pytest.raises(IndexNotBuiltError):
            index.coreness("ql")
        index.build()
        assert index.is_built()
        assert index.coreness("ql") == 4

    def test_coreness_map_is_copy(self):
        g = paper_example_graph()
        index = BCIndex(g)
        mapping = index.coreness_map()
        mapping["ql"] = 99
        assert index.coreness("ql") == 4


class TestButterflyComponent:
    def test_matches_direct_counting(self):
        g = paper_example_graph()
        index = BCIndex(g)
        direct = butterfly_degrees(extract_label_bipartite(g, "SE", "UI"))
        for vertex, chi in direct.items():
            assert index.butterfly_degree(vertex, "SE", "UI") == chi

    def test_label_pair_order_irrelevant(self):
        g = paper_example_graph()
        index = BCIndex(g)
        assert index.butterfly_degree("ql", "SE", "UI") == index.butterfly_degree(
            "ql", "UI", "SE"
        )
        assert index.max_butterfly_degree("SE", "UI") == index.max_butterfly_degree(
            "UI", "SE"
        )

    def test_caching(self):
        g = paper_example_graph()
        index = BCIndex(g)
        assert index.cached_label_pairs() == ()
        index.butterfly_degrees_for("SE", "UI")
        assert len(index.cached_label_pairs()) == 1
        index.butterfly_degrees_for("UI", "SE")
        assert len(index.cached_label_pairs()) == 1
        index.butterfly_degrees_for("SE", "PM")
        assert len(index.cached_label_pairs()) == 2

    def test_vertex_outside_pair_has_zero_degree(self):
        g = paper_example_graph()
        index = BCIndex(g)
        assert index.butterfly_degree("z1", "SE", "UI") == 0

    def test_build_bc_index_helper(self):
        index = build_bc_index(paper_example_graph())
        assert index.is_built()
