"""Unit tests for the BCC model definitions (Def. 4) and result containers."""

from __future__ import annotations

import pytest

from repro.core.bcc_model import (
    BCCParameters,
    BCCResult,
    decompose_community,
    is_bcc,
    resolve_query_labels,
    swap_left_right,
    validate_bcc,
)
from repro.exceptions import QueryError
from repro.graph.generators import paper_example_graph
from repro.graph.labeled_graph import LabeledGraph


def figure2_community() -> LabeledGraph:
    """The expected (4, 3, 1)-BCC of the running example (Figure 2)."""
    g = paper_example_graph()
    members = {"ql", "v1", "v2", "v3", "v4", "v5", "qr", "u1", "u2", "u3"}
    return g.induced_subgraph(members)


class TestParameters:
    def test_validation(self):
        with pytest.raises(QueryError):
            BCCParameters(k1=-1, k2=0)
        with pytest.raises(QueryError):
            BCCParameters(k1=1, k2=1, b=-2)
        params = BCCParameters(k1=2, k2=3, b=1)
        assert (params.k1, params.k2, params.b) == (2, 3, 1)

    def test_from_query_defaults_to_label_group_coreness(self):
        g = paper_example_graph()
        params = BCCParameters.from_query(g, "ql", "qr")
        assert params.k1 == 4
        assert params.k2 == 3
        assert params.b == 1

    def test_from_query_explicit_overrides(self):
        g = paper_example_graph()
        params = BCCParameters.from_query(g, "ql", "qr", k1=2, k2=2, b=3)
        assert (params.k1, params.k2, params.b) == (2, 2, 3)


class TestQueryLabels:
    def test_resolve_labels(self):
        g = paper_example_graph()
        assert resolve_query_labels(g, "ql", "qr") == ("SE", "UI")

    def test_same_label_rejected(self):
        g = paper_example_graph()
        with pytest.raises(QueryError):
            resolve_query_labels(g, "ql", "v1")

    def test_missing_vertex_rejected(self):
        g = paper_example_graph()
        with pytest.raises(KeyError):
            resolve_query_labels(g, "ql", "nobody")


class TestValidation:
    def test_figure2_community_is_valid_bcc(self):
        community = figure2_community()
        params = BCCParameters(k1=4, k2=3, b=1)
        assert validate_bcc(community, params, ["ql", "qr"]) == []
        assert is_bcc(community, params, ["ql", "qr"])

    def test_core_violation_detected(self):
        community = figure2_community()
        params = BCCParameters(k1=5, k2=3, b=1)
        violations = validate_bcc(community, params)
        assert any("k1=5" in v for v in violations)

    def test_butterfly_violation_detected(self):
        community = figure2_community()
        params = BCCParameters(k1=4, k2=3, b=10)
        violations = validate_bcc(community, params)
        assert any("leader pair" in v for v in violations)

    def test_wrong_label_count_detected(self):
        g = paper_example_graph()
        params = BCCParameters(k1=1, k2=1, b=0)
        violations = validate_bcc(g, params)  # three labels present
        assert violations and "exactly 2 labels" in violations[0]

    def test_missing_query_detected(self):
        community = figure2_community()
        params = BCCParameters(k1=4, k2=3, b=1)
        violations = validate_bcc(community, params, ["ql", "u9"])
        assert any("does not contain" in v for v in violations)

    def test_disconnected_query_detected(self):
        g = LabeledGraph()
        for v, lab in (("a", "L"), ("b", "L"), ("c", "L"), ("x", "R"), ("y", "R"), ("z", "R")):
            g.add_vertex(v, label=lab)
        for u, v in (("a", "b"), ("b", "c"), ("a", "c"), ("x", "y"), ("y", "z"), ("x", "z")):
            g.add_edge(u, v)
        params = BCCParameters(k1=2, k2=2, b=0)
        violations = validate_bcc(g, params, ["a", "x"])
        assert any("not connected" in v for v in violations)


class TestDecompositionAndResult:
    def test_decompose_community(self):
        community = figure2_community()
        left, bipartite, right = decompose_community(community, "SE", "UI")
        assert set(left.vertices()) == {"ql", "v1", "v2", "v3", "v4", "v5"}
        assert set(right.vertices()) == {"qr", "u1", "u2", "u3"}
        assert bipartite.num_edges() == 4

    def test_result_accessors(self):
        community = figure2_community()
        result = BCCResult(
            community=community,
            left_vertices=community.vertices_with_label("SE"),
            right_vertices=community.vertices_with_label("UI"),
            left_label="SE",
            right_label="UI",
            parameters=BCCParameters(4, 3, 1),
            leader_pair=("ql", "qr"),
            query_distance=2.0,
        )
        assert result.num_vertices() == 10
        assert result.num_edges() == community.num_edges()
        assert result.diameter() <= 4
        assert result.bipartite().num_edges() == 4
        assert "ql" in result.vertices

    def test_swap_left_right(self):
        community = figure2_community()
        result = BCCResult(
            community=community,
            left_vertices=community.vertices_with_label("SE"),
            right_vertices=community.vertices_with_label("UI"),
            left_label="SE",
            right_label="UI",
            parameters=BCCParameters(4, 3, 2),
            leader_pair=("ql", "qr"),
        )
        swapped = swap_left_right(result)
        assert swapped.left_label == "UI"
        assert swapped.parameters.k1 == 3
        assert swapped.parameters.k2 == 4
        assert swapped.leader_pair == ("qr", "ql")
