"""Unit tests for Algorithm 5 (fast query-distance computation)."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.query_distance import QueryDistanceTracker
from repro.graph.generators import paper_small_example_graph, planted_partition_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.traversal import bfs_distances


def reference_distances(graph, queries):
    """Recompute distances from scratch for comparison."""
    out = {}
    for q in queries:
        if q not in graph:
            out[q] = {}
            continue
        reached = bfs_distances(graph, q)
        out[q] = {
            v: float(reached.get(v, math.inf)) for v in graph.vertices()
        }
    return out


class TestExample4:
    """The worked example of Section 6.1 (Table 2)."""

    def test_initial_distances_match_table2(self):
        g = paper_small_example_graph()
        tracker = QueryDistanceTracker(g, ["ql", "qr"])
        assert tracker.distance("u9", "ql") == 4
        assert tracker.distance("u9", "qr") == 1
        assert tracker.distance("u4", "qr") == 2
        assert tracker.distance("u7", "qr") == 2
        assert tracker.query_distance("u9") == 4

    def test_deleting_u9_updates_only_affected_vertices(self):
        g = paper_small_example_graph()
        tracker = QueryDistanceTracker(g, ["ql", "qr"])
        g.remove_vertex("u9")
        tracker.remove_vertices(["u9"])
        # Example 4: u4 and u7 move from distance 2 to 3 w.r.t. q_r.
        assert tracker.distance("u4", "qr") == 3
        assert tracker.distance("u7", "qr") == 3
        # Distances to q_l are unchanged.
        assert tracker.distance("u4", "ql") == 3
        assert tracker.distance("u1", "ql") == 3
        # And all distances agree with a fresh BFS.
        reference = reference_distances(g, ["ql", "qr"])
        for q in ("ql", "qr"):
            for v in g.vertices():
                assert tracker.distance(v, q) == reference[q][v]

    def test_farthest_vertices_after_deletion(self):
        g = paper_small_example_graph()
        tracker = QueryDistanceTracker(g, ["ql", "qr"])
        vertices, distance = tracker.farthest_vertices()
        assert vertices == ["u9"] and distance == 4
        g.remove_vertex("u9")
        tracker.remove_vertices(["u9"])
        vertices, distance = tracker.farthest_vertices()
        assert set(vertices) == {"v2", "u1", "u4", "u6", "u7"}
        assert distance == 3


class TestCorrectnessAgainstRecomputation:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_deletion_sequences(self, seed):
        rng = random.Random(seed)
        graph, communities = planted_partition_graph([12, 12], 0.4, 0.05, seed=seed)
        queries = [communities[0][0], communities[1][0]]
        tracker = QueryDistanceTracker(graph, queries)
        deletable = [v for v in graph.vertices() if v not in queries]
        rng.shuffle(deletable)
        for start in range(0, 12, 3):
            batch = deletable[start : start + 3]
            graph.remove_vertices(batch)
            tracker.remove_vertices(batch)
            reference = reference_distances(graph, queries)
            for q in queries:
                for v in graph.vertices():
                    assert tracker.distance(v, q) == reference[q][v], (
                        f"seed={seed} vertex={v} query={q}"
                    )

    def test_unreachable_vertices_get_infinity(self):
        g = LabeledGraph(edges=[(0, 1), (1, 2), (3, 4)])
        tracker = QueryDistanceTracker(g, [0])
        assert math.isinf(tracker.distance(3, 0))
        assert math.isinf(tracker.query_distance(3))
        assert math.isinf(tracker.graph_query_distance())

    def test_disconnecting_deletion(self):
        g = LabeledGraph(edges=[(0, 1), (1, 2), (2, 3)])
        tracker = QueryDistanceTracker(g, [0])
        g.remove_vertex(1)
        tracker.remove_vertices([1])
        assert math.isinf(tracker.distance(2, 0))
        assert math.isinf(tracker.distance(3, 0))

    def test_deleting_unreachable_vertex_changes_nothing(self):
        g = LabeledGraph(edges=[(0, 1), (2, 3)])
        tracker = QueryDistanceTracker(g, [0])
        g.remove_vertex(3)
        tracker.remove_vertices([3])
        assert tracker.distance(1, 0) == 1
        assert tracker.partial_updates >= 1


class TestBookkeeping:
    def test_partial_updates_counted(self):
        g = paper_small_example_graph()
        tracker = QueryDistanceTracker(g, ["ql", "qr"])
        assert tracker.full_recomputations == 2
        g.remove_vertex("u9")
        tracker.remove_vertices(["u9"])
        assert tracker.partial_updates >= 1

    def test_empty_deletion_is_noop(self):
        g = paper_small_example_graph()
        tracker = QueryDistanceTracker(g, ["ql", "qr"])
        tracker.remove_vertices([])
        assert tracker.partial_updates == 0

    def test_distance_map_copy(self):
        g = paper_small_example_graph()
        tracker = QueryDistanceTracker(g, ["ql"])
        dmap = tracker.distance_map("ql")
        dmap["v1"] = 99
        assert tracker.distance("v1", "ql") == 1

    def test_deleting_query_vertex_clears_its_map(self):
        g = paper_small_example_graph()
        tracker = QueryDistanceTracker(g, ["ql", "qr"])
        g.remove_vertex("qr")
        tracker.remove_vertices(["qr"])
        assert math.isinf(tracker.distance("u1", "qr"))
