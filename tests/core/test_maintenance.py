"""Unit tests for Algorithm 4 (butterfly-core maintenance)."""

from __future__ import annotations

from repro.core.bcc_model import BCCParameters, is_bcc
from repro.core.find_g0 import find_g0
from repro.core.maintenance import maintain_bcc, maintain_label_core
from repro.eval.instrumentation import SearchInstrumentation
from repro.graph.generators import paper_example_graph


def figure2_candidate():
    g = paper_example_graph()
    params = BCCParameters(4, 3, 1)
    result = find_g0(g, "ql", "qr", params)
    return result.community.copy(), params


class TestMaintainLabelCore:
    def test_cascade_stays_within_label(self):
        community, params = figure2_candidate()
        removed = maintain_label_core(community, "UI", params.k2, ["u1"])
        # Removing u1 from the 4-vertex UI clique drops everyone below degree 3.
        assert {"u1", "u2", "u3", "qr"} <= removed
        # SE vertices are untouched by the cascade on the UI side.
        assert all(community.label(v) == "SE" for v in community.vertices())

    def test_no_cascade_when_degree_survives(self):
        community, params = figure2_candidate()
        removed = maintain_label_core(community, "SE", 3, ["v1"])
        assert removed == {"v1"}
        assert "v2" in community

    def test_absent_vertices_ignored(self):
        community, params = figure2_candidate()
        removed = maintain_label_core(community, "SE", params.k1, ["not-there"])
        assert removed == set()


class TestMaintainBCC:
    def test_valid_after_harmless_removal(self):
        community, params = figure2_candidate()
        # v1 is not needed for the butterfly; with k1=3 the left core survives.
        relaxed = BCCParameters(3, 3, 1)
        outcome = maintain_bcc(
            community, ["v1"], relaxed, "SE", "UI", query_vertices=["ql", "qr"]
        )
        assert outcome.valid
        assert "v1" not in community
        assert is_bcc(community, relaxed, ["ql", "qr"])

    def test_invalid_when_core_collapses(self):
        community, params = figure2_candidate()
        outcome = maintain_bcc(
            community, ["v1"], params, "SE", "UI", query_vertices=["ql", "qr"]
        )
        # k1=4 cannot survive the loss of v1 in a 6-vertex near-clique: the
        # cascade eats the query vertex, so the result must be invalid.
        assert not outcome.valid
        assert outcome.reason

    def test_invalid_when_butterfly_lost(self):
        community, params = figure2_candidate()
        relaxed = BCCParameters(0, 0, 1)
        outcome = maintain_bcc(
            community, ["v5"], relaxed, "SE", "UI", query_vertices=["ql", "qr"]
        )
        # v5 is one wing of the only butterfly; chi drops to 0 < b = 1.
        assert not outcome.valid
        assert "butterfly" in outcome.reason

    def test_check_butterfly_can_be_skipped(self):
        community, params = figure2_candidate()
        relaxed = BCCParameters(0, 0, 1)
        inst = SearchInstrumentation()
        outcome = maintain_bcc(
            community,
            ["v5"],
            relaxed,
            "SE",
            "UI",
            query_vertices=["ql", "qr"],
            check_butterfly=False,
            instrumentation=inst,
        )
        assert outcome.valid
        assert inst.butterfly_counting_calls == 0

    def test_invalid_when_query_removed(self):
        community, params = figure2_candidate()
        outcome = maintain_bcc(
            community, ["qr"], params, "SE", "UI", query_vertices=["ql", "qr"]
        )
        assert not outcome.valid
        assert "query" in outcome.reason

    def test_invalid_when_group_emptied(self):
        community, params = figure2_candidate()
        outcome = maintain_bcc(
            community,
            ["qr", "u1", "u2", "u3"],
            BCCParameters(0, 0, 0),
            "SE",
            "UI",
        )
        assert not outcome.valid
        assert "empty" in outcome.reason

    def test_instrumentation_records_counting(self):
        community, params = figure2_candidate()
        inst = SearchInstrumentation()
        maintain_bcc(
            community,
            ["v1"],
            BCCParameters(3, 3, 1),
            "SE",
            "UI",
            query_vertices=["ql", "qr"],
            instrumentation=inst,
        )
        assert inst.butterfly_counting_calls == 1

    def test_removed_set_reports_cascade(self):
        community, params = figure2_candidate()
        outcome = maintain_bcc(
            community, ["u1"], params, "SE", "UI", query_vertices=["ql", "qr"]
        )
        assert {"u1", "u2", "u3", "qr"} <= outcome.removed
