"""End-to-end integration tests crossing module boundaries.

These tests exercise whole pipelines the way the benchmark harness and the
examples do: dataset generation → index construction → community search →
evaluation against ground truth, including the paper's running example and
the case-study scenarios.
"""

from __future__ import annotations

import pytest

from repro import (
    BCIndex,
    BCCParameters,
    ctc_search,
    is_bcc,
    l2p_bcc_search,
    lp_bcc_search,
    mbcc_search,
    online_bcc_search,
    psa_search,
    validate_bcc,
)
from repro.datasets import load_dataset
from repro.eval import QuerySpec, describe_community, f1_score, generate_query_pairs
from repro.eval.harness import run_method
from repro.graph.generators import paper_example_graph


class TestRunningExamplePipeline:
    """The full Figure 1 → Figure 2 story of the paper's introduction."""

    def test_all_three_bcc_methods_agree_with_figure2(self):
        g = paper_example_graph()
        expected = {"ql", "v1", "v2", "v3", "v4", "v5", "qr", "u1", "u2", "u3"}
        for search in (online_bcc_search, lp_bcc_search, l2p_bcc_search):
            result = search(g, "ql", "qr", k1=4, k2=3, b=1)
            assert result is not None, search.__name__
            assert result.vertices == expected, search.__name__
            assert is_bcc(result.community, result.parameters, ["ql", "qr"])

    def test_baselines_reproduce_the_introduction_critique(self):
        """The introduction argues label-agnostic models either return the
        whole graph (plain k-core) or a tiny community missing most group
        members; CTC/PSA indeed return the 4-vertex liaison set."""
        g = paper_example_graph()
        ctc = ctc_search(g, ["ql", "qr"])
        psa = psa_search(g, ["ql", "qr"])
        assert ctc.vertices == {"ql", "qr", "v5", "u3"}
        assert psa.vertices == {"ql", "qr", "v5", "u3"}
        expected = {"ql", "v1", "v2", "v3", "v4", "v5", "qr", "u1", "u2", "u3"}
        assert f1_score(ctc.vertices, expected) < 1.0
        bcc = lp_bcc_search(g, "ql", "qr", b=1)
        assert f1_score(bcc.vertices, expected) == 1.0

    def test_community_report_matches_figure2_structure(self):
        g = paper_example_graph()
        result = lp_bcc_search(g, "ql", "qr", k1=4, k2=3, b=1)
        report = describe_community(result.community)
        assert report.label_sizes == {"SE": 6, "UI": 4}
        assert report.min_intra_degree == {"SE": 4, "UI": 3}
        assert report.total_butterflies == 1


class TestDatasetToSearchPipeline:
    def test_baidu_project_recovery(self, tiny_baidu_bundle):
        bundle = tiny_baidu_bundle
        pairs = generate_query_pairs(bundle, QuerySpec(count=3), seed=13)
        assert pairs
        index = BCIndex(bundle.graph)
        for q_left, q_right in pairs:
            truth = bundle.community_for_query(q_left, q_right)
            result = l2p_bcc_search(bundle.graph, q_left, q_right, b=1, index=index)
            assert result is not None
            assert f1_score(result.vertices, truth.members) > 0.4

    def test_snap_like_protocol_supports_bcc_search(self, tiny_snap_bundle):
        bundle = tiny_snap_bundle
        pairs = generate_query_pairs(bundle, QuerySpec(count=2), seed=3)
        found_any = False
        for q_left, q_right in pairs:
            result = lp_bcc_search(bundle.graph, q_left, q_right, b=1, max_iterations=100)
            if result is not None:
                found_any = True
                assert validate_bcc(
                    result.community, result.parameters, [q_left, q_right]
                ) == []
        assert found_any

    def test_run_method_is_consistent_with_direct_call(self, tiny_baidu_bundle):
        bundle = tiny_baidu_bundle
        q_left, q_right = bundle.default_query()
        via_harness = run_method("LP-BCC", bundle, q_left, q_right, b=1)
        direct = lp_bcc_search(bundle.graph, q_left, q_right, b=1)
        assert via_harness.vertices == direct.vertices


class TestCaseStudyPipelines:
    def test_flight_case_study(self, flight_bundle):
        """Exp-6: the BCC for {Toronto, Frankfurt} must be a two-country
        community containing the transatlantic hub butterfly, while CTC mostly
        returns Canadian cities."""
        graph = flight_bundle.graph
        result = lp_bcc_search(graph, "Toronto", "Frankfurt", b=3)
        assert result is not None
        labels = {graph.label(v) for v in result.vertices}
        assert labels == {"Canada", "Germany"}
        for hub in ("Toronto", "Vancouver", "Frankfurt", "Munich"):
            assert hub in result.vertices
        ctc = ctc_search(graph, ["Toronto", "Frankfurt"])
        german_in_ctc = [v for v in ctc.vertices if graph.label(v) == "Germany"]
        german_in_bcc = [v for v in result.vertices if graph.label(v) == "Germany"]
        assert len(german_in_bcc) > len(german_in_ctc)

    def test_trade_case_study(self, trade_bundle):
        graph = trade_bundle.graph
        result = lp_bcc_search(graph, "United States", "China", b=3)
        assert result is not None
        labels = {graph.label(v) for v in result.vertices}
        assert labels == {"Asia", "North America"}
        assert "Japan" in result.vertices or "Korea" in result.vertices

    def test_fiction_case_study(self, fiction_bundle):
        graph = fiction_bundle.graph
        result = lp_bcc_search(graph, "Ron Weasley", "Draco Malfoy", b=1)
        assert result is not None
        assert "Lord Voldemort" in result.vertices
        assert "Molly Weasley" in result.vertices or "Arthur Weasley" in result.vertices
        ctc = ctc_search(graph, ["Ron Weasley", "Draco Malfoy"])
        assert "Lord Voldemort" not in ctc.vertices or len(result.vertices) > len(
            ctc.vertices
        )

    def test_academic_case_study_two_labels(self, academic_bundle):
        graph = academic_bundle.graph
        result = lp_bcc_search(graph, "Tim Kraska", "Michael I. Jordan", b=3, k1=3, k2=3)
        assert result is not None
        labels = {graph.label(v) for v in result.vertices}
        assert labels == {"Database", "Machine Learning"}

    def test_academic_case_study_three_labels(self, academic_bundle):
        graph = academic_bundle.graph
        query = ["Michael J. Franklin", "Michael I. Jordan", "Ion Stoica"]
        result = mbcc_search(graph, query, core_parameters=[3, 3, 3], b=3)
        assert result is not None
        assert set(query) <= result.vertices
        spanned = {graph.label(v) for v in result.vertices}
        assert spanned == {"Database", "Machine Learning", "Systems and Networking"}
        assert len(result.interaction_edges) >= 2


class TestRegistryPipeline:
    @pytest.mark.parametrize("name", ["baidu-tiny", "tiny", "fiction", "trade"])
    def test_load_and_query_every_small_dataset(self, name):
        bundle = load_dataset(name, seed=2)
        q_left, q_right = bundle.default_query()
        result = lp_bcc_search(bundle.graph, q_left, q_right, b=1, max_iterations=100)
        assert result is None or {q_left, q_right} <= result.vertices
