"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.butterfly import (
    brute_force_butterfly_degrees,
    butterfly_degrees,
    butterfly_degrees_priority,
    total_butterflies,
)
from repro.core.kcore import core_decomposition, is_k_core, k_core_vertices, maintain_k_core
from repro.core.ktruss import is_k_truss, k_truss, truss_decomposition
from repro.core.query_distance import QueryDistanceTracker
from repro.graph.bipartite import BipartiteView
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.traversal import bfs_distances, connected_components


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def labeled_graphs(draw, max_vertices: int = 12, labels=("L", "R")):
    """Random labeled graphs with up to ``max_vertices`` vertices."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    graph = LabeledGraph()
    for i in range(n):
        graph.add_vertex(i, label=draw(st.sampled_from(list(labels))))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    for u, v in possible_edges:
        if draw(st.booleans()):
            graph.add_edge(u, v)
    return graph


@st.composite
def bipartite_views(draw, max_side: int = 6):
    """Random bipartite views."""
    left_size = draw(st.integers(min_value=1, max_value=max_side))
    right_size = draw(st.integers(min_value=1, max_value=max_side))
    left = [f"l{i}" for i in range(left_size)]
    right = [f"r{i}" for i in range(right_size)]
    edges = []
    for u in left:
        for v in right:
            if draw(st.booleans()):
                edges.append((u, v))
    return BipartiteView(left, right, edges)


# ----------------------------------------------------------------------
# k-core properties
# ----------------------------------------------------------------------
@given(labeled_graphs())
@settings(max_examples=60, deadline=None)
def test_coreness_bounded_by_degree(graph):
    coreness = core_decomposition(graph)
    for v, k in coreness.items():
        assert 0 <= k <= graph.degree(v)


@given(labeled_graphs(), st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_k_core_vertices_have_min_degree_and_are_maximal(graph, k):
    survivors = k_core_vertices(graph, k)
    core = graph.induced_subgraph(survivors)
    assert is_k_core(core, k)
    # Maximality: the coreness of every vertex outside the k-core is < k.
    coreness = core_decomposition(graph)
    for v in graph.vertices():
        if v not in survivors:
            assert coreness.get(v, 0) < k


@given(labeled_graphs(), st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_k_core_nesting(graph, k):
    """The (k+1)-core is always contained in the k-core."""
    assert k_core_vertices(graph, k + 1) <= k_core_vertices(graph, k)


@given(labeled_graphs(), st.integers(min_value=1, max_value=4), st.data())
@settings(max_examples=40, deadline=None)
def test_k_core_maintenance_matches_recomputation(graph, k, data):
    survivors = k_core_vertices(graph, k)
    if not survivors:
        return
    victim = data.draw(st.sampled_from(sorted(survivors)))
    work = graph.induced_subgraph(survivors)
    maintain_k_core(work, k, [victim])
    expected = k_core_vertices(graph.induced_subgraph(survivors - {victim}), k)
    assert set(work.vertices()) == expected


# ----------------------------------------------------------------------
# butterfly properties
# ----------------------------------------------------------------------
@given(bipartite_views())
@settings(max_examples=60, deadline=None)
def test_butterfly_implementations_agree(view):
    reference = brute_force_butterfly_degrees(view)
    assert butterfly_degrees(view) == reference
    assert butterfly_degrees_priority(view) == reference


@given(bipartite_views())
@settings(max_examples=60, deadline=None)
def test_butterfly_degree_sum_is_four_times_total(view):
    degrees = butterfly_degrees(view)
    assert sum(degrees.values()) == 4 * total_butterflies(view)


@given(bipartite_views(), st.data())
@settings(max_examples=40, deadline=None)
def test_vertex_deletion_never_increases_butterfly_degrees(view, data):
    before = butterfly_degrees(view)
    victim = data.draw(st.sampled_from(sorted(view.vertices(), key=repr)))
    view.remove_vertex(victim)
    after = butterfly_degrees(view)
    for v, chi in after.items():
        assert chi <= before[v]


# ----------------------------------------------------------------------
# k-truss properties
# ----------------------------------------------------------------------
@given(labeled_graphs(max_vertices=9))
@settings(max_examples=30, deadline=None)
def test_truss_is_k_truss_and_nested(graph):
    for k in (3, 4):
        truss = k_truss(graph, k)
        assert is_k_truss(truss, k)
    edges_k3 = {frozenset(e) for e in k_truss(graph, 3).edges()}
    edges_k4 = {frozenset(e) for e in k_truss(graph, 4).edges()}
    assert edges_k4 <= edges_k3


@given(labeled_graphs(max_vertices=9))
@settings(max_examples=30, deadline=None)
def test_trussness_at_least_two(graph):
    for value in truss_decomposition(graph).values():
        assert value >= 2


# ----------------------------------------------------------------------
# traversal / query distance properties
# ----------------------------------------------------------------------
@given(labeled_graphs())
@settings(max_examples=40, deadline=None)
def test_bfs_distances_satisfy_triangle_inequality_on_edges(graph):
    vertices = sorted(graph.vertices())
    source = vertices[0]
    dist = bfs_distances(graph, source)
    for u, v in graph.edges():
        if u in dist and v in dist:
            assert abs(dist[u] - dist[v]) <= 1


@given(labeled_graphs())
@settings(max_examples=40, deadline=None)
def test_connected_components_partition_vertices(graph):
    components = connected_components(graph)
    union = set()
    total = 0
    for component in components:
        total += len(component)
        union |= component
    assert union == set(graph.vertices())
    assert total == graph.num_vertices()


@given(labeled_graphs(max_vertices=10), st.data())
@settings(max_examples=40, deadline=None)
def test_query_distance_tracker_matches_bfs_after_deletions(graph, data):
    vertices = sorted(graph.vertices())
    query = vertices[0]
    tracker = QueryDistanceTracker(graph, [query])
    deletable = [v for v in vertices[1:]]
    if not deletable:
        return
    batch = data.draw(
        st.lists(st.sampled_from(deletable), min_size=1, max_size=3, unique=True)
    )
    graph.remove_vertices(batch)
    tracker.remove_vertices(batch)
    reached = bfs_distances(graph, query)
    for v in graph.vertices():
        expected = float(reached.get(v, math.inf))
        assert tracker.distance(v, query) == expected
