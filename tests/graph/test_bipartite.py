"""Unit tests for the cross-group bipartite view."""

from __future__ import annotations

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph.bipartite import BipartiteView, extract_bipartite, extract_label_bipartite
from repro.graph.labeled_graph import LabeledGraph


def sample_view() -> BipartiteView:
    return BipartiteView(
        left=["a", "b"],
        right=["x", "y", "z"],
        edges=[("a", "x"), ("a", "y"), ("b", "x"), ("b", "y"), ("b", "z")],
    )


class TestConstruction:
    def test_basic_counts(self):
        view = sample_view()
        assert view.num_vertices() == 5
        assert view.num_edges() == 5
        assert view.left() == {"a", "b"}
        assert view.right() == {"x", "y", "z"}

    def test_overlapping_sides_rejected(self):
        with pytest.raises(ValueError):
            BipartiteView(left=["a"], right=["a"])

    def test_same_side_edges_ignored(self):
        view = BipartiteView(left=["a", "b"], right=["x"], edges=[("a", "b"), ("a", "x")])
        assert view.num_edges() == 1

    def test_edges_with_unknown_endpoints_ignored(self):
        view = BipartiteView(left=["a"], right=["x"], edges=[("a", "q"), ("a", "x")])
        assert view.num_edges() == 1

    def test_edge_orientation_irrelevant(self):
        view = BipartiteView(left=["a"], right=["x"], edges=[("x", "a")])
        assert view.num_edges() == 1
        assert view.neighbors("a") == {"x"}


class TestQueries:
    def test_side_lookup(self):
        view = sample_view()
        assert view.side("a") == "left"
        assert view.side("z") == "right"
        with pytest.raises(VertexNotFoundError):
            view.side("q")

    def test_degree_and_neighbors(self):
        view = sample_view()
        assert view.degree("b") == 3
        assert view.neighbors("x") == {"a", "b"}
        assert view.max_degree() == 3
        with pytest.raises(VertexNotFoundError):
            view.degree("q")

    def test_edges_oriented_left_right(self):
        view = sample_view()
        for u, v in view.edges():
            assert u in view.left() and v in view.right()
        assert len(list(view.edges())) == 5

    def test_contains_and_vertices(self):
        view = sample_view()
        assert "a" in view and "q" not in view
        assert set(view.vertices()) == {"a", "b", "x", "y", "z"}


class TestMutation:
    def test_remove_vertex(self):
        view = sample_view()
        view.remove_vertex("b")
        assert "b" not in view
        assert view.num_edges() == 2
        assert view.degree("x") == 1

    def test_remove_absent_vertex_is_noop(self):
        view = sample_view()
        view.remove_vertex("q")
        assert view.num_edges() == 5

    def test_remove_vertices_batch(self):
        view = sample_view()
        view.remove_vertices(["a", "z"])
        assert view.num_vertices() == 3
        assert view.num_edges() == 2

    def test_copy_is_independent(self):
        view = sample_view()
        clone = view.copy()
        clone.remove_vertex("a")
        assert "a" in view
        assert view.num_edges() == 5


class TestExtraction:
    def test_extract_bipartite_keeps_only_cross_edges(self, simple_two_label_graph):
        g = simple_two_label_graph
        view = extract_bipartite(g, {"a", "b", "c"}, {"x", "y", "z"})
        assert view.num_edges() == 5
        assert view.neighbors("a") == {"x", "y"}

    def test_extract_label_bipartite(self, simple_two_label_graph):
        view = extract_label_bipartite(simple_two_label_graph, "L", "R")
        assert view.left() == {"a", "b", "c"}
        assert view.right() == {"x", "y", "z"}
        assert view.num_edges() == 5

    def test_extract_ignores_vertices_not_in_graph(self, simple_two_label_graph):
        view = extract_bipartite(simple_two_label_graph, {"a", "nope"}, {"x"})
        assert view.left() == {"a"}
        assert view.num_edges() == 1
