"""Unit tests for network statistics (Table 3 machinery)."""

from __future__ import annotations

from repro.graph.generators import paper_example_graph
from repro.graph.statistics import (
    NetworkStatistics,
    compute_statistics,
    max_butterfly_degree,
    max_coreness,
    statistics_table,
)


class TestStatistics:
    def test_compute_statistics_on_paper_graph(self):
        g = paper_example_graph()
        stats = compute_statistics(g, name="figure-1")
        assert stats.name == "figure-1"
        assert stats.num_vertices == g.num_vertices()
        assert stats.num_edges == g.num_edges()
        assert stats.num_labels == 3
        assert stats.max_coreness >= 4
        assert stats.max_butterfly_degree >= 1
        assert stats.num_cross_edges > 0

    def test_max_coreness_matches_degeneracy(self):
        from repro.core.kcore import degeneracy

        g = paper_example_graph()
        assert max_coreness(g) == degeneracy(g)

    def test_max_butterfly_degree_explicit_pairs(self):
        g = paper_example_graph()
        value = max_butterfly_degree(g, label_pairs=[("SE", "UI")])
        assert value >= 1

    def test_extra_metrics_populated(self):
        stats = compute_statistics(paper_example_graph())
        assert stats.extra["avg_degree"] > 0
        assert 0 < stats.extra["cross_edge_fraction"] < 1

    def test_as_row_order(self):
        stats = NetworkStatistics("x", 1, 2, 3, 4, 5)
        assert stats.as_row() == ("x", 1, 2, 3, 4, 5)

    def test_statistics_table_formatting(self, tiny_baidu_bundle):
        rows = [
            compute_statistics(paper_example_graph(), name="figure-1"),
            compute_statistics(tiny_baidu_bundle.graph, name="baidu-tiny"),
        ]
        text = statistics_table(rows)
        assert "figure-1" in text
        assert "baidu-tiny" in text
        assert "k_max" in text
        assert len(text.splitlines()) == 4
