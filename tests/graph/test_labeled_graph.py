"""Unit tests for the LabeledGraph substrate."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFoundError, LabelError, VertexNotFoundError
from repro.graph.labeled_graph import LabeledGraph, union_graphs


def build_simple() -> LabeledGraph:
    g = LabeledGraph()
    g.add_vertex(1, label="A")
    g.add_vertex(2, label="A")
    g.add_vertex(3, label="B")
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    return g


class TestConstruction:
    def test_empty_graph(self):
        g = LabeledGraph()
        assert g.num_vertices() == 0
        assert g.num_edges() == 0
        assert list(g.edges()) == []

    def test_init_with_edges_and_labels(self):
        g = LabeledGraph(edges=[(1, 2), (2, 3)], labels={1: "A", 2: "A", 3: "B"})
        assert g.num_vertices() == 3
        assert g.num_edges() == 2
        assert g.label(3) == "B"

    def test_add_vertex_idempotent_label_update(self):
        g = LabeledGraph()
        g.add_vertex(1, label="A")
        g.add_vertex(1)
        assert g.label(1) == "A"
        g.add_vertex(1, label="B")
        assert g.label(1) == "B"

    def test_add_edge_creates_missing_vertices(self):
        g = LabeledGraph()
        g.add_edge("u", "v")
        assert "u" in g and "v" in g
        assert g.label("u") is None

    def test_add_edge_ignores_self_loop(self):
        g = LabeledGraph()
        g.add_vertex(1, label="A")
        g.add_edge(1, 1)
        assert g.num_edges() == 0

    def test_add_duplicate_edge_counts_once(self):
        g = build_simple()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.num_edges() == 2


class TestMutation:
    def test_remove_edge(self):
        g = build_simple()
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges() == 1

    def test_remove_missing_edge_raises(self):
        g = build_simple()
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 3)

    def test_remove_vertex_cleans_incident_edges(self):
        g = build_simple()
        g.remove_vertex(2)
        assert 2 not in g
        assert g.num_edges() == 0
        assert g.degree(1) == 0

    def test_remove_missing_vertex_raises(self):
        g = build_simple()
        with pytest.raises(VertexNotFoundError):
            g.remove_vertex(99)

    def test_remove_vertices_skips_absent(self):
        g = build_simple()
        g.remove_vertices([2, 99])
        assert g.num_vertices() == 2

    def test_set_label(self):
        g = build_simple()
        g.set_label(1, "Z")
        assert g.label(1) == "Z"
        with pytest.raises(VertexNotFoundError):
            g.set_label(42, "Z")


class TestQueries:
    def test_degree_and_neighbors(self):
        g = build_simple()
        assert g.degree(2) == 2
        assert g.neighbors(2) == {1, 3}
        with pytest.raises(VertexNotFoundError):
            g.degree(99)

    def test_max_degree(self):
        g = build_simple()
        assert g.max_degree() == 2
        assert LabeledGraph().max_degree() == 0

    def test_edges_iterated_once(self):
        g = build_simple()
        edges = {frozenset(e) for e in g.edges()}
        assert edges == {frozenset({1, 2}), frozenset({2, 3})}
        assert len(list(g.edges())) == 2

    def test_len_iter_contains(self):
        g = build_simple()
        assert len(g) == 3
        assert set(iter(g)) == {1, 2, 3}
        assert 1 in g and 42 not in g


class TestLabels:
    def test_labels_and_counts(self):
        g = build_simple()
        assert g.labels() == {"A", "B"}
        assert g.label_counts() == {"A": 2, "B": 1}
        assert g.vertices_with_label("A") == {1, 2}

    def test_label_map_is_copy(self):
        g = build_simple()
        mapping = g.label_map()
        mapping[1] = "Z"
        assert g.label(1) == "A"

    def test_cross_edge_classification(self):
        g = build_simple()
        assert not g.is_cross_edge(1, 2)
        assert g.is_cross_edge(2, 3)
        with pytest.raises(EdgeNotFoundError):
            g.is_cross_edge(1, 3)

    def test_cross_and_homogeneous_edge_iterators(self):
        g = build_simple()
        assert {frozenset(e) for e in g.cross_edges()} == {frozenset({2, 3})}
        assert {frozenset(e) for e in g.homogeneous_edges()} == {frozenset({1, 2})}

    def test_cross_and_same_label_neighbors(self):
        g = build_simple()
        assert g.cross_neighbors(2) == {3}
        assert g.same_label_neighbors(2) == {1}

    def test_require_labeled(self):
        g = build_simple()
        g.require_labeled()
        g.add_vertex(4)
        with pytest.raises(LabelError):
            g.require_labeled()


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = build_simple()
        clone = g.copy()
        clone.remove_vertex(1)
        assert 1 in g
        assert g.num_edges() == 2

    def test_equality(self):
        assert build_simple() == build_simple()
        other = build_simple()
        other.add_edge(1, 3)
        assert build_simple() != other

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(build_simple())

    def test_induced_subgraph(self):
        g = build_simple()
        sub = g.induced_subgraph([1, 2, 99])
        assert set(sub.vertices()) == {1, 2}
        assert sub.has_edge(1, 2)
        assert sub.label(1) == "A"

    def test_label_induced_subgraph(self):
        g = build_simple()
        sub = g.label_induced_subgraph("A")
        assert set(sub.vertices()) == {1, 2}
        assert sub.num_edges() == 1

    def test_merge_and_union(self):
        g1 = LabeledGraph(edges=[(1, 2)], labels={1: "A", 2: "A"})
        g2 = LabeledGraph(edges=[(2, 3)], labels={2: "A", 3: "B"})
        merged = union_graphs(g1, g2)
        assert merged.num_vertices() == 3
        assert merged.has_edge(1, 2) and merged.has_edge(2, 3)

    def test_require_vertices(self):
        g = build_simple()
        g.require_vertices([1, 2])
        with pytest.raises(VertexNotFoundError):
            g.require_vertices([1, 42])
