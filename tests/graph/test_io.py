"""Unit tests for graph readers and writers."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    read_communities,
    read_edge_list,
    read_json,
    read_label_file,
    read_labeled_graph,
    write_communities,
    write_edge_list,
    write_json,
    write_label_file,
)
from repro.graph.labeled_graph import LabeledGraph


def sample_graph() -> LabeledGraph:
    return LabeledGraph(
        edges=[(1, 2), (2, 3), (3, 1)], labels={1: "A", 2: "A", 3: "B"}
    )


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "edges.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded.num_vertices() == 3
        assert loaded.num_edges() == 3
        assert loaded.has_edge(1, 2)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n\n1 2\n2 3\n")
        g = read_edge_list(path)
        assert g.num_edges() == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)

    def test_string_vertices_preserved(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("alice bob\n")
        g = read_edge_list(path)
        assert g.has_edge("alice", "bob")


class TestLabelFile:
    def test_roundtrip_with_graph(self, tmp_path):
        g = sample_graph()
        edge_path = tmp_path / "edges.txt"
        label_path = tmp_path / "labels.txt"
        write_edge_list(g, edge_path)
        write_label_file(g, label_path)
        loaded = read_labeled_graph(edge_path, label_path)
        assert loaded.label(1) == "A"
        assert loaded.label(3) == "B"

    def test_labels_with_spaces(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("1 Machine Learning\n")
        labels = read_label_file(path)
        assert labels[1] == "Machine Learning"

    def test_label_file_adds_missing_vertices(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("7 A\n")
        g = LabeledGraph()
        read_label_file(path, graph=g)
        assert 7 in g and g.label(7) == "A"

    def test_malformed_label_line_raises(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("7\n")
        with pytest.raises(DatasetError):
            read_label_file(path)


class TestCommunities:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "cmty.txt"
        write_communities([[1, 2, 3], [4, 5]], path)
        loaded = read_communities(path)
        assert loaded == [[1, 2, 3], [4, 5]]

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "cmty.txt"
        path.write_text("# gt\n1 2\n")
        assert read_communities(path) == [[1, 2]]


class TestJson:
    def test_dict_roundtrip(self):
        g = sample_graph()
        payload = graph_to_dict(g)
        rebuilt = graph_from_dict(payload)
        assert rebuilt.num_vertices() == 3
        assert rebuilt.num_edges() == 3
        assert rebuilt.label(3) == "B"

    def test_file_roundtrip(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "graph.json"
        write_json(g, path)
        loaded = read_json(path)
        assert loaded.num_edges() == 3
        assert loaded.label(1) == "A"

    def test_missing_keys_raise(self):
        with pytest.raises(DatasetError):
            graph_from_dict({"vertices": {}})
