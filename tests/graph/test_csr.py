"""Unit tests for the CSR fast-path backend (repro.graph.csr)."""

from __future__ import annotations

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph.bipartite import extract_label_bipartite
from repro.graph.csr import (
    CSRBipartiteView,
    CSRGraph,
    VertexInterner,
    csr_bfs_distances,
    csr_k_core_alive,
)
from repro.graph.generators import paper_example_graph, random_bipartite_graph
from repro.graph.labeled_graph import LabeledGraph


class TestVertexInterner:
    def test_assigns_dense_ids_in_order(self):
        interner = VertexInterner()
        assert interner.intern_vertex("a") == 0
        assert interner.intern_vertex("b") == 1
        assert interner.intern_vertex("a") == 0
        assert len(interner) == 2
        assert interner.vertex_of(1) == "b"
        assert "b" in interner and "z" not in interner

    def test_identity_fast_path_for_dense_ints(self):
        interner = VertexInterner([0, 1, 2, 3])
        assert interner._identity
        assert interner.id_of(2) == 2
        assert interner.try_id_of(7) is None
        assert interner.try_id_of(True) is None  # bools are not vertex ids

    def test_identity_regime_degrades_gracefully(self):
        interner = VertexInterner([0, 1])
        assert interner.intern_vertex(2) == 2  # still dense
        assert interner.intern_vertex("x") == 3  # leaves the identity regime
        assert not interner._identity
        assert interner.id_of(1) == 1
        assert interner.id_of("x") == 3

    def test_unknown_vertex_raises(self):
        interner = VertexInterner(["a"])
        with pytest.raises(VertexNotFoundError):
            interner.id_of("missing")

    def test_label_interning(self):
        interner = VertexInterner()
        assert interner.intern_label("SE") == 0
        assert interner.intern_label("UI") == 1
        assert interner.intern_label("SE") == 0
        assert interner.label_of(1) == "UI"
        assert interner.num_labels() == 2


class TestCSRGraphFreezeThaw:
    def test_roundtrip_preserves_graph(self):
        g = paper_example_graph()
        frozen = CSRGraph.freeze(g)
        assert frozen.num_vertices() == g.num_vertices()
        assert frozen.num_edges() == g.num_edges()
        assert frozen.thaw() == g

    def test_ids_follow_iteration_order(self):
        g = paper_example_graph()
        frozen = CSRGraph.freeze(g)
        for i, v in enumerate(g.vertices()):
            assert frozen.id_of(v) == i
            assert frozen.vertex_of(i) == v
            assert frozen.degree(i) == g.degree(v)
            assert frozen.label_of_id(i) == g.label(v)

    def test_flat_arrays_are_consistent(self):
        g = paper_example_graph()
        frozen = CSRGraph.freeze(g)
        offsets, neighbors = frozen.adjacency_lists()
        assert list(frozen.offsets) == offsets  # lazy array matches list view
        assert list(frozen.neighbors) == neighbors
        assert offsets[0] == 0 and offsets[-1] == len(neighbors) == 2 * g.num_edges()
        for v in g.vertices():
            vid = frozen.id_of(v)
            ids = set(neighbors[offsets[vid] : offsets[vid + 1]])
            assert ids == {frozen.id_of(w) for w in g.neighbors(v)}

    def test_induced_freeze(self):
        g = paper_example_graph()
        keep = ["ql", "v1", "v2", "qr", "nonexistent"]
        frozen = CSRGraph.freeze(g, vertices=keep)
        assert frozen.thaw() == g.induced_subgraph(keep)

    def test_thaw_with_dead_mask(self):
        g = paper_example_graph()
        frozen = CSRGraph.freeze(g)
        dead = {frozen.id_of("ql"), frozen.id_of("z1")}
        survivors = [v for v in g.vertices() if v not in ("ql", "z1")]
        assert frozen.thaw(dead=dead) == g.induced_subgraph(survivors)

    def test_empty_graph(self):
        frozen = CSRGraph.freeze(LabeledGraph())
        assert frozen.num_vertices() == 0
        assert frozen.num_edges() == 0
        assert frozen.thaw() == LabeledGraph()
        assert csr_k_core_alive(frozen, 3) == bytearray()


class TestLabeledGraphFreezeCache:
    def test_freeze_is_cached_until_mutation(self):
        g = paper_example_graph()
        first = g.freeze()
        assert g.has_frozen()
        assert g.freeze() is first
        g.add_edge("v1", "u7")
        assert not g.has_frozen()
        second = g.freeze()
        assert second is not first
        assert second.num_edges() == first.num_edges() + 1

    def test_label_change_invalidates(self):
        g = paper_example_graph()
        first = g.freeze()
        g.set_label("z1", "SE")
        assert g.freeze() is not first

    def test_noop_mutations_keep_cache(self):
        g = paper_example_graph()
        first = g.freeze()
        g.add_vertex("ql")  # already present, no label change
        g.add_edge("ql", "qr")  # already present
        g.set_label("z1", g.label("z1"))  # same label
        assert g.freeze() is first


class TestCSRBipartiteView:
    def test_sides_and_edges(self):
        g = random_bipartite_graph(
            [f"l{i}" for i in range(5)], [f"r{i}" for i in range(7)], 0.5, seed=1
        )
        view = extract_label_bipartite(g, "L", "R")
        frozen = CSRBipartiteView.freeze(view)
        assert frozen.num_vertices() == view.num_vertices()
        assert frozen.num_edges() == view.num_edges()
        left = {frozen.vertex_of(i) for i in range(frozen.n_left)}
        assert left == view.left()
        for vid in range(frozen.num_vertices()):
            assert frozen.is_left(vid) == (vid < frozen.n_left)
            vertex = frozen.vertex_of(vid)
            assert frozen.degree(vid) == view.degree(vertex)

    def test_rank_sorted_is_idempotent(self):
        g = random_bipartite_graph(["a", "b"], ["x", "y", "z"], 0.9, seed=2)
        view = extract_label_bipartite(g, "L", "R")
        frozen = CSRBipartiteView.freeze(view)
        rank, rank_slices = frozen.rank_sorted()
        assert frozen.rank_sorted() == (rank, rank_slices)
        assert sorted(rank) == list(range(frozen.num_vertices()))
        for ranks in rank_slices:
            assert ranks == sorted(ranks)


class TestMaskedBFS:
    def test_dead_mask_restricts_traversal(self):
        g = LabeledGraph(edges=[(0, 1), (1, 2), (2, 3), (0, 4)])
        frozen = CSRGraph.freeze(g)
        dist = csr_bfs_distances(frozen, 0, dead={1})
        assert dist[0] == 0 and dist[4] == 1
        assert dist[1] == -1 and dist[2] == -1 and dist[3] == -1

    def test_max_depth(self):
        g = LabeledGraph(edges=[(0, 1), (1, 2), (2, 3)])
        frozen = CSRGraph.freeze(g)
        dist = csr_bfs_distances(frozen, 0, max_depth=2)
        assert dist == [0, 1, 2, -1]
