"""Unit tests for BFS traversal utilities."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.traversal import (
    INFINITE_DISTANCE,
    are_connected,
    bfs_distances,
    connected_component,
    connected_components,
    diameter,
    distance_between,
    eccentricity,
    farthest_vertices,
    graph_query_distance,
    is_connected,
    multi_source_bfs,
    query_distances,
    shortest_path,
    vertex_query_distance,
)


def path_graph(n: int) -> LabeledGraph:
    g = LabeledGraph()
    for i in range(n):
        g.add_vertex(i, label="A")
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def two_components() -> LabeledGraph:
    g = path_graph(4)
    g.add_vertex(10, label="B")
    g.add_vertex(11, label="B")
    g.add_edge(10, 11)
    return g


class TestBFS:
    def test_distances_on_path(self):
        g = path_graph(5)
        dist = bfs_distances(g, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_distances_respect_max_depth(self):
        g = path_graph(5)
        dist = bfs_distances(g, 0, max_depth=2)
        assert dist == {0: 0, 1: 1, 2: 2}

    def test_missing_source_raises(self):
        with pytest.raises(VertexNotFoundError):
            bfs_distances(path_graph(3), 99)

    def test_unreachable_vertices_omitted(self):
        g = two_components()
        dist = bfs_distances(g, 0)
        assert 10 not in dist and 11 not in dist


class TestMultiSourceBFS:
    def test_seeds_keep_given_levels(self):
        g = path_graph(5)
        dist = multi_source_bfs(g, {0: 0, 4: 0})
        assert dist[2] == 2
        assert dist[1] == 1 and dist[3] == 1

    def test_seed_with_offset_level(self):
        g = path_graph(4)
        dist = multi_source_bfs(g, {0: 5})
        assert dist[3] == 8

    def test_restrict_to_limits_assignment(self):
        g = path_graph(5)
        dist = multi_source_bfs(g, {0: 0}, restrict_to={1, 2})
        assert 3 not in dist and 4 not in dist
        assert dist[2] == 2

    def test_negative_seed_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            multi_source_bfs(g, {0: -1})

    def test_empty_seeds(self):
        assert multi_source_bfs(path_graph(3), {}) == {}

    def test_seed_not_in_graph_ignored(self):
        g = path_graph(3)
        dist = multi_source_bfs(g, {99: 0, 0: 0})
        assert dist[2] == 2


class TestPathsAndComponents:
    def test_shortest_path_endpoints(self):
        g = path_graph(4)
        assert shortest_path(g, 0, 3) == [0, 1, 2, 3]
        assert shortest_path(g, 2, 2) == [2]

    def test_shortest_path_disconnected(self):
        g = two_components()
        assert shortest_path(g, 0, 10) is None
        assert distance_between(g, 0, 10) == INFINITE_DISTANCE

    def test_distance_between(self):
        g = path_graph(4)
        assert distance_between(g, 0, 3) == 3

    def test_connected_components(self):
        g = two_components()
        components = connected_components(g)
        assert len(components) == 2
        assert {0, 1, 2, 3} in components and {10, 11} in components
        assert connected_component(g, 10) == {10, 11}

    def test_is_connected(self):
        assert is_connected(path_graph(3))
        assert not is_connected(two_components())
        assert not is_connected(LabeledGraph())

    def test_are_connected(self):
        g = two_components()
        assert are_connected(g, [0, 3])
        assert not are_connected(g, [0, 10])
        assert not are_connected(g, [0, 99])
        assert are_connected(g, [])


class TestQueryDistances:
    def test_query_distance_definition(self):
        g = path_graph(5)
        maps = query_distances(g, [0, 4])
        assert vertex_query_distance(maps, 2) == 2
        assert vertex_query_distance(maps, 0) == 4
        assert graph_query_distance(g, [0, 4], maps) == 4

    def test_query_distance_infinite_when_unreachable(self):
        g = two_components()
        maps = query_distances(g, [0])
        assert vertex_query_distance(maps, 10) == INFINITE_DISTANCE
        assert graph_query_distance(g, [0]) == INFINITE_DISTANCE

    def test_farthest_vertices_excludes_queries(self):
        g = path_graph(5)
        vertices, dist = farthest_vertices(g, [0])
        assert vertices == [4]
        assert dist == 4
        vertices, dist = farthest_vertices(g, [0, 4])
        assert set(vertices) == {1, 3}
        assert dist == 3

    def test_farthest_prefers_unreachable(self):
        g = two_components()
        vertices, dist = farthest_vertices(g, [0])
        assert set(vertices) == {10, 11}
        assert math.isinf(dist)


class TestDiameter:
    def test_path_diameter(self):
        assert diameter(path_graph(5)) == 4

    def test_single_vertex(self):
        g = LabeledGraph()
        g.add_vertex(1)
        assert diameter(g) == 0
        assert diameter(LabeledGraph()) == 0

    def test_disconnected_diameter_is_infinite(self):
        assert diameter(two_components()) == INFINITE_DISTANCE

    def test_eccentricity(self):
        g = path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2
