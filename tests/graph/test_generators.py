"""Unit tests for the generic graph generators (including paper figures)."""

from __future__ import annotations

import pytest

from repro.core.butterfly import butterfly_degrees
from repro.core.kcore import core_decomposition
from repro.exceptions import DatasetError
from repro.graph.bipartite import extract_label_bipartite
from repro.graph.generators import (
    attach_cross_edges,
    ensure_butterfly,
    labeled_clique,
    labeled_core_group,
    paper_example_graph,
    paper_small_example_graph,
    planted_partition_graph,
    random_bipartite_graph,
    random_labeled_graph,
)
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.traversal import is_connected


class TestPaperExampleGraph:
    """The Figure 1 reconstruction must reproduce the facts stated in the paper."""

    def test_three_labels(self):
        g = paper_example_graph()
        assert g.labels() == {"SE", "UI", "PM"}

    def test_query_coreness_matches_paper(self):
        g = paper_example_graph()
        se = core_decomposition(g.label_induced_subgraph("SE"))
        ui = core_decomposition(g.label_induced_subgraph("UI"))
        assert se["ql"] == 4
        assert ui["qr"] == 3

    def test_every_vertex_has_degree_at_least_three(self):
        g = paper_example_graph()
        assert all(g.degree(v) >= 3 for v in g.vertices())

    def test_butterfly_between_leader_pairs(self):
        g = paper_example_graph()
        bipartite = extract_label_bipartite(g, "SE", "UI")
        degrees = butterfly_degrees(bipartite)
        assert degrees["ql"] == 1
        assert degrees["qr"] == 1
        assert degrees["v5"] == 1
        assert degrees["u3"] == 1

    def test_graph_connected(self):
        assert is_connected(paper_example_graph())


class TestPaperSmallExampleGraph:
    """The Figure 3 reconstruction must reproduce Examples 4-6 facts."""

    def test_butterfly_degrees_match_example_5(self):
        g = paper_small_example_graph()
        bipartite = extract_label_bipartite(g, "L", "R")
        degrees = butterfly_degrees(bipartite)
        assert degrees["v1"] == 6
        assert degrees["v3"] == 6
        for u in ("u2", "u3", "u5", "u6"):
            assert degrees[u] == 3
        assert degrees["ql"] == 0

    def test_u9_is_farthest_from_ql(self):
        from repro.graph.traversal import bfs_distances

        g = paper_small_example_graph()
        dist = bfs_distances(g, "ql")
        assert dist["u9"] == 4
        assert max(dist.values()) == 4


class TestBuildingBlocks:
    def test_labeled_clique(self):
        g = labeled_clique(5, "X", prefix="n")
        assert g.num_vertices() == 5
        assert g.num_edges() == 10
        assert g.labels() == {"X"}

    def test_labeled_clique_rejects_empty(self):
        with pytest.raises(DatasetError):
            labeled_clique(0, "X")

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_labeled_core_group_min_degree(self, k):
        vertices = [f"v{i}" for i in range(max(8, k + 2))]
        g = labeled_core_group(vertices, "X", k, seed=1)
        assert all(g.degree(v) >= k for v in g.vertices())
        assert is_connected(g)

    def test_labeled_core_group_rejects_impossible_k(self):
        with pytest.raises(DatasetError):
            labeled_core_group(["a", "b"], "X", 5)

    def test_random_bipartite_graph_only_cross_edges(self):
        g = random_bipartite_graph(list(range(5)), list(range(10, 15)), 0.5, seed=2)
        for u, v in g.edges():
            assert g.label(u) != g.label(v)

    def test_random_labeled_graph_labels(self):
        g = random_labeled_graph(30, 0.2, ["A", "B", "C"], seed=3)
        assert g.num_vertices() == 30
        assert g.labels() <= {"A", "B", "C"}

    def test_random_labeled_graph_validation(self):
        with pytest.raises(DatasetError):
            random_labeled_graph(5, 0.1, [])
        with pytest.raises(DatasetError):
            random_labeled_graph(-1, 0.1, ["A"])


class TestPlantedPartition:
    def test_community_sizes_respected(self):
        g, communities = planted_partition_graph([10, 15, 20], 0.5, 0.01, seed=4)
        assert [len(c) for c in communities] == [10, 15, 20]
        assert g.num_vertices() == 45

    def test_determinism_with_same_seed(self):
        g1, _ = planted_partition_graph([10, 10], 0.5, 0.02, seed=5)
        g2, _ = planted_partition_graph([10, 10], 0.5, 0.02, seed=5)
        assert g1 == g2

    def test_intra_density_exceeds_inter_density(self):
        g, communities = planted_partition_graph([20, 20], 0.6, 0.02, seed=6)
        intra = sum(
            1 for u, v in g.edges() if any(u in c and v in c for c in map(set, communities))
        )
        inter = g.num_edges() - intra
        assert intra > inter

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(DatasetError):
            planted_partition_graph([5], 0.1, 0.5)
        with pytest.raises(DatasetError):
            planted_partition_graph([], 0.5, 0.1)

    def test_label_for_community_callback(self):
        g, communities = planted_partition_graph(
            [5, 5], 1.0, 0.0, seed=7, label_for_community=lambda i: f"C{i}"
        )
        assert g.label(communities[0][0]) == "C0"
        assert g.label(communities[1][0]) == "C1"


class TestEdgeHelpers:
    def test_attach_cross_edges_fraction(self):
        g = LabeledGraph()
        left = [f"l{i}" for i in range(5)]
        right = [f"r{i}" for i in range(5)]
        for v in left:
            g.add_vertex(v, label="L")
        for v in right:
            g.add_vertex(v, label="R")
        added = attach_cross_edges(g, left, right, 0.2, seed=8)
        assert added == 5
        assert g.num_edges() == 5

    def test_attach_cross_edges_rejects_negative_fraction(self):
        with pytest.raises(DatasetError):
            attach_cross_edges(LabeledGraph(), [], [], -0.1)

    def test_ensure_butterfly(self):
        g = LabeledGraph()
        for v, lab in (("a", "L"), ("b", "L"), ("x", "R"), ("y", "R")):
            g.add_vertex(v, label=lab)
        ensure_butterfly(g, ("a", "b"), ("x", "y"))
        assert g.num_edges() == 4
        bipartite = extract_label_bipartite(g, "L", "R")
        assert butterfly_degrees(bipartite)["a"] == 1
