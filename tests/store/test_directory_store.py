"""Store-backed serving: directory attach, shard spill, gateway state."""

from __future__ import annotations

import pytest

from repro.api import BCCEngine, Query
from repro.datasets import load_dataset
from repro.serving import GraphDirectory, ShardedBCCEngine
from repro.server import Gateway
from repro.store import SnapshotStore

from tests.store.conftest import multi_component_graph


def _responses(engine, queries, method="lp-bcc"):
    out = []
    for pair in queries:
        response = engine.search(Query(vertices=pair, method=method))
        community = (
            sorted(map(str, response.community)) if response.community else None
        )
        out.append((response.status, response.reason, community))
    return out


# ----------------------------------------------------------------------
# directory attach-or-build
# ----------------------------------------------------------------------
class TestDirectoryStore:
    def test_second_directory_attaches_without_freezing(self, tmp_path):
        store_root = tmp_path / "store"
        first = GraphDirectory(store=store_root, sharded=False)
        built = first.add("baidu", load_dataset("baidu-tiny", seed=7))
        assert built.counters_snapshot()["csr_freezes"] == 1
        assert first.store_summary()["modes"] == {"baidu": "built"}

        second = GraphDirectory(store=store_root, sharded=False)
        attached = second.add("baidu", load_dataset("baidu-tiny", seed=7))
        counters = attached.counters_snapshot()
        assert counters["csr_freezes"] == 0
        summary = second.store_summary()
        assert summary["modes"] == {"baidu": "attached"}
        assert summary["counters"]["attaches"] == 1
        assert summary["counters"]["builds"] == 0

    def test_attached_serving_parity_with_built(self, tmp_path):
        store_root = tmp_path / "store"
        bundle = load_dataset("baidu-tiny", seed=7)
        reference = BCCEngine(bundle.graph).prepare()
        labels = bundle.graph.label_map()
        vertices = sorted(bundle.graph.vertices(), key=str)
        queries = [
            (a, b)
            for a in vertices[:12]
            for b in vertices[:12]
            if str(a) < str(b) and labels[a] != labels[b]
        ][:8]

        first = GraphDirectory(store=store_root, sharded=False)
        first.add("baidu", load_dataset("baidu-tiny", seed=7))
        second = GraphDirectory(store=store_root, sharded=False)
        attached = second.add("baidu", load_dataset("baidu-tiny", seed=7))

        for method in ("lp-bcc", "l2p-bcc"):
            assert _responses(attached, queries, method) == _responses(
                reference, queries, method
            )

    def test_mismatch_falls_back_to_rebuild(self, tmp_path):
        store_root = tmp_path / "store"
        first = GraphDirectory(store=store_root, sharded=False)
        first.add("baidu", load_dataset("baidu-tiny", seed=7))
        # A different seed is a different graph: the stored snapshot must
        # be rejected and silently repaired by a rebuild + persist.
        second = GraphDirectory(store=store_root, sharded=False)
        engine = second.add("baidu", load_dataset("baidu-tiny", seed=8))
        assert engine.counters_snapshot()["csr_freezes"] == 1
        summary = second.store_summary()
        assert summary["modes"] == {"baidu": "built"}
        assert summary["counters"]["mismatches"] == 1
        # ... and the repaired snapshot now matches seed 8.
        third = GraphDirectory(store=store_root, sharded=False)
        attached = third.add("baidu", load_dataset("baidu-tiny", seed=8))
        assert attached.counters_snapshot()["csr_freezes"] == 0

    def test_corrupted_snapshot_counts_invalid_and_rebuilds(self, tmp_path):
        store_root = tmp_path / "store"
        store = SnapshotStore(store_root)
        first = GraphDirectory(store=store, sharded=False)
        first.add("baidu", load_dataset("baidu-tiny", seed=7))
        path = store.graph_path("baidu")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        second = GraphDirectory(store=store, sharded=False)
        engine = second.add("baidu", load_dataset("baidu-tiny", seed=7))
        assert engine.counters_snapshot()["csr_freezes"] == 1
        assert store.counters_snapshot()["invalid"] == 1

    def test_store_block_in_stats_payload(self, tmp_path):
        directory = GraphDirectory(store=tmp_path / "store", sharded=False)
        directory.add("baidu", load_dataset("baidu-tiny", seed=7))
        payload = directory.stats_payload()
        assert payload["store"]["root"] == str(tmp_path / "store")
        assert payload["graphs"]["baidu"]["store"] == {"mode": "built"}
        # Without a store the block is explicitly None, not missing.
        bare = GraphDirectory(sharded=False)
        bare.add("baidu", load_dataset("baidu-tiny", seed=7))
        assert bare.stats_payload()["store"] is None


# ----------------------------------------------------------------------
# bounded-memory shard serving (the PR 4 follow-up)
# ----------------------------------------------------------------------
class TestShardSpill:
    def test_budget_of_two_serves_four_shards(self, tmp_path):
        graph, queries = multi_component_graph(4)
        reference = ShardedBCCEngine(graph)
        expected = _responses(reference, queries)
        assert any(status == "ok" for status, _, _ in expected)

        graph2, _ = multi_component_graph(4)
        directory = GraphDirectory(store=tmp_path / "store")
        engine = directory.add("four", graph2, max_resident_shards=2)
        assert engine.shard_count() == 4

        # Two passes over all four shards: every query answers exactly as
        # the unbounded engine, while at most 2 engines are ever resident.
        for _ in range(2):
            assert _responses(engine, queries) == expected
            assert len(engine.shards_built()) <= 2

        stats = engine.stats(name="four")
        assert stats.store["enabled"] is True
        assert stats.store["max_resident_shards"] == 2
        assert len(stats.store["resident_shards"]) <= 2
        assert stats.store["evictions"] >= 2
        # The second pass pages evicted shards back from disk, not rebuilds.
        assert stats.store["attaches"] >= 2
        assert stats.counters["shard_engines_built"] == 4

    def test_lru_keeps_hot_shard_resident(self, tmp_path):
        graph, queries = multi_component_graph(3)
        directory = GraphDirectory(store=tmp_path / "store")
        engine = directory.add("three", graph, max_resident_shards=2)
        hot = queries[0]
        hot_shard = engine.shard_of(hot[0])
        for cold in queries[1:]:
            engine.search(Query(vertices=hot, method="lp-bcc"))
            engine.search(Query(vertices=cold, method="lp-bcc"))
        # The hot shard was re-used between every cold page-in, so LRU
        # must never have evicted it.
        assert hot_shard in engine.shards_built()

    def test_eviction_without_store_rebuilds(self):
        graph, queries = multi_component_graph(3)
        engine = ShardedBCCEngine(graph, max_resident_shards=1)
        expected = _responses(ShardedBCCEngine(graph), queries)
        for _ in range(2):
            assert _responses(engine, queries) == expected
            assert len(engine.shards_built()) <= 1
        counters = engine.counters_snapshot()
        assert counters["shard_evictions"] >= 4
        assert counters["shard_attaches"] == 0  # no store: page-back = rebuild
        assert counters["shard_engines_built"] >= 5
        stats = engine.stats()
        assert stats.store["enabled"] is False
        assert stats.store["max_resident_shards"] == 1

    def test_budget_validation(self):
        graph, _ = multi_component_graph(2)
        with pytest.raises(ValueError, match="max_resident_shards"):
            ShardedBCCEngine(graph, max_resident_shards=0)

    def test_second_process_attaches_shards(self, tmp_path):
        graph, queries = multi_component_graph(3)
        directory = GraphDirectory(store=tmp_path / "store")
        engine = directory.add("three", graph)
        _responses(engine, queries)  # builds + persists all three shards
        assert engine.counters_snapshot()["shard_persists"] == 3

        graph2, _ = multi_component_graph(3)
        restarted = GraphDirectory(store=tmp_path / "store")
        engine2 = restarted.add("three", graph2)
        assert _responses(engine2, queries) == _responses(engine, queries)
        counters = engine2.counters_snapshot()
        assert counters["shard_attaches"] == 3
        assert counters["shard_engines_built"] == 0


# ----------------------------------------------------------------------
# gateway surfaces
# ----------------------------------------------------------------------
class TestGatewayStoreState:
    def test_healthz_and_stats_carry_store_state(self, tmp_path):
        directory = GraphDirectory(store=tmp_path / "store", sharded=False)
        directory.add("baidu", load_dataset("baidu-tiny", seed=7))
        gateway = Gateway(directory)
        health = gateway.health_payload()
        assert health["store"]["root"] == str(tmp_path / "store")
        assert health["store"]["modes"] == {"baidu": "built"}
        assert health["store"]["counters"]["persists"] == 1
        payload = directory.stats_payload()
        assert payload["graphs"]["baidu"]["store"] == {"mode": "built"}

    def test_gateway_restart_attaches_over_http(self, tmp_path):
        from repro.server import GatewayClient

        store_root = tmp_path / "store"
        queries = None
        responses_before = None

        first_dir = GraphDirectory(store=store_root, sharded=False)
        first_dir.add("baidu", load_dataset("baidu-tiny", seed=7))
        bundle = load_dataset("baidu-tiny", seed=7)
        labels = bundle.graph.label_map()
        vertices = sorted(bundle.graph.vertices(), key=str)
        queries = [
            (a, b)
            for a in vertices[:10]
            for b in vertices[:10]
            if str(a) < str(b) and labels[a] != labels[b]
        ][:5]
        with Gateway(first_dir) as gateway:
            client = GatewayClient(gateway.url)
            responses_before = [
                client.search("baidu", Query(vertices=pair, method="l2p-bcc"))
                for pair in queries
            ]

        # "Restart": a fresh directory + gateway over the same store root.
        second_dir = GraphDirectory(store=store_root, sharded=False)
        engine = second_dir.add("baidu", load_dataset("baidu-tiny", seed=7))
        assert engine.counters_snapshot()["csr_freezes"] == 0
        with Gateway(second_dir) as gateway:
            client = GatewayClient(gateway.url)
            health = client.healthz()
            assert health["store"]["modes"] == {"baidu": "attached"}
            responses_after = [
                client.search("baidu", Query(vertices=pair, method="l2p-bcc"))
                for pair in queries
            ]
        for before, after in zip(responses_before, responses_after):
            assert after.status == before.status
            before_community = (
                sorted(map(str, before.community)) if before.community else None
            )
            after_community = (
                sorted(map(str, after.community)) if after.community else None
            )
            assert after_community == before_community
