"""In-process tests for the ``python -m repro.store`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.store.__main__ import main


def _run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    payload = json.loads(captured.out) if captured.out.strip() else None
    return code, payload, captured.err


class TestBuild:
    def test_build_monolithic(self, tmp_path, capsys):
        code, payload, _ = _run(
            capsys, "build", "baidu-tiny", str(tmp_path), "--seed", "7"
        )
        assert code == 0
        assert payload["name"] == "baidu-tiny"
        assert payload["sharded"] is False
        assert len(payload["written"]) == 1
        assert payload["store"]["counters"]["persists"] == 0  # direct write
        assert (tmp_path / "baidu-tiny" / "graph.bccsnap").is_file()

    def test_build_sharded(self, tmp_path, capsys):
        code, payload, _ = _run(
            capsys,
            "build", "baidu-tiny", str(tmp_path),
            "--seed", "7", "--name", "bd", "--sharded",
        )
        assert code == 0
        assert payload["sharded"] is True
        assert len(payload["written"]) >= 1
        shard_files = sorted((tmp_path / "bd").glob("shard-*.bccsnap"))
        assert [str(p) for p in shard_files] == payload["written"]

    def test_build_unknown_dataset_exits_2(self, tmp_path, capsys):
        code, payload, err = _run(capsys, "build", "no-such-dataset", str(tmp_path))
        assert code == 2
        assert payload is None
        assert "error:" in err


class TestInspect:
    def test_inspect_reports_segments(self, tmp_path, capsys):
        _run(capsys, "build", "baidu-tiny", str(tmp_path), "--seed", "7")
        code, payload, _ = _run(capsys, "inspect", str(tmp_path))
        assert code == 0
        (doc,) = payload["snapshots"]
        assert doc["format_version"] == 1
        segment_names = {seg["name"] for seg in doc["segments"]}
        assert {"offsets", "neighbors", "labels", "coreness"} <= segment_names

    def test_inspect_empty_store_exits_2(self, tmp_path, capsys):
        code, _, err = _run(capsys, "inspect", str(tmp_path))
        assert code == 2
        assert "no snapshots" in err


class TestVerify:
    def test_verify_clean_store(self, tmp_path, capsys):
        _run(capsys, "build", "baidu-tiny", str(tmp_path), "--seed", "7")
        code, payload, _ = _run(capsys, "verify", str(tmp_path))
        assert code == 0
        assert payload["ok"] is True
        assert payload["failures"] == 0

    def test_verify_corrupted_store_exits_1(self, tmp_path, capsys):
        _run(capsys, "build", "baidu-tiny", str(tmp_path), "--seed", "7")
        path = tmp_path / "baidu-tiny" / "graph.bccsnap"
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF
        path.write_bytes(bytes(data))
        code, payload, _ = _run(capsys, "verify", str(tmp_path))
        assert code == 1
        assert payload["ok"] is False
        (entry,) = payload["snapshots"]
        assert "checksum" in entry["error"]

    def test_verify_deep_matches(self, tmp_path, capsys):
        _run(capsys, "build", "baidu-tiny", str(tmp_path), "--seed", "7")
        code, payload, _ = _run(
            capsys,
            "verify", str(tmp_path),
            "--deep", "--dataset", "baidu-tiny", "--seed", "7",
        )
        assert code == 0
        assert payload["ok"] is True

    def test_verify_deep_detects_wrong_seed(self, tmp_path, capsys):
        _run(capsys, "build", "baidu-tiny", str(tmp_path), "--seed", "7")
        code, payload, _ = _run(
            capsys,
            "verify", str(tmp_path),
            "--deep", "--dataset", "baidu-tiny", "--seed", "8",
        )
        assert code == 1
        (entry,) = payload["snapshots"]
        assert "fingerprint mismatch" in entry["error"]

    def test_verify_deep_without_dataset_exits_2(self, tmp_path, capsys):
        _run(capsys, "build", "baidu-tiny", str(tmp_path), "--seed", "7")
        code, _, err = _run(capsys, "verify", str(tmp_path), "--deep")
        assert code == 2
        assert "--dataset" in err


class TestRoundTripViaCli:
    def test_built_store_attaches_in_directory(self, tmp_path, capsys):
        from repro.datasets import load_dataset
        from repro.serving import GraphDirectory

        _run(capsys, "build", "baidu-tiny", str(tmp_path), "--seed", "7")
        directory = GraphDirectory(store=tmp_path, sharded=False)
        engine = directory.add("baidu-tiny", load_dataset("baidu-tiny", seed=7))
        assert engine.counters_snapshot()["csr_freezes"] == 0
        assert directory.store_summary()["modes"] == {"baidu-tiny": "attached"}
