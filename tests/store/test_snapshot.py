"""Snapshot format tests: round-trip equality, rejection, attach parity."""

from __future__ import annotations

import os

import pytest

from repro.api import BCCEngine, Query
from repro.datasets import load_dataset
from repro.exceptions import SnapshotMismatchError, StoreError
from repro.graph.generators import paper_example_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.store import (
    Snapshot,
    SnapshotWriter,
    attach_engine,
    persist_engine,
)

METHODS = ("online-bcc", "lp-bcc", "l2p-bcc", "psa")


def _write_paper_snapshot(tmp_path):
    graph = paper_example_graph()
    engine = BCCEngine(graph).prepare()
    path = tmp_path / "graph.bccsnap"
    persist_engine(engine, path)
    return graph, engine, path


def _query_pairs(graph: LabeledGraph, limit: int = 6):
    labels = graph.label_map()
    vertices = sorted(graph.vertices(), key=str)
    pairs = []
    for a in vertices:
        for b in vertices:
            if str(a) < str(b) and labels[a] != labels[b]:
                pairs.append((a, b))
                if len(pairs) == limit:
                    return pairs
    return pairs


# ----------------------------------------------------------------------
# round-trip equality
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_arrays_survive_value_for_value(self, tmp_path):
        graph, _, path = _write_paper_snapshot(tmp_path)
        csr = graph.freeze()
        offs, nbrs = csr.adjacency_lists()
        with Snapshot(path) as snapshot:
            assert list(snapshot.segment("offsets")) == list(offs)
            assert list(snapshot.segment("neighbors")) == list(nbrs)
            assert list(snapshot.segment("labels")) == list(csr.labels)
            assert list(snapshot.segment("coreness")) == csr.coreness()
            assert snapshot.vertices() == list(graph.vertices())

    def test_attached_csr_equals_frozen(self, tmp_path):
        graph, _, path = _write_paper_snapshot(tmp_path)
        frozen = graph.freeze()
        snapshot = Snapshot(path)
        attached = snapshot.as_csr_graph()
        assert attached.num_vertices() == frozen.num_vertices()
        assert attached.num_edges() == frozen.num_edges()
        assert attached.adjacency_lists() == frozen.adjacency_lists()
        assert list(attached.labels) == list(frozen.labels)
        assert attached.coreness() == frozen.coreness()
        assert attached.interner.vertices() == frozen.interner.vertices()

    def test_index_replay_matches_rebuild(self, tmp_path):
        graph, engine, path = _write_paper_snapshot(tmp_path)
        rebuilt = engine.ensure_index()
        fresh = load_dataset  # noqa: F841  (documents intent: a new process)
        graph2 = paper_example_graph()
        attached = attach_engine(graph2, Snapshot(path))
        replayed = attached.ensure_index()
        assert replayed.coreness_map() == rebuilt.coreness_map()
        assert replayed.max_coreness() == rebuilt.max_coreness()
        labels = sorted(graph.labels(), key=str)
        for i, left in enumerate(labels):
            for right in labels[i + 1 :]:
                assert replayed.butterfly_degrees_for(
                    left, right
                ) == rebuilt.butterfly_degrees_for(left, right)
                assert replayed.max_butterfly_degree(
                    left, right
                ) == rebuilt.max_butterfly_degree(left, right)

    @pytest.mark.parametrize("method", METHODS)
    def test_search_parity_rebuilt_vs_attached(self, tmp_path, method):
        graph, engine, path = _write_paper_snapshot(tmp_path)
        graph2 = paper_example_graph()
        attached = attach_engine(graph2, Snapshot(path))
        assert attached.counters_snapshot()["csr_freezes"] == 0
        for pair in _query_pairs(graph):
            query = Query(vertices=pair, method=method)
            expected = engine.search(query)
            actual = attached.search(query)
            assert actual.status == expected.status
            assert actual.reason == expected.reason
            expected_community = (
                sorted(map(str, expected.community)) if expected.community else None
            )
            actual_community = (
                sorted(map(str, actual.community)) if actual.community else None
            )
            assert actual_community == expected_community

    def test_dataset_snapshot_round_trip(self, tmp_path):
        bundle = load_dataset("baidu-tiny", seed=7)
        engine = BCCEngine(bundle.graph).prepare()
        path = tmp_path / "baidu.bccsnap"
        persist_engine(engine, path)
        bundle2 = load_dataset("baidu-tiny", seed=7)
        attached = attach_engine(bundle2.graph, Snapshot(path))
        assert attached.ensure_index().coreness_map() == (
            engine.ensure_index().coreness_map()
        )

    def test_butterfly_pairs_none_still_serves(self, tmp_path):
        graph = paper_example_graph()
        path = tmp_path / "lean.bccsnap"
        SnapshotWriter(path, butterfly_pairs="none").write(graph)
        graph2 = paper_example_graph()
        attached = attach_engine(graph2, Snapshot(path))
        reference = BCCEngine(paper_example_graph()).prepare()
        query = Query(vertices=_query_pairs(graph)[0], method="l2p-bcc")
        assert attached.search(query).status == reference.search(query).status


# ----------------------------------------------------------------------
# rejection: corruption, truncation, version skew, mismatch
# ----------------------------------------------------------------------
class TestRejection:
    def test_not_a_snapshot(self, tmp_path):
        path = tmp_path / "junk.bccsnap"
        path.write_bytes(b"definitely not a snapshot file, but long enough")
        with pytest.raises(StoreError, match="not a snapshot"):
            Snapshot(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.bccsnap"
        path.write_bytes(b"")
        with pytest.raises(StoreError):
            Snapshot(path)

    def test_truncation_rejected(self, tmp_path):
        _, _, path = _write_paper_snapshot(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 64])
        with pytest.raises(StoreError, match="truncated"):
            Snapshot(path)

    def test_segment_corruption_rejected(self, tmp_path):
        _, _, path = _write_paper_snapshot(tmp_path)
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF  # flip a bit inside the last segment
        path.write_bytes(bytes(data))
        with pytest.raises(StoreError, match="checksum mismatch"):
            Snapshot(path)

    def test_header_corruption_rejected(self, tmp_path):
        _, _, path = _write_paper_snapshot(tmp_path)
        data = bytearray(path.read_bytes())
        data[40] ^= 0xFF  # inside the JSON header
        path.write_bytes(bytes(data))
        with pytest.raises(StoreError, match="header"):
            Snapshot(path)

    def test_format_version_skew_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.store.snapshot.FORMAT_VERSION", 999)
        graph = paper_example_graph()
        path = tmp_path / "future.bccsnap"
        SnapshotWriter(path).write(graph)
        monkeypatch.undo()
        with pytest.raises(StoreError, match="format version 999"):
            Snapshot(path)

    def test_mismatched_graph_rejected(self, tmp_path):
        _, _, path = _write_paper_snapshot(tmp_path)
        other = paper_example_graph()
        vertices = sorted(map(str, other.vertices()))
        missing = next(
            (a, b)
            for a in vertices
            for b in vertices
            if a < b and not other.has_edge(a, b)
        )
        other.add_edge(*missing)
        snapshot = Snapshot(path)
        reason = snapshot.mismatch_reason(other)
        assert reason is not None
        with pytest.raises(SnapshotMismatchError):
            attach_engine(other, snapshot)

    def test_non_scalar_vertices_rejected_at_write(self, tmp_path):
        graph = LabeledGraph()
        graph.add_vertex(("tuple", "vertex"), label="A")
        with pytest.raises(StoreError, match="JSON scalars"):
            SnapshotWriter(tmp_path / "bad.bccsnap").write(graph)

    def test_failed_write_leaves_no_partial_file(self, tmp_path):
        graph = LabeledGraph()
        graph.add_vertex("ok", label="A")
        graph.add_vertex(("bad",), label="A")
        path = tmp_path / "atomic.bccsnap"
        with pytest.raises(StoreError):
            SnapshotWriter(path).write(graph)
        assert not path.exists()
        assert not any(p.name.endswith(".tmp") for p in tmp_path.iterdir())


# ----------------------------------------------------------------------
# attach mechanics
# ----------------------------------------------------------------------
class TestAttach:
    def test_attach_freezes_nothing(self, tmp_path):
        _, _, path = _write_paper_snapshot(tmp_path)
        graph = paper_example_graph()
        assert not graph.has_frozen()
        engine = attach_engine(graph, Snapshot(path))
        assert graph.has_frozen()
        counters = engine.counters_snapshot()
        assert counters["csr_freezes"] == 0
        assert counters["prepare_calls"] == 1

    def test_mutation_after_attach_invalidates(self, tmp_path):
        _, _, path = _write_paper_snapshot(tmp_path)
        graph = paper_example_graph()
        engine = attach_engine(graph, Snapshot(path))
        query = Query(vertices=_query_pairs(graph)[0], method="lp-bcc")
        before = engine.search(query)
        victims = sorted(map(str, graph.vertices()))[:2]
        graph.add_vertex("brand-new", label=graph.label(victims[0]))
        graph.add_edge("brand-new", victims[0])
        after = engine.search(query)  # must not serve stale mapped arrays
        assert engine.counters_snapshot()["invalidations"] == 1
        assert after.status in ("ok", "empty")
        assert before.status in ("ok", "empty")

    def test_empty_graph_round_trips(self, tmp_path):
        graph = LabeledGraph()
        path = tmp_path / "empty-graph.bccsnap"
        SnapshotWriter(path).write(graph)
        with Snapshot(path) as snapshot:
            assert snapshot.matches(graph)
            assert list(snapshot.segment("offsets")) == [0]
            assert list(snapshot.segment("neighbors")) == []

    def test_write_is_atomic_replace(self, tmp_path):
        graph, _, path = _write_paper_snapshot(tmp_path)
        first = path.read_bytes()
        engine = BCCEngine(graph).prepare()
        persist_engine(engine, path)  # overwrite in place
        assert path.read_bytes() == first  # deterministic content
        assert not any(
            name.endswith(".tmp") for name in os.listdir(path.parent)
        )
