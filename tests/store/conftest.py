"""Shared fixtures for the persistent-store tests."""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.graph.generators import paper_example_graph
from repro.graph.labeled_graph import LabeledGraph


def dense_two_label_component(prefix: str, labels=("SE", "UI")) -> LabeledGraph:
    """One connected component dense enough for BCC answers to exist.

    Two 3-cliques (one per label) plus a 2x2 cross biclique — the same
    shape the serving tests use, so ``lp-bcc`` finds a community inside it.
    """
    graph = LabeledGraph()
    lefts = [f"{prefix}:s{i}" for i in range(3)]
    rights = [f"{prefix}:u{i}" for i in range(3)]
    for vertex in lefts:
        graph.add_vertex(vertex, label=labels[0])
    for vertex in rights:
        graph.add_vertex(vertex, label=labels[1])
    for bucket in (lefts, rights):
        for a in bucket:
            for b in bucket:
                if a < b:
                    graph.add_edge(a, b)
    for a in lefts[:2]:
        for b in rights[:2]:
            graph.add_edge(a, b)
    return graph


def multi_component_graph(parts: int) -> Tuple[LabeledGraph, List[Tuple[str, str]]]:
    """``parts`` disjoint dense components + one in-component query per part."""
    graph = LabeledGraph()
    queries: List[Tuple[str, str]] = []
    for index in range(parts):
        prefix = f"c{index}"
        graph.merge(dense_two_label_component(prefix))
        queries.append((f"{prefix}:s0", f"{prefix}:u0"))
    return graph, queries


@pytest.fixture
def paper_graph() -> LabeledGraph:
    """The Figure 1 running-example graph (SE / UI / PM labels)."""
    return paper_example_graph()
