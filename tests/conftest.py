"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datasets import (
    generate_academic_network,
    generate_baidu_network,
    generate_fiction_network,
    generate_flight_network,
    generate_snap_like,
    generate_trade_network,
)
from repro.graph.generators import paper_example_graph, paper_small_example_graph
from repro.graph.labeled_graph import LabeledGraph


@pytest.fixture
def paper_graph() -> LabeledGraph:
    """The Figure 1 running-example graph (SE / UI / PM labels)."""
    return paper_example_graph()


@pytest.fixture
def small_graph() -> LabeledGraph:
    """The Figure 3 example graph used by Algorithms 5-7 walkthroughs."""
    return paper_small_example_graph()


@pytest.fixture
def simple_two_label_graph() -> LabeledGraph:
    """A tiny hand-built 2-label graph with one obvious butterfly.

    Left label "L" = {a, b, c} forming a triangle; right label "R" = {x, y, z}
    forming a triangle; cross edges make (a, b) x (x, y) a butterfly, with an
    extra pendant cross edge (c, z).
    """
    g = LabeledGraph()
    for v in ("a", "b", "c"):
        g.add_vertex(v, label="L")
    for v in ("x", "y", "z"):
        g.add_vertex(v, label="R")
    for u, v in (("a", "b"), ("b", "c"), ("a", "c"), ("x", "y"), ("y", "z"), ("x", "z")):
        g.add_edge(u, v)
    for u, v in (("a", "x"), ("a", "y"), ("b", "x"), ("b", "y"), ("c", "z")):
        g.add_edge(u, v)
    return g


@pytest.fixture(scope="session")
def tiny_baidu_bundle():
    """A small Baidu-like dataset with planted cross-team projects."""
    return generate_baidu_network("tiny", seed=7)


@pytest.fixture(scope="session")
def tiny_snap_bundle():
    """A small SNAP-like dataset generated with the paper's labeling protocol."""
    return generate_snap_like("tiny", seed=11)


@pytest.fixture(scope="session")
def flight_bundle():
    """The flight-network case-study dataset."""
    return generate_flight_network(seed=3)


@pytest.fixture(scope="session")
def trade_bundle():
    """The trade-network case-study dataset."""
    return generate_trade_network(seed=3)


@pytest.fixture(scope="session")
def fiction_bundle():
    """The fiction-network case-study dataset."""
    return generate_fiction_network(seed=3)


@pytest.fixture(scope="session")
def academic_bundle():
    """The academic collaboration case-study dataset."""
    return generate_academic_network(seed=3)
