"""Query-workload generation for the experiments (Section 8, "Queries and parameters").

The paper evaluates methods on randomly generated query pairs and controls
two workload knobs:

* **degree rank Qd** — "a vertex is regarded to be with degree rank of X% if
  it has top highest X% degree in the network"; the default is 80%, i.e. the
  query vertex's degree exceeds that of 80% of vertices.
* **inter-distance l** — the hop distance between the two query vertices;
  the default is 1 (directly connected).

:func:`generate_query_pairs` produces cross-label query pairs satisfying both
constraints; for multi-label experiments :func:`generate_multilabel_queries`
draws one query vertex per label close to a common community.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.datasets.base import DatasetBundle
from repro.exceptions import DatasetError
from repro.graph.generators import RandomLike, _rng
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import bfs_distances


@dataclass(frozen=True)
class QuerySpec:
    """Workload parameters for query generation."""

    degree_rank: float = 0.8
    inter_distance: int = 1
    count: int = 20

    def __post_init__(self) -> None:
        if not (0.0 < self.degree_rank <= 1.0):
            raise ValueError("degree_rank must be in (0, 1]")
        if self.inter_distance < 1:
            raise ValueError("inter_distance must be >= 1")
        if self.count < 1:
            raise ValueError("count must be >= 1")


def degree_rank_threshold(graph: LabeledGraph, degree_rank: float) -> int:
    """Return the minimum degree a vertex needs to be in the top (1 - rank) slice.

    A vertex "has degree rank X%" when its degree is higher than X% of the
    vertices'; the threshold is therefore the X-th percentile of the degree
    distribution.
    """
    degrees = sorted(graph.degree(v) for v in graph.vertices())
    if not degrees:
        return 0
    index = min(len(degrees) - 1, int(degree_rank * len(degrees)))
    return degrees[index]


def eligible_vertices(graph: LabeledGraph, degree_rank: float) -> List[Vertex]:
    """Return the vertices whose degree meets the degree-rank threshold."""
    threshold = degree_rank_threshold(graph, degree_rank)
    return [v for v in graph.vertices() if graph.degree(v) >= threshold]


def generate_query_pairs(
    bundle: DatasetBundle,
    spec: QuerySpec = QuerySpec(),
    seed: RandomLike = 0,
    within_ground_truth: bool = True,
) -> List[Tuple[Vertex, Vertex]]:
    """Generate cross-label query pairs matching the workload spec.

    Parameters
    ----------
    bundle:
        The dataset to query.
    spec:
        Degree-rank / inter-distance / count parameters.
    seed:
        Random seed.
    within_ground_truth:
        When True (the evaluation protocol for F1 experiments), both query
        vertices are drawn from the same ground-truth cross-group community,
        so each query has a well-defined expected answer.  When the dataset
        has no ground truth, or False is passed, pairs are drawn from the
        whole graph.

    Returns
    -------
    list of (q_left, q_right)
        Up to ``spec.count`` pairs; fewer when the graph cannot supply enough
        pairs satisfying the constraints (never an exception — experiments
        simply average over the pairs produced).
    """
    rng = _rng(seed)
    graph = bundle.graph
    eligible: Set[Vertex] = set(eligible_vertices(graph, spec.degree_rank))
    pools: List[Set[Vertex]] = []
    if within_ground_truth and bundle.cross_group_communities():
        for community in bundle.cross_group_communities():
            pools.append({v for v in community.members if v in graph})
    else:
        pools.append(set(graph.vertices()))

    pairs: List[Tuple[Vertex, Vertex]] = []
    attempts = 0
    max_attempts = 200 * spec.count
    while len(pairs) < spec.count and attempts < max_attempts:
        attempts += 1
        pool = pools[rng.randrange(len(pools))]
        candidates = [v for v in pool if v in eligible]
        if len(candidates) < 2:
            candidates = list(pool)
        if len(candidates) < 2:
            continue
        q_left = rng.choice(candidates)
        distances = bfs_distances(graph, q_left, max_depth=spec.inter_distance)
        at_distance = [
            v
            for v, d in distances.items()
            if d == spec.inter_distance
            and v in pool
            and graph.label(v) != graph.label(q_left)
        ]
        if not at_distance:
            continue
        preferred = [v for v in at_distance if v in eligible]
        q_right = rng.choice(preferred if preferred else at_distance)
        pairs.append((q_left, q_right))
    return pairs


def generate_multilabel_queries(
    bundle: DatasetBundle,
    num_labels: int,
    count: int = 10,
    seed: RandomLike = 0,
) -> List[Tuple[Vertex, ...]]:
    """Generate m-label query tuples (one vertex per label) for Exp-9/Exp-10.

    Query vertices are drawn preferentially from a single ground-truth
    community spanning at least ``num_labels`` labels; when none exists the
    vertices are drawn from distinct labels of the whole graph, preferring
    high-degree vertices.
    """
    rng = _rng(seed)
    graph = bundle.graph
    queries: List[Tuple[Vertex, ...]] = []

    def pick_from_members(members: Sequence[Vertex]) -> Optional[Tuple[Vertex, ...]]:
        by_label: Dict[object, List[Vertex]] = {}
        for v in members:
            if v in graph:
                by_label.setdefault(graph.label(v), []).append(v)
        labels = [lab for lab, vs in by_label.items() if vs]
        if len(labels) < num_labels:
            return None
        chosen_labels = rng.sample(labels, num_labels)
        return tuple(
            max(by_label[lab], key=lambda v: (graph.degree(v), repr(v)))
            if rng.random() < 0.5
            else rng.choice(by_label[lab])
            for lab in chosen_labels
        )

    communities = [
        c for c in bundle.communities if len({graph.label(v) for v in c.members if v in graph}) >= num_labels
    ]
    attempts = 0
    while len(queries) < count and attempts < 50 * count:
        attempts += 1
        if communities:
            community = communities[rng.randrange(len(communities))]
            query = pick_from_members(list(community.members))
        else:
            query = pick_from_members(list(graph.vertices()))
        if query is not None and len(set(query)) == num_labels:
            queries.append(query)
    return queries
