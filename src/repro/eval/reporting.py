"""Plain-text reporting of experiment results in the shape of the paper's artifacts.

The benchmark scripts print, for every table and figure of Section 8, the
same rows/series the paper reports: F1 per (method, dataset) for Figure 4,
seconds per (method, dataset) for Figure 5, seconds per swept parameter value
for Figures 6-10, and the breakdown rows of Table 4.  This module contains
the formatting helpers they share.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.eval.harness import MethodSummary


def format_float(value: float, digits: int = 4) -> str:
    """Format a float compactly (fixed digits, scientific for tiny values)."""
    if value == 0:
        return "0"
    if abs(value) < 10 ** (-digits):
        return f"{value:.2e}"
    return f"{value:.{digits}f}"


def grid_table(
    rows: Sequence[str],
    columns: Sequence[str],
    values: Mapping[str, Mapping[str, float]],
    title: str = "",
    value_digits: int = 4,
) -> str:
    """Format a rows × columns grid of floats (e.g. methods × datasets).

    ``values[row][column]`` supplies each cell; missing cells print as "-".
    """
    col_width = max([12] + [len(str(c)) + 2 for c in columns])
    row_width = max([14] + [len(str(r)) + 2 for r in rows])
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * row_width + "".join(f"{str(c):>{col_width}}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = []
        for column in columns:
            value = values.get(row, {}).get(column)
            cells.append(
                f"{format_float(value, value_digits):>{col_width}}"
                if value is not None
                else f"{'-':>{col_width}}"
            )
        lines.append(f"{str(row):<{row_width}}" + "".join(cells))
    return "\n".join(lines)


def summaries_to_grid(
    summaries: Mapping[str, Mapping[str, "MethodSummary"]],
    metric: str = "avg_f1",
) -> Dict[str, Dict[str, float]]:
    """Convert ``{dataset: {method: summary}}`` into ``{method: {dataset: value}}``.

    ``metric`` selects which MethodSummary attribute to extract (``avg_f1``
    for Figure 4, ``avg_seconds`` for Figure 5).
    """
    grid: Dict[str, Dict[str, float]] = {}
    for dataset, per_method in summaries.items():
        for method, summary in per_method.items():
            grid.setdefault(method, {})[dataset] = getattr(summary, metric)
    return grid


def figure_table(
    summaries: Mapping[str, Mapping[str, "MethodSummary"]],
    metric: str,
    title: str,
    datasets: Optional[Sequence[str]] = None,
    methods: Optional[Sequence[str]] = None,
) -> str:
    """Format Figure 4/5-style output: methods as rows, datasets as columns."""
    grid = summaries_to_grid(summaries, metric)
    if methods is None:
        methods = sorted(grid)
    if datasets is None:
        dataset_set = set()
        for per_dataset in grid.values():
            dataset_set.update(per_dataset)
        datasets = sorted(dataset_set)
    return grid_table(list(methods), list(datasets), grid, title=title)


def sweep_table(
    series: Mapping[str, Mapping[object, float]],
    parameter_name: str,
    title: str,
    value_digits: int = 4,
) -> str:
    """Format Figures 6-10-style output: methods as rows, parameter values as columns."""
    methods = sorted(series)
    values = set()
    for per_value in series.values():
        values.update(per_value)
    columns = sorted(values, key=lambda v: (isinstance(v, str), v))
    grid = {m: {c: series[m].get(c) for c in columns} for m in methods}
    header = f"{title}  (columns: {parameter_name})"
    return grid_table(methods, [str(c) for c in columns],
                      {m: {str(c): grid[m][c] for c in columns} for m in methods},
                      title=header, value_digits=value_digits)


def breakdown_table(rows: Mapping[str, Mapping[str, float]], title: str) -> str:
    """Format Table 4-style output: breakdown steps as rows, methods as columns."""
    step_names = list(rows)
    methods = sorted({m for per_method in rows.values() for m in per_method})
    return grid_table(step_names, methods, rows, title=title)


def speedup(baseline: float, improved: float) -> float:
    """Return ``baseline / improved`` guarding against division by zero."""
    if improved <= 0:
        return float("inf") if baseline > 0 else 1.0
    return baseline / improved
