"""Evaluation harness: metrics, query workloads, instrumentation and reporting.

The harness submodule imports the search algorithms (which themselves use the
instrumentation defined here), so it is loaded lazily via module
``__getattr__`` to keep the import graph acyclic.
"""

from repro.eval.instrumentation import SearchInstrumentation
from repro.eval.metrics import (
    CommunityReport,
    average_f1,
    community_core_levels,
    describe_community,
    f1_score,
    precision,
    recall,
)
from repro.eval.reporting import (
    breakdown_table,
    figure_table,
    format_float,
    grid_table,
    speedup,
    summaries_to_grid,
    sweep_table,
)

_HARNESS_EXPORTS = {
    "BCC_METHOD_NAMES",
    "METHOD_NAMES",
    "MethodSummary",
    "QueryOutcome",
    "evaluate_methods",
    "evaluate_multilabel",
    "run_method",
}
_QUERY_EXPORTS = {
    "QuerySpec",
    "degree_rank_threshold",
    "eligible_vertices",
    "generate_multilabel_queries",
    "generate_query_pairs",
}


def __getattr__(name):
    """Lazily expose the harness and query-generation APIs."""
    if name in _HARNESS_EXPORTS:
        from repro.eval import harness

        return getattr(harness, name)
    if name in _QUERY_EXPORTS:
        from repro.eval import queries

        return getattr(queries, name)
    raise AttributeError(f"module 'repro.eval' has no attribute {name!r}")


__all__ = sorted(
    {
        "CommunityReport",
        "SearchInstrumentation",
        "average_f1",
        "breakdown_table",
        "community_core_levels",
        "describe_community",
        "f1_score",
        "figure_table",
        "format_float",
        "grid_table",
        "precision",
        "recall",
        "speedup",
        "summaries_to_grid",
        "sweep_table",
    }
    | _HARNESS_EXPORTS
    | _QUERY_EXPORTS
)
