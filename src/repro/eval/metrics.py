"""Community-quality metrics used by the evaluation (Section 8).

The paper measures alignment between a discovered community ``C`` and a
ground-truth community ``Ĉ`` with the F1-score

    F1(C, Ĉ) = 2 * prec * recall / (prec + recall),
    prec(C, Ĉ) = |C ∩ Ĉ| / |C|,   recall(C, Ĉ) = |C ∩ Ĉ| / |Ĉ|,

averaged over all evaluated queries (Figures 4 and 14).  The module also
provides the structural summary metrics reported in the case studies
(community size, diameter, per-side core levels, butterfly statistics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Set

from repro.core.butterfly import butterfly_degrees, total_butterflies
from repro.core.kcore import core_decomposition
from repro.graph.bipartite import extract_bipartite
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import diameter


def precision(found: Set[Vertex], truth: Set[Vertex]) -> float:
    """Return |found ∩ truth| / |found| (0 when ``found`` is empty)."""
    if not found:
        return 0.0
    return len(found & truth) / len(found)


def recall(found: Set[Vertex], truth: Set[Vertex]) -> float:
    """Return |found ∩ truth| / |truth| (0 when ``truth`` is empty)."""
    if not truth:
        return 0.0
    return len(found & truth) / len(truth)


def f1_score(found: Iterable[Vertex], truth: Iterable[Vertex]) -> float:
    """Return the F1-score between a found community and the ground truth."""
    found_set = set(found)
    truth_set = set(truth)
    p = precision(found_set, truth_set)
    r = recall(found_set, truth_set)
    if p + r == 0:
        return 0.0
    return 2 * p * r / (p + r)


def average_f1(scores: Sequence[float]) -> float:
    """Return the mean of a sequence of F1 scores (0 for an empty sequence)."""
    if not scores:
        return 0.0
    return sum(scores) / len(scores)


@dataclass
class CommunityReport:
    """Structural summary of a discovered community (case-study reporting)."""

    num_vertices: int
    num_edges: int
    diameter: float
    label_sizes: Dict[str, int]
    min_intra_degree: Dict[str, int]
    total_butterflies: int
    max_butterfly_degree: int

    def as_dict(self) -> Dict[str, object]:
        """Return the report as a flat dictionary."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "diameter": self.diameter,
            "label_sizes": dict(self.label_sizes),
            "min_intra_degree": dict(self.min_intra_degree),
            "total_butterflies": self.total_butterflies,
            "max_butterfly_degree": self.max_butterfly_degree,
        }


def describe_community(community: LabeledGraph) -> CommunityReport:
    """Summarise a community's structure (sizes, cores, butterflies, diameter)."""
    labels = sorted(community.labels(), key=str)
    label_sizes: Dict[str, int] = {}
    min_intra_degree: Dict[str, int] = {}
    for label in labels:
        group = community.label_induced_subgraph(label)
        label_sizes[str(label)] = group.num_vertices()
        if group.num_vertices():
            min_intra_degree[str(label)] = min(
                group.degree(v) for v in group.vertices()
            )
        else:
            min_intra_degree[str(label)] = 0
    butterflies = 0
    max_chi = 0
    if len(labels) == 2:
        bipartite = extract_bipartite(
            community,
            community.vertices_with_label(labels[0]),
            community.vertices_with_label(labels[1]),
        )
        degrees = butterfly_degrees(bipartite)
        butterflies = total_butterflies(bipartite)
        max_chi = max(degrees.values()) if degrees else 0
    return CommunityReport(
        num_vertices=community.num_vertices(),
        num_edges=community.num_edges(),
        diameter=diameter(community),
        label_sizes=label_sizes,
        min_intra_degree=min_intra_degree,
        total_butterflies=butterflies,
        max_butterfly_degree=max_chi,
    )


def community_core_levels(community: LabeledGraph) -> Dict[str, int]:
    """Return, per label, the largest k such that the label group is a k-core."""
    levels: Dict[str, int] = {}
    for label in community.labels():
        group = community.label_induced_subgraph(label)
        if group.num_vertices() == 0:
            levels[str(label)] = 0
            continue
        coreness = core_decomposition(group)
        levels[str(label)] = min(coreness.values()) if coreness else 0
    return levels
