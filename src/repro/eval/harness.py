"""Experiment harness: run every method over a workload and collect results.

This module is the glue between the search methods, the datasets and the
benchmark scripts.  Since the ``repro.api`` redesign it is a thin layer over
the production serving path: methods are resolved through the method registry
(adding a method is one ``@register_method`` decorator — ``METHOD_NAMES``
derives from the registry) and executed by a :class:`repro.api.BCCEngine`,
so benchmarks exercise exactly what a long-lived service runs.

Timing is split honestly: ``QueryOutcome.seconds`` is pure query time, and
the cost of building the shared BCindex is reported separately in
``index_seconds`` (previously a caller-supplied index silently changed what
``seconds`` meant across methods).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.api import (
    STATUS_ERROR,
    BCCEngine,
    Query,
    SearchResponse,
    get_method,
    method_names,
)
from repro.core.bc_index import BCIndex
from repro.datasets.base import DatasetBundle
from repro.eval.instrumentation import SearchInstrumentation
from repro.eval.metrics import average_f1, f1_score
from repro.eval.queries import QuerySpec, generate_multilabel_queries, generate_query_pairs
from repro.exceptions import REASON_MISSING_VERTEX, VertexNotFoundError
from repro.graph.labeled_graph import Vertex

# METHOD_NAMES / BCC_METHOD_NAMES — the method names used throughout the
# paper's figures, in figure order.  Served via module ``__getattr__`` so
# every access reads the live registry: a method registered after import
# still appears (``from ... import METHOD_NAMES`` binds a snapshot; access
# ``harness.METHOD_NAMES`` for the live list).
_FIGURE_KINDS = ("baseline", "bcc")


def __getattr__(name: str) -> List[str]:
    """Expose the registry-derived name lists as live module attributes."""
    if name == "METHOD_NAMES":
        return method_names(kinds=_FIGURE_KINDS)
    if name == "BCC_METHOD_NAMES":
        return method_names(kinds=("bcc",))
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class QueryOutcome:
    """Result of one method on one query.

    ``query_distance`` is the community's ``dist(H, Q)`` for answered
    queries and ``math.inf`` otherwise — an unanswered query is infinitely
    far from perfect, never distance 0.  ``status == "error"`` rows (batch
    mode under ``on_error="return"``) carry the exception message in
    ``error``.
    """

    method: str
    query: Tuple[Vertex, ...]
    vertices: Set[Vertex] = field(default_factory=set)
    seconds: float = 0.0
    f1: Optional[float] = None
    found: bool = False
    instrumentation: Optional[SearchInstrumentation] = None
    index_seconds: float = 0.0
    status: str = "ok"
    reason: Optional[str] = None
    query_distance: float = math.inf
    error: Optional[str] = None


@dataclass
class MethodSummary:
    """Aggregate of one method over a workload (one bar in Fig. 4 / Fig. 5).

    ``avg_query_distance`` averages only *answered* queries (empty/error
    responses report ``math.inf`` and would previously have been folded in
    as a perfect 0.0, deflating the mean); it is ``None`` when the method
    answered nothing.  ``errors`` counts ``status == "error"`` rows from
    batch mode.
    """

    method: str
    dataset: str
    queries: int = 0
    answered: int = 0
    avg_f1: float = 0.0
    avg_seconds: float = 0.0
    total_seconds: float = 0.0
    index_seconds: float = 0.0
    errors: int = 0
    avg_query_distance: Optional[float] = None

    def as_row(self) -> Tuple[str, str, int, int, float, float]:
        """Return (dataset, method, #queries, #answered, avg F1, avg seconds)."""
        return (
            self.dataset,
            self.method,
            self.queries,
            self.answered,
            self.avg_f1,
            self.avg_seconds,
        )


# Sentinel distinguishing "argument omitted" from an explicit value, so a
# caller-supplied engine's base config is honoured unless overridden.
_HARNESS_DEFAULT: object = object()


def run_method(
    method: str,
    bundle: DatasetBundle,
    q_left: Vertex,
    q_right: Vertex,
    k: Optional[int] = None,
    b: int = _HARNESS_DEFAULT,  # type: ignore[assignment]
    index: Optional[BCIndex] = None,
    instrumentation: Optional[SearchInstrumentation] = None,
    max_iterations: Optional[int] = _HARNESS_DEFAULT,  # type: ignore[assignment]
    engine: Optional[BCCEngine] = None,
) -> QueryOutcome:
    """Run one registered method on one query pair and time it.

    Parameters
    ----------
    method:
        Any name the method registry resolves (one of :data:`METHOD_NAMES`,
        a canonical name, or an alias).
    bundle:
        The dataset (graph + ground truth).
    q_left, q_right:
        The query pair.
    k:
        When given, overrides both core parameters (the parameter sweeps of
        Fig. 8 vary a single ``k`` "due to their symmetry property"); BCC
        methods otherwise default to the query vertices' coreness, CTC to the
        maximum trussness (the symmetric override deliberately does not apply
        to it) and PSA to the query coreness.
    b:
        Butterfly-degree parameter for the BCC methods.  When omitted, a
        caller-supplied engine's base config governs; without an engine the
        paper default (1) applies.
    index:
        Optional pre-built BCindex shared across queries (used by L2P-BCC);
        ignored when ``engine`` is given (the engine owns its index).
    instrumentation:
        Optional counters forwarded to the method.
    max_iterations:
        Safety cap forwarded to the peeling loops; same default policy as
        ``b`` (engine config when an engine is supplied, else 200).
    engine:
        Optional prepared :class:`BCCEngine` to serve the query; when
        omitted a throwaway engine is created (the legacy one-shot cost
        profile).

    Returns
    -------
    QueryOutcome
        ``seconds`` is pure query time; any lazy BCindex build triggered by
        this call is reported separately in ``index_seconds``.
    """
    spec = get_method(method)
    caller_engine = engine is not None
    if engine is None:
        engine = BCCEngine(bundle.graph, index=index)
    config = engine.config
    if b is not _HARNESS_DEFAULT:
        config = config.replace(b=b)
    elif not caller_engine:
        config = config.replace(b=1)
    if max_iterations is not _HARNESS_DEFAULT:
        config = config.replace(max_iterations=max_iterations)
    elif not caller_engine:
        config = config.replace(max_iterations=200)
    if k is not None and spec.symmetric_k:
        # The symmetric override replaces both core parameters outright
        # (k1=k2=k, as the pre-engine harness did), beating any k1/k2 in the
        # engine's base config; config.k alone would lose to explicit k1/k2.
        config = config.replace(k=k, k1=k, k2=k)
    if spec.missing_vertex_is_empty:
        # Historical harness contract: the label-agnostic baselines score a
        # query naming an unknown vertex as unanswered rather than erroring
        # the whole workload (the BCC methods raise, as they always did).
        # Validated explicitly up front — a VertexNotFoundError escaping a
        # runner for a non-query vertex is an implementation bug and must
        # propagate, not masquerade as "no community".
        try:
            engine.graph.require_vertices((q_left, q_right))
        except VertexNotFoundError:
            truth = bundle.community_for_query(q_left, q_right)
            return QueryOutcome(
                method=method,
                query=(q_left, q_right),
                found=False,
                f1=0.0 if truth is not None else None,
                instrumentation=instrumentation,
                status="empty",
                reason=REASON_MISSING_VERTEX,
            )
    response = engine.search(
        Query(method=spec.name, vertices=(q_left, q_right)),
        config=config,
        instrumentation=instrumentation,
        # Timing honesty: the harness measures the algorithm, so a warm
        # caller engine's result cache must not turn a repeated query's
        # seconds into cache-lookup time.
        use_cache=False,
    )
    return _outcome_from_response(method, bundle, response)


def _outcome_from_response(
    method: str, bundle: DatasetBundle, response: SearchResponse
) -> QueryOutcome:
    """Score one engine response against the bundle's ground truth.

    Error responses (batch mode under ``on_error="return"``) become error
    rows: unanswered, unscored (``f1 is None``), with the failure preserved
    in ``reason``/``error`` — except that a missing *query* vertex on a
    ``missing_vertex_is_empty`` baseline keeps its historical "unanswered"
    scoring.
    """
    q_left, q_right = response.query[0], response.query[-1]
    if response.status == STATUS_ERROR:
        spec = get_method(method)
        missing_query_vertex = (
            spec.missing_vertex_is_empty
            and response.reason == REASON_MISSING_VERTEX
        )
        truth = bundle.community_for_query(q_left, q_right)
        return QueryOutcome(
            method=method,
            query=tuple(response.query),
            found=False,
            f1=(0.0 if truth is not None else None) if missing_query_vertex else None,
            status="empty" if missing_query_vertex else STATUS_ERROR,
            reason=response.reason,
            error=None if missing_query_vertex else response.error,
        )
    outcome = QueryOutcome(
        method=method,
        query=tuple(response.query),
        vertices=set(response.vertices),
        seconds=response.timings["query_seconds"],
        found=response.found,
        instrumentation=response.instrumentation,
        index_seconds=response.timings["index_build_seconds"],
        status=response.status,
        reason=response.reason,
        query_distance=response.query_distance,
    )
    truth = bundle.community_for_query(q_left, q_right)
    if truth is not None:
        outcome.f1 = f1_score(outcome.vertices, truth.members) if outcome.found else 0.0
    return outcome


def _summarize_outcomes(
    method: str, dataset: str, outcomes: Sequence[QueryOutcome]
) -> MethodSummary:
    """Aggregate per-query outcomes into one :class:`MethodSummary`.

    ``avg_query_distance`` averages answered queries only — unanswered and
    errored queries report ``math.inf``, which must not be folded into (or
    silently deflate, as the old 0.0 convention did) the mean.  Error rows
    never ran the algorithm, so their placeholder 0.0 seconds are likewise
    excluded from the timing aggregates.
    """
    f1_scores = [o.f1 for o in outcomes if o.f1 is not None]
    times = [o.seconds for o in outcomes if o.status != STATUS_ERROR]
    distances = [o.query_distance for o in outcomes if math.isfinite(o.query_distance)]
    return MethodSummary(
        method=method,
        dataset=dataset,
        queries=len(outcomes),
        answered=sum(1 for o in outcomes if o.found),
        avg_f1=average_f1(f1_scores),
        avg_seconds=sum(times) / len(times) if times else 0.0,
        total_seconds=sum(times),
        index_seconds=sum(o.index_seconds for o in outcomes),
        errors=sum(1 for o in outcomes if o.status == STATUS_ERROR),
        avg_query_distance=(
            sum(distances) / len(distances) if distances else None
        ),
    )


def evaluate_methods(
    bundle: DatasetBundle,
    methods: Optional[Sequence[str]] = None,
    spec: QuerySpec = QuerySpec(count=10),
    seed: int = 0,
    k: Optional[int] = None,
    b: int = 1,
    share_index: bool = True,
    max_workers: int = 1,
    on_error: str = "return",
    sharded: bool = False,
) -> Dict[str, MethodSummary]:
    """Run several methods over a generated workload and aggregate per method.

    ``methods`` defaults to the registry-derived :data:`METHOD_NAMES`.
    Returns a mapping from method name to :class:`MethodSummary`; this is one
    dataset's worth of Figure 4 (``avg_f1``) and Figure 5 (``avg_seconds``).

    With ``share_index`` (the default) one prepared engine serves every
    method's workload as a ``search_many`` batch — the production path: the
    CSR snapshot, label groups and BCindex are built once and reused (the
    single lazy BCindex build is reported in the triggering method's
    ``index_seconds``, never in ``avg_seconds``), ``max_workers`` threads
    serve the batch, and ``on_error`` is the engine's per-query policy —
    the default ``"return"`` scores a failed query as an error row
    (``MethodSummary.errors``) instead of aborting the evaluation.
    ``sharded`` swaps the engine for a
    :class:`repro.serving.ShardedBCCEngine` (one engine per connected
    component behind the same batch surface): answers are identical on the
    evaluation networks, and a workload whose queries cluster in a few
    components only prepares those components' shards.  It requires
    ``share_index`` (per-query throwaway engines have nothing to shard).
    Caveat: with ``max_workers > 1`` the per-query wall-clock timings
    include scheduler/lock contention from concurrent queries, so
    ``avg_seconds`` measures serving latency under load, not the
    algorithm's single-threaded cost — keep the default ``max_workers=1``
    when regenerating the paper's Figure-5 timings.
    Without ``share_index`` each query runs sequentially on a throwaway
    engine, so per-query preparation cost lands in ``index_seconds`` and
    failures raise.
    """
    if methods is None:
        methods = method_names(kinds=_FIGURE_KINDS)
    pairs = generate_query_pairs(bundle, spec, seed=seed)
    engine = None
    if sharded:
        if not share_index:
            raise ValueError("sharded evaluation requires share_index=True")
        # Deferred import: the serving layer sits above the harness and
        # importing it eagerly here would make repro.eval pull the whole
        # serving/dataset stack in on import.
        from repro.serving.sharded import ShardedBCCEngine

        engine = ShardedBCCEngine(bundle.graph)
    elif share_index:
        engine = BCCEngine(bundle.graph).prepare()
    summaries: Dict[str, MethodSummary] = {}
    for method in methods:
        outcomes: List[QueryOutcome] = []
        if engine is not None:
            method_spec = get_method(method)
            config = engine.config.replace(b=b, max_iterations=200)
            if k is not None and method_spec.symmetric_k:
                config = config.replace(k=k, k1=k, k2=k)
            responses = engine.search_many(
                [Query(method=method_spec.name, vertices=pair) for pair in pairs],
                config=config,
                on_error=on_error,
                max_workers=max_workers,
                # Timing honesty: generated workloads regularly repeat a
                # pair, and a result-cache hit would report lookup time as
                # the algorithm's avg_seconds (the Figure-5 metric).
                use_cache=False,
            )
            outcomes = [
                _outcome_from_response(method, bundle, response)
                for response in responses
            ]
        else:
            for q_left, q_right in pairs:
                outcomes.append(
                    run_method(
                        method,
                        bundle,
                        q_left,
                        q_right,
                        k=k,
                        b=b,
                        max_iterations=200,
                    )
                )
        summaries[method] = _summarize_outcomes(method, bundle.name, outcomes)
    return summaries


def evaluate_multilabel(
    bundle: DatasetBundle,
    num_labels: int,
    methods: Sequence[str] = ("L2P-BCC",),
    count: int = 5,
    seed: int = 0,
    b: int = 1,
) -> Dict[str, MethodSummary]:
    """Run the multi-label experiments (Exp-9 / Exp-10) for one label count ``m``.

    The mBCC search framework (Algorithm 9) is used for every BCC variant
    (registry kind ``"bcc"``); the CTC and PSA baselines treat the query
    tuple as a plain vertex set.  One prepared engine serves the workload.
    """
    queries = generate_multilabel_queries(bundle, num_labels, count=count, seed=seed)
    engine = BCCEngine(bundle.graph).prepare()
    config = engine.config.replace(b=b, max_iterations=200)
    summaries: Dict[str, MethodSummary] = {}
    for method in methods:
        method_spec = get_method(method)
        run_as = method_spec.multilabel_method or method_spec.name
        f1_scores: List[float] = []
        times: List[float] = []
        answered = 0
        for query in queries:
            # use_cache=False: every BCC variant maps to the same mbcc
            # runner, so the second method's identical (method, vertices,
            # config) key would replay the first's answer in microseconds
            # and corrupt the Exp-9/Exp-10 timing comparison.
            response = engine.search(
                Query(method=run_as, vertices=tuple(query)),
                config=config,
                use_cache=False,
            )
            times.append(response.timings["query_seconds"])
            if response.found:
                answered += 1
            truth = None
            for community in bundle.communities:
                if all(q in community for q in query):
                    truth = community
                    break
            if truth is not None:
                f1_scores.append(
                    f1_score(response.vertices, truth.members)
                    if response.found
                    else 0.0
                )
        summaries[method] = MethodSummary(
            method=method,
            dataset=f"{bundle.name}(m={num_labels})",
            queries=len(queries),
            answered=answered,
            avg_f1=average_f1(f1_scores),
            avg_seconds=sum(times) / len(times) if times else 0.0,
            total_seconds=sum(times),
        )
    return summaries
