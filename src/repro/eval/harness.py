"""Experiment harness: run every method over a workload and collect results.

This module is the glue between the search methods, the datasets and the
benchmark scripts.  Since the ``repro.api`` redesign it is a thin layer over
the production serving path: methods are resolved through the method registry
(adding a method is one ``@register_method`` decorator — ``METHOD_NAMES``
derives from the registry) and executed by a :class:`repro.api.BCCEngine`,
so benchmarks exercise exactly what a long-lived service runs.

Timing is split honestly: ``QueryOutcome.seconds`` is pure query time, and
the cost of building the shared BCindex is reported separately in
``index_seconds`` (previously a caller-supplied index silently changed what
``seconds`` meant across methods).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.api import BCCEngine, Query, get_method, method_names
from repro.core.bc_index import BCIndex
from repro.datasets.base import DatasetBundle
from repro.eval.instrumentation import SearchInstrumentation
from repro.eval.metrics import average_f1, f1_score
from repro.eval.queries import QuerySpec, generate_multilabel_queries, generate_query_pairs
from repro.exceptions import REASON_MISSING_VERTEX, VertexNotFoundError
from repro.graph.labeled_graph import Vertex

# METHOD_NAMES / BCC_METHOD_NAMES — the method names used throughout the
# paper's figures, in figure order.  Served via module ``__getattr__`` so
# every access reads the live registry: a method registered after import
# still appears (``from ... import METHOD_NAMES`` binds a snapshot; access
# ``harness.METHOD_NAMES`` for the live list).
_FIGURE_KINDS = ("baseline", "bcc")


def __getattr__(name: str) -> List[str]:
    """Expose the registry-derived name lists as live module attributes."""
    if name == "METHOD_NAMES":
        return method_names(kinds=_FIGURE_KINDS)
    if name == "BCC_METHOD_NAMES":
        return method_names(kinds=("bcc",))
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class QueryOutcome:
    """Result of one method on one query."""

    method: str
    query: Tuple[Vertex, ...]
    vertices: Set[Vertex] = field(default_factory=set)
    seconds: float = 0.0
    f1: Optional[float] = None
    found: bool = False
    instrumentation: Optional[SearchInstrumentation] = None
    index_seconds: float = 0.0
    status: str = "ok"
    reason: Optional[str] = None


@dataclass
class MethodSummary:
    """Aggregate of one method over a workload (one bar in Fig. 4 / Fig. 5)."""

    method: str
    dataset: str
    queries: int = 0
    answered: int = 0
    avg_f1: float = 0.0
    avg_seconds: float = 0.0
    total_seconds: float = 0.0
    index_seconds: float = 0.0

    def as_row(self) -> Tuple[str, str, int, int, float, float]:
        """Return (dataset, method, #queries, #answered, avg F1, avg seconds)."""
        return (
            self.dataset,
            self.method,
            self.queries,
            self.answered,
            self.avg_f1,
            self.avg_seconds,
        )


# Sentinel distinguishing "argument omitted" from an explicit value, so a
# caller-supplied engine's base config is honoured unless overridden.
_HARNESS_DEFAULT: object = object()


def run_method(
    method: str,
    bundle: DatasetBundle,
    q_left: Vertex,
    q_right: Vertex,
    k: Optional[int] = None,
    b: int = _HARNESS_DEFAULT,  # type: ignore[assignment]
    index: Optional[BCIndex] = None,
    instrumentation: Optional[SearchInstrumentation] = None,
    max_iterations: Optional[int] = _HARNESS_DEFAULT,  # type: ignore[assignment]
    engine: Optional[BCCEngine] = None,
) -> QueryOutcome:
    """Run one registered method on one query pair and time it.

    Parameters
    ----------
    method:
        Any name the method registry resolves (one of :data:`METHOD_NAMES`,
        a canonical name, or an alias).
    bundle:
        The dataset (graph + ground truth).
    q_left, q_right:
        The query pair.
    k:
        When given, overrides both core parameters (the parameter sweeps of
        Fig. 8 vary a single ``k`` "due to their symmetry property"); BCC
        methods otherwise default to the query vertices' coreness, CTC to the
        maximum trussness (the symmetric override deliberately does not apply
        to it) and PSA to the query coreness.
    b:
        Butterfly-degree parameter for the BCC methods.  When omitted, a
        caller-supplied engine's base config governs; without an engine the
        paper default (1) applies.
    index:
        Optional pre-built BCindex shared across queries (used by L2P-BCC);
        ignored when ``engine`` is given (the engine owns its index).
    instrumentation:
        Optional counters forwarded to the method.
    max_iterations:
        Safety cap forwarded to the peeling loops; same default policy as
        ``b`` (engine config when an engine is supplied, else 200).
    engine:
        Optional prepared :class:`BCCEngine` to serve the query; when
        omitted a throwaway engine is created (the legacy one-shot cost
        profile).

    Returns
    -------
    QueryOutcome
        ``seconds`` is pure query time; any lazy BCindex build triggered by
        this call is reported separately in ``index_seconds``.
    """
    spec = get_method(method)
    caller_engine = engine is not None
    if engine is None:
        engine = BCCEngine(bundle.graph, index=index)
    config = engine.config
    if b is not _HARNESS_DEFAULT:
        config = config.replace(b=b)
    elif not caller_engine:
        config = config.replace(b=1)
    if max_iterations is not _HARNESS_DEFAULT:
        config = config.replace(max_iterations=max_iterations)
    elif not caller_engine:
        config = config.replace(max_iterations=200)
    if k is not None and spec.symmetric_k:
        # The symmetric override replaces both core parameters outright
        # (k1=k2=k, as the pre-engine harness did), beating any k1/k2 in the
        # engine's base config; config.k alone would lose to explicit k1/k2.
        config = config.replace(k=k, k1=k, k2=k)
    try:
        response = engine.search(
            Query(method=spec.name, vertices=(q_left, q_right)),
            config=config,
            instrumentation=instrumentation,
        )
    except VertexNotFoundError:
        if not spec.missing_vertex_is_empty:
            raise
        # Historical harness contract: the label-agnostic baselines score a
        # query with an unknown vertex as unanswered rather than erroring
        # the whole workload (the BCC methods raise, as they always did).
        truth = bundle.community_for_query(q_left, q_right)
        return QueryOutcome(
            method=method,
            query=(q_left, q_right),
            found=False,
            f1=0.0 if truth is not None else None,
            instrumentation=instrumentation,
            status="empty",
            reason=REASON_MISSING_VERTEX,
        )

    outcome = QueryOutcome(
        method=method,
        query=(q_left, q_right),
        vertices=set(response.vertices),
        seconds=response.timings["query_seconds"],
        found=response.found,
        instrumentation=response.instrumentation,
        index_seconds=response.timings["index_build_seconds"],
        status=response.status,
        reason=response.reason,
    )
    truth = bundle.community_for_query(q_left, q_right)
    if truth is not None:
        outcome.f1 = f1_score(outcome.vertices, truth.members) if outcome.found else 0.0
    return outcome


def evaluate_methods(
    bundle: DatasetBundle,
    methods: Optional[Sequence[str]] = None,
    spec: QuerySpec = QuerySpec(count=10),
    seed: int = 0,
    k: Optional[int] = None,
    b: int = 1,
    share_index: bool = True,
) -> Dict[str, MethodSummary]:
    """Run several methods over a generated workload and aggregate per method.

    ``methods`` defaults to the registry-derived :data:`METHOD_NAMES`.
    Returns a mapping from method name to :class:`MethodSummary`; this is one
    dataset's worth of Figure 4 (``avg_f1``) and Figure 5 (``avg_seconds``).

    With ``share_index`` (the default) one prepared engine serves every
    query — the production path: the CSR snapshot, label groups and BCindex
    are built once and reused (the single lazy BCindex build is reported in
    the triggering method's ``index_seconds``, never in ``avg_seconds``).
    Without it each query runs on a throwaway engine, so per-query
    preparation cost lands in ``index_seconds``.
    """
    if methods is None:
        methods = method_names(kinds=_FIGURE_KINDS)
    pairs = generate_query_pairs(bundle, spec, seed=seed)
    engine: Optional[BCCEngine] = None
    if share_index:
        engine = BCCEngine(bundle.graph).prepare()
    summaries: Dict[str, MethodSummary] = {}
    for method in methods:
        f1_scores: List[float] = []
        times: List[float] = []
        index_times: List[float] = []
        answered = 0
        for q_left, q_right in pairs:
            outcome = run_method(
                method,
                bundle,
                q_left,
                q_right,
                k=k,
                b=b,
                max_iterations=200,
                engine=engine,
            )
            times.append(outcome.seconds)
            index_times.append(outcome.index_seconds)
            if outcome.found:
                answered += 1
            if outcome.f1 is not None:
                f1_scores.append(outcome.f1)
        summaries[method] = MethodSummary(
            method=method,
            dataset=bundle.name,
            queries=len(pairs),
            answered=answered,
            avg_f1=average_f1(f1_scores),
            avg_seconds=sum(times) / len(times) if times else 0.0,
            total_seconds=sum(times),
            index_seconds=sum(index_times),
        )
    return summaries


def evaluate_multilabel(
    bundle: DatasetBundle,
    num_labels: int,
    methods: Sequence[str] = ("L2P-BCC",),
    count: int = 5,
    seed: int = 0,
    b: int = 1,
) -> Dict[str, MethodSummary]:
    """Run the multi-label experiments (Exp-9 / Exp-10) for one label count ``m``.

    The mBCC search framework (Algorithm 9) is used for every BCC variant
    (registry kind ``"bcc"``); the CTC and PSA baselines treat the query
    tuple as a plain vertex set.  One prepared engine serves the workload.
    """
    queries = generate_multilabel_queries(bundle, num_labels, count=count, seed=seed)
    engine = BCCEngine(bundle.graph).prepare()
    config = engine.config.replace(b=b, max_iterations=200)
    summaries: Dict[str, MethodSummary] = {}
    for method in methods:
        method_spec = get_method(method)
        run_as = method_spec.multilabel_method or method_spec.name
        f1_scores: List[float] = []
        times: List[float] = []
        answered = 0
        for query in queries:
            response = engine.search(
                Query(method=run_as, vertices=tuple(query)), config=config
            )
            times.append(response.timings["query_seconds"])
            if response.found:
                answered += 1
            truth = None
            for community in bundle.communities:
                if all(q in community for q in query):
                    truth = community
                    break
            if truth is not None:
                f1_scores.append(
                    f1_score(response.vertices, truth.members)
                    if response.found
                    else 0.0
                )
        summaries[method] = MethodSummary(
            method=method,
            dataset=f"{bundle.name}(m={num_labels})",
            queries=len(queries),
            answered=answered,
            avg_f1=average_f1(f1_scores),
            avg_seconds=sum(times) / len(times) if times else 0.0,
            total_seconds=sum(times),
        )
    return summaries
