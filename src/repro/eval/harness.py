"""Experiment harness: run every method over a workload and collect results.

This module is the glue between the search algorithms, the datasets and the
benchmark scripts.  It knows how to run each of the five compared methods
(PSA, CTC, Online-BCC, LP-BCC, L2P-BCC) on a query pair, evaluate the result
against the ground truth, and aggregate F1 / running-time statistics per
(method, dataset) cell — i.e. one bar of Figure 4 or Figure 5.

The per-method entry points accept a uniform signature so parameter sweeps
(Figures 6-10) can simply pass overrides such as ``k`` or ``b``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.ctc import ctc_search
from repro.baselines.psa import psa_search
from repro.core.bc_index import BCIndex
from repro.core.local_search import l2p_bcc_search
from repro.core.lp_bcc import lp_bcc_search
from repro.core.multilabel import mbcc_search
from repro.core.online_bcc import online_bcc_search
from repro.datasets.base import DatasetBundle
from repro.eval.instrumentation import SearchInstrumentation
from repro.eval.metrics import average_f1, f1_score
from repro.eval.queries import QuerySpec, generate_multilabel_queries, generate_query_pairs
from repro.graph.labeled_graph import Vertex

# The method names used throughout the paper's figures.
METHOD_NAMES: List[str] = ["PSA", "CTC", "Online-BCC", "LP-BCC", "L2P-BCC"]
BCC_METHOD_NAMES: List[str] = ["Online-BCC", "LP-BCC", "L2P-BCC"]


@dataclass
class QueryOutcome:
    """Result of one method on one query."""

    method: str
    query: Tuple[Vertex, ...]
    vertices: Set[Vertex] = field(default_factory=set)
    seconds: float = 0.0
    f1: Optional[float] = None
    found: bool = False
    instrumentation: Optional[SearchInstrumentation] = None


@dataclass
class MethodSummary:
    """Aggregate of one method over a workload (one bar in Fig. 4 / Fig. 5)."""

    method: str
    dataset: str
    queries: int = 0
    answered: int = 0
    avg_f1: float = 0.0
    avg_seconds: float = 0.0
    total_seconds: float = 0.0

    def as_row(self) -> Tuple[str, str, int, int, float, float]:
        """Return (dataset, method, #queries, #answered, avg F1, avg seconds)."""
        return (
            self.dataset,
            self.method,
            self.queries,
            self.answered,
            self.avg_f1,
            self.avg_seconds,
        )


def run_method(
    method: str,
    bundle: DatasetBundle,
    q_left: Vertex,
    q_right: Vertex,
    k: Optional[int] = None,
    b: int = 1,
    index: Optional[BCIndex] = None,
    instrumentation: Optional[SearchInstrumentation] = None,
    max_iterations: Optional[int] = 200,
) -> QueryOutcome:
    """Run one named method on one query pair and time it.

    Parameters
    ----------
    method:
        One of :data:`METHOD_NAMES`.
    bundle:
        The dataset (graph + ground truth).
    q_left, q_right:
        The query pair.
    k:
        When given, overrides both core parameters (the parameter sweeps of
        Fig. 8 vary a single ``k`` "due to their symmetry property"); BCC
        methods otherwise default to the query vertices' coreness, CTC to the
        maximum trussness and PSA to the query coreness.
    b:
        Butterfly-degree parameter for the BCC methods.
    index:
        Optional pre-built BCindex shared across queries (used by L2P-BCC).
    instrumentation:
        Optional counters forwarded to the method.
    max_iterations:
        Safety cap forwarded to the peeling loops.
    """
    graph = bundle.graph
    start = time.perf_counter()
    vertices: Set[Vertex] = set()
    found = False
    if method == "PSA":
        psa = psa_search(graph, [q_left, q_right], k=k, instrumentation=instrumentation)
        if psa is not None:
            vertices = psa.vertices
            found = True
    elif method == "CTC":
        ctc = ctc_search(
            graph,
            [q_left, q_right],
            k=None,
            max_iterations=max_iterations,
            instrumentation=instrumentation,
        )
        if ctc is not None:
            vertices = ctc.vertices
            found = True
    elif method == "Online-BCC":
        result = online_bcc_search(
            graph,
            q_left,
            q_right,
            k1=k,
            k2=k,
            b=b,
            max_iterations=max_iterations,
            instrumentation=instrumentation,
        )
        if result is not None:
            vertices = result.vertices
            found = True
    elif method == "LP-BCC":
        result = lp_bcc_search(
            graph,
            q_left,
            q_right,
            k1=k,
            k2=k,
            b=b,
            max_iterations=max_iterations,
            instrumentation=instrumentation,
        )
        if result is not None:
            vertices = result.vertices
            found = True
    elif method == "L2P-BCC":
        result = l2p_bcc_search(
            graph,
            q_left,
            q_right,
            k1=k,
            k2=k,
            b=b,
            index=index,
            max_iterations=max_iterations,
            instrumentation=instrumentation,
        )
        if result is not None:
            vertices = result.vertices
            found = True
    else:
        raise ValueError(f"unknown method {method!r}; known: {METHOD_NAMES}")
    elapsed = time.perf_counter() - start

    outcome = QueryOutcome(
        method=method,
        query=(q_left, q_right),
        vertices=vertices,
        seconds=elapsed,
        found=found,
        instrumentation=instrumentation,
    )
    truth = bundle.community_for_query(q_left, q_right)
    if truth is not None:
        outcome.f1 = f1_score(vertices, truth.members) if found else 0.0
    return outcome


def evaluate_methods(
    bundle: DatasetBundle,
    methods: Sequence[str] = tuple(METHOD_NAMES),
    spec: QuerySpec = QuerySpec(count=10),
    seed: int = 0,
    k: Optional[int] = None,
    b: int = 1,
    share_index: bool = True,
) -> Dict[str, MethodSummary]:
    """Run several methods over a generated workload and aggregate per method.

    Returns a mapping from method name to :class:`MethodSummary`; this is one
    dataset's worth of Figure 4 (``avg_f1``) and Figure 5 (``avg_seconds``).
    """
    pairs = generate_query_pairs(bundle, spec, seed=seed)
    index = BCIndex(bundle.graph) if share_index else None
    summaries: Dict[str, MethodSummary] = {}
    for method in methods:
        f1_scores: List[float] = []
        times: List[float] = []
        answered = 0
        for q_left, q_right in pairs:
            outcome = run_method(
                method, bundle, q_left, q_right, k=k, b=b, index=index
            )
            times.append(outcome.seconds)
            if outcome.found:
                answered += 1
            if outcome.f1 is not None:
                f1_scores.append(outcome.f1)
        summaries[method] = MethodSummary(
            method=method,
            dataset=bundle.name,
            queries=len(pairs),
            answered=answered,
            avg_f1=average_f1(f1_scores),
            avg_seconds=sum(times) / len(times) if times else 0.0,
            total_seconds=sum(times),
        )
    return summaries


def evaluate_multilabel(
    bundle: DatasetBundle,
    num_labels: int,
    methods: Sequence[str] = ("L2P-BCC",),
    count: int = 5,
    seed: int = 0,
    b: int = 1,
) -> Dict[str, MethodSummary]:
    """Run the multi-label experiments (Exp-9 / Exp-10) for one label count ``m``.

    The mBCC search framework (Algorithm 9) is used for every BCC variant; the
    CTC and PSA baselines treat the query tuple as a plain vertex set.
    """
    queries = generate_multilabel_queries(bundle, num_labels, count=count, seed=seed)
    summaries: Dict[str, MethodSummary] = {}
    for method in methods:
        f1_scores: List[float] = []
        times: List[float] = []
        answered = 0
        for query in queries:
            start = time.perf_counter()
            vertices: Set[Vertex] = set()
            found = False
            if method in BCC_METHOD_NAMES:
                result = mbcc_search(bundle.graph, list(query), b=b, max_iterations=200)
                if result is not None:
                    vertices = result.vertices
                    found = True
            elif method == "CTC":
                ctc = ctc_search(bundle.graph, list(query), max_iterations=200)
                if ctc is not None:
                    vertices = ctc.vertices
                    found = True
            elif method == "PSA":
                psa = psa_search(bundle.graph, list(query))
                if psa is not None:
                    vertices = psa.vertices
                    found = True
            else:
                raise ValueError(f"unknown method {method!r}")
            elapsed = time.perf_counter() - start
            times.append(elapsed)
            if found:
                answered += 1
            truth = None
            for community in bundle.communities:
                if all(q in community for q in query):
                    truth = community
                    break
            if truth is not None:
                f1_scores.append(f1_score(vertices, truth.members) if found else 0.0)
        summaries[method] = MethodSummary(
            method=method,
            dataset=f"{bundle.name}(m={num_labels})",
            queries=len(queries),
            answered=answered,
            avg_f1=average_f1(f1_scores),
            avg_seconds=sum(times) / len(times) if times else 0.0,
            total_seconds=sum(times),
        )
    return summaries
