"""Per-search instrumentation counters.

Exp-5 (Table 4) of the paper breaks a search down into the time spent on
query-distance calculation, the time spent updating leader-pair butterfly
degrees, and the number of times the full butterfly-counting procedure
(Algorithm 3) is invoked.  :class:`SearchInstrumentation` collects exactly
those quantities; every search algorithm accepts an optional instance and
records into it, so the benchmark harness can reproduce the table without
touching algorithm internals.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class SearchInstrumentation:
    """Counters and timers collected during one (or more) community searches."""

    butterfly_counting_calls: int = 0
    query_distance_seconds: float = 0.0
    leader_update_seconds: float = 0.0
    total_seconds: float = 0.0
    iterations: int = 0
    vertices_deleted: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_butterfly_counting(self, calls: int = 1) -> None:
        """Record that Algorithm 3 ran ``calls`` more times."""
        self.butterfly_counting_calls += calls

    def record_iteration(self, deleted: int = 0) -> None:
        """Record one peeling iteration that removed ``deleted`` vertices."""
        self.iterations += 1
        self.vertices_deleted += deleted

    def add(self, key: str, value: float) -> None:
        """Accumulate ``value`` into the free-form counter ``key``."""
        self.extra[key] = self.extra.get(key, 0.0) + value

    @contextmanager
    def time_query_distance(self) -> Iterator[None]:
        """Context manager accumulating wall time into query-distance seconds."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.query_distance_seconds += time.perf_counter() - start

    @contextmanager
    def time_leader_update(self) -> Iterator[None]:
        """Context manager accumulating wall time into leader-update seconds."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.leader_update_seconds += time.perf_counter() - start

    @contextmanager
    def time_total(self) -> Iterator[None]:
        """Context manager accumulating wall time into the total-seconds counter."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.total_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "SearchInstrumentation") -> None:
        """Accumulate another instrumentation record into this one."""
        self.butterfly_counting_calls += other.butterfly_counting_calls
        self.query_distance_seconds += other.query_distance_seconds
        self.leader_update_seconds += other.leader_update_seconds
        self.total_seconds += other.total_seconds
        self.iterations += other.iterations
        self.vertices_deleted += other.vertices_deleted
        for key, value in other.extra.items():
            self.add(key, value)

    def as_dict(self) -> Dict[str, float]:
        """Return a flat dictionary of all counters (for reporting)."""
        payload: Dict[str, float] = {
            "butterfly_counting_calls": float(self.butterfly_counting_calls),
            "query_distance_seconds": self.query_distance_seconds,
            "leader_update_seconds": self.leader_update_seconds,
            "total_seconds": self.total_seconds,
            "iterations": float(self.iterations),
            "vertices_deleted": float(self.vertices_deleted),
        }
        payload.update(self.extra)
        return payload

    def reset(self) -> None:
        """Zero every counter."""
        self.butterfly_counting_calls = 0
        self.query_distance_seconds = 0.0
        self.leader_update_seconds = 0.0
        self.total_seconds = 0.0
        self.iterations = 0
        self.vertices_deleted = 0
        self.extra.clear()
