"""The typed JSON wire codec of the HTTP serving gateway.

One module owns the wire shapes of :class:`repro.api.Query`,
:class:`repro.api.BatchQuery` and :class:`repro.api.SearchResponse`, so the
gateway (:mod:`repro.server.app`) and the client
(:mod:`repro.server.client`) can never drift apart.  Three rules govern the
codec:

* **Exact round-tripping.**  ``decode(encode(x))`` restores every field a
  caller can observe: status and reason codes verbatim, community member
  sets, iteration counts and — the subtle one — ``math.inf`` query
  distances.  ``json.dumps`` would happily emit ``Infinity``, which is not
  JSON (``json.loads(..., parse_constant=...)`` on a strict peer rejects
  it), so non-finite floats ride the wire as the strings ``"inf"`` /
  ``"-inf"`` and are restored on decode.  :func:`json_dumps` passes
  ``allow_nan=False`` so a non-finite float that escaped the codec fails
  loudly at the boundary instead of producing invalid JSON.
* **Scalars only.**  Vertices and labels may be any hashable object
  in-process; on the wire they must be JSON scalars (``str`` / ``int`` /
  ``float`` / ``bool``) or the round-trip would silently mangle them
  (tuples become lists, objects become reprs).  The codec refuses anything
  else with :class:`ProtocolError`.
* **Reject, don't guess.**  Unknown config fields, malformed envelopes and
  non-standard JSON constants raise :class:`ProtocolError` — a wire peer
  speaking a different schema version fails fast, not subtly.

The reason→HTTP-status mapping lives next to the reason codes themselves
(:data:`repro.exceptions.HTTP_STATUS_BY_REASON`); this module re-exports
:func:`repro.exceptions.http_status_for_response` as the single place the
gateway asks "which status code does this response ship with".
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Dict, Iterable, List, Optional, Union

from repro.api.config import SearchConfig
from repro.api.query import (
    STATUS_EMPTY,
    STATUS_ERROR,
    STATUS_OK,
    BatchQuery,
    Query,
    SearchResponse,
)
from repro.core.path_weight import PathWeightConfig
from repro.exceptions import (
    HTTP_STATUS_BY_REASON,
    ReproError,
    http_status_for_response,
)

__all__ = [
    "HTTP_STATUS_BY_REASON",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "WireResult",
    "decode_batch",
    "decode_config",
    "decode_float",
    "decode_query",
    "decode_response",
    "decode_trace_context",
    "encode_batch",
    "encode_config",
    "encode_float",
    "encode_query",
    "encode_response",
    "encode_trace_context",
    "http_status_for_response",
    "jsonable",
    "json_dumps",
    "json_loads",
]

#: Wire-schema version; served on ``/healthz`` so clients can detect skew.
PROTOCOL_VERSION = 1

#: Wire spellings of the non-finite floats JSON cannot carry.
_POS_INF = "inf"
_NEG_INF = "-inf"

#: JSON scalar types a vertex or label may be without losing identity.
_SCALARS = (str, int, float, bool)

#: Statuses a wire response may carry.
_STATUSES = (STATUS_OK, STATUS_EMPTY, STATUS_ERROR)


class ProtocolError(ReproError, ValueError):
    """Raised when a value cannot be encoded to, or decoded from, the wire."""


# ----------------------------------------------------------------------
# floats and scalars
# ----------------------------------------------------------------------
def encode_float(value: float) -> Union[float, str]:
    """A JSON-safe float: finite values pass, infinities become strings.

    NaN is refused — no field in the serving tier legitimately produces it,
    so one reaching the boundary is a bug upstream, not a value to ship.
    """
    value = float(value)
    if math.isnan(value):
        raise ProtocolError("NaN cannot be encoded on the wire")
    if math.isinf(value):
        return _POS_INF if value > 0 else _NEG_INF
    return value


def decode_float(value: object) -> float:
    """Restore a float encoded by :func:`encode_float` (exactly)."""
    if value == _POS_INF:
        return math.inf
    if value == _NEG_INF:
        return -math.inf
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"not a wire float: {value!r}")
    return float(value)


def _check_scalar(value: object, what: str) -> object:
    """Require a JSON scalar so the value round-trips without mangling."""
    if not isinstance(value, _SCALARS):
        raise ProtocolError(
            f"{what} must be a JSON scalar (str/int/float/bool) to round-trip "
            f"exactly; got {type(value).__name__}: {value!r}"
        )
    return value


# ----------------------------------------------------------------------
# strict JSON envelope
# ----------------------------------------------------------------------
def _reject_constant(name: str) -> float:
    raise ProtocolError(
        f"non-standard JSON constant {name!r} on the wire; "
        f"infinite distances are encoded as the string {_POS_INF!r}"
    )


def json_dumps(payload: object) -> str:
    """Serialize a wire payload, refusing non-finite floats outright."""
    try:
        return json.dumps(payload, allow_nan=False, sort_keys=True)
    except ValueError as exc:
        raise ProtocolError(f"payload is not wire-safe: {exc}") from exc


def json_loads(text: Union[str, bytes]) -> object:
    """Parse a wire payload strictly: ``Infinity``/``NaN`` are rejected."""
    try:
        return json.loads(text, parse_constant=_reject_constant)
    except ProtocolError:
        raise
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed JSON on the wire: {exc}") from exc


def _require_mapping(payload: object, what: str) -> Dict[str, object]:
    if not isinstance(payload, dict):
        raise ProtocolError(f"{what} must be a JSON object, got {type(payload).__name__}")
    return payload


# ----------------------------------------------------------------------
# SearchConfig
# ----------------------------------------------------------------------
def encode_config(config: Optional[SearchConfig]) -> Optional[Dict[str, object]]:
    """Encode a config field-for-field (``None`` stays ``None``)."""
    if config is None:
        return None
    payload: Dict[str, object] = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if field.name == "path_config":
            payload[field.name] = {
                "gamma1": encode_float(value.gamma1),
                "gamma2": encode_float(value.gamma2),
            }
        elif field.name == "core_parameters":
            payload[field.name] = None if value is None else list(value)
        else:
            payload[field.name] = value
    return payload


def encode_trace_context(request_id: str) -> Dict[str, object]:
    """The wire form of a trace context (today: just the request id).

    Carried as an *optional* message field by the process-pool task
    protocol — untraced messages omit it entirely, so the common case
    stays byte-identical to protocol version 1 payloads.
    """
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("a trace context needs a non-empty request id")
    return {"request_id": request_id}


def decode_trace_context(payload: object) -> Optional[str]:
    """The request id of a wire trace context (``None`` stays ``None``)."""
    if payload is None:
        return None
    payload = _require_mapping(payload, "trace context")
    request_id = payload.get("request_id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError(
            "a trace context needs a non-empty string request_id"
        )
    return request_id


def decode_config(payload: object) -> Optional[SearchConfig]:
    """Restore a config; unknown fields mean schema skew and are refused."""
    if payload is None:
        return None
    payload = dict(_require_mapping(payload, "config"))
    known = {field.name for field in dataclasses.fields(SearchConfig)}
    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(f"unknown config fields on the wire: {sorted(unknown)}")
    if "path_config" in payload:
        block = _require_mapping(payload["path_config"], "config.path_config")
        payload["path_config"] = PathWeightConfig(
            gamma1=decode_float(block.get("gamma1", 0.5)),
            gamma2=decode_float(block.get("gamma2", 0.5)),
        )
    if payload.get("core_parameters") is not None:
        payload["core_parameters"] = tuple(payload["core_parameters"])
    try:
        return SearchConfig(**payload)
    except (ReproError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid config on the wire: {exc}") from exc


# ----------------------------------------------------------------------
# Query / BatchQuery
# ----------------------------------------------------------------------
def encode_query(query: Query) -> Dict[str, object]:
    """Encode one query: method, scalar vertices, optional config."""
    return {
        "method": query.method,
        "vertices": [
            _check_scalar(vertex, "query vertex") for vertex in query.vertices
        ],
        "config": encode_config(query.config),
    }


def decode_query(payload: object) -> Query:
    """Restore one query (validation re-runs in ``Query.__post_init__``)."""
    payload = _require_mapping(payload, "query")
    method = payload.get("method")
    if not isinstance(method, str):
        raise ProtocolError(f"query method must be a string, got {method!r}")
    vertices = payload.get("vertices")
    if not isinstance(vertices, list):
        raise ProtocolError("query vertices must be a JSON array")
    try:
        return Query(
            method=method,
            vertices=tuple(
                _check_scalar(vertex, "query vertex") for vertex in vertices
            ),
            config=decode_config(payload.get("config")),
        )
    except ReproError as exc:
        if isinstance(exc, ProtocolError):
            raise
        raise ProtocolError(f"invalid query on the wire: {exc}") from exc


def encode_batch(batch: Union[BatchQuery, Iterable[Query]]) -> Dict[str, object]:
    """Encode a batch; a plain iterable of queries is wrapped first."""
    if not isinstance(batch, BatchQuery):
        batch = BatchQuery(queries=tuple(batch))
    return {
        "queries": [encode_query(query) for query in batch.queries],
        "config": encode_config(batch.config),
    }


def decode_batch(payload: object) -> BatchQuery:
    """Restore a batch (member validation re-runs in ``__post_init__``)."""
    payload = _require_mapping(payload, "batch")
    queries = payload.get("queries")
    if not isinstance(queries, list):
        raise ProtocolError("batch queries must be a JSON array")
    return BatchQuery(
        queries=tuple(decode_query(member) for member in queries),
        config=decode_config(payload.get("config")),
    )


# ----------------------------------------------------------------------
# SearchResponse
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class WireResult:
    """The decoded stand-in for a method-native result object.

    The gateway does not ship ``BCCResult``/``MBCCResult`` object graphs —
    it ships what a caller observes: the member set, the iteration count
    and the query distance.  ``SearchResponse``'s derived properties
    (``iterations``, ``query_distance``) read these via ``getattr``, so a
    decoded response behaves exactly like the in-process one.
    """

    vertices: frozenset
    iterations: int
    query_distance: float


def _sorted_wire_vertices(vertices: Iterable[object]) -> List[object]:
    """Vertices as a deterministically ordered JSON array."""
    checked = [_check_scalar(vertex, "response vertex") for vertex in vertices]
    # A graph may mix vertex types (ints and strings); sort within a stable
    # type grouping so encoding never raises a cross-type TypeError.
    return sorted(checked, key=lambda v: (type(v).__name__, repr(v)))


def encode_response(response: SearchResponse) -> Dict[str, object]:
    """Encode the observable surface of one response.

    ``query_distance`` and ``iterations`` are materialized from the native
    result object here (they are derived properties in-process); timings
    ride as a plain float map.  The native ``result`` object and the
    instrumentation stay server-side.
    """
    payload: Dict[str, object] = {
        "method": response.method,
        "query": [
            _check_scalar(vertex, "response query vertex")
            for vertex in response.query
        ],
        "status": response.status,
        "reason": response.reason,
        "error": response.error,
        "vertices": _sorted_wire_vertices(response.vertices),
        "iterations": response.iterations,
        "query_distance": encode_float(response.query_distance),
        "timings": {
            name: encode_float(value)
            for name, value in response.timings.items()
        },
    }
    # Only degraded (stale-cache) answers carry the marker; the common case
    # stays byte-identical to protocol version 1 payloads.
    if getattr(response, "degraded", False):
        payload["degraded"] = True
    return payload


def decode_response(payload: object) -> SearchResponse:
    """Restore a :class:`SearchResponse` equal to the served one.

    Equality here means every observable field: status, reason, error,
    member set, iteration count, timings, and a ``query_distance`` that is
    *exactly* ``math.inf`` again for empty/error rows.
    """
    payload = _require_mapping(payload, "response")
    status = payload.get("status")
    if status not in _STATUSES:
        raise ProtocolError(f"unknown response status on the wire: {status!r}")
    for field in ("method", "query", "vertices", "timings"):
        if field not in payload:
            raise ProtocolError(f"response is missing the {field!r} field")
    if not isinstance(payload["query"], list) or not isinstance(
        payload["vertices"], list
    ):
        raise ProtocolError("response query/vertices must be JSON arrays")
    vertices = set(payload["vertices"])
    distance = decode_float(payload.get("query_distance", _POS_INF))
    result: Optional[WireResult] = None
    if status == STATUS_OK:
        result = WireResult(
            vertices=frozenset(vertices),
            iterations=int(payload.get("iterations", 0)),
            query_distance=distance,
        )
    timings = _require_mapping(payload["timings"], "response timings")
    return SearchResponse(
        method=str(payload["method"]),
        query=tuple(payload["query"]),
        status=status,
        result=result,
        reason=payload.get("reason"),
        error=payload.get("error"),
        vertices=vertices,
        timings={name: decode_float(value) for name, value in timings.items()},
        degraded=bool(payload.get("degraded", False)),
    )


# ----------------------------------------------------------------------
# best-effort JSON view (explain payloads, stats)
# ----------------------------------------------------------------------
def jsonable(value: object) -> object:
    """A lossy-but-safe JSON view of an arbitrary introspection payload.

    ``explain`` dictionaries mix tuples, sets, labels and floats; they are
    *reports*, not round-tripped values, so containers become arrays,
    non-finite floats become their wire strings, non-scalar leaves become
    ``repr`` strings, and mapping keys become strings.
    """
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=lambda v: (type(v).__name__, repr(v)))
        return [jsonable(item) for item in items]
    if isinstance(value, float):
        return encode_float(value) if not math.isnan(value) else "nan"
    if value is None or isinstance(value, (str, int, bool)):
        return value
    return repr(value)
