"""Replica sets: one hot graph served by N engines behind one front.

The sharded engine scales a graph *across* components; a single hot
component still funnels every query through one engine's locks and one
result cache.  :class:`ReplicaSet` is the horizontal answer the ROADMAP's
replica follow-up asks for: N independently prepared engines over the same
graph behind one ``ServingEngine``-shaped front (``search`` /
``search_many`` / ``explain`` / ``counters_snapshot`` / ``stats``), with

* **least-loaded routing** — each query goes to the replica with the
  fewest in-flight queries (ties break to the lowest replica id, so
  single-threaded traffic is deterministic and a warmed replica stays
  warm);
* **merged stats** — per-replica latency histograms are merged bucket-wise
  via :meth:`repro.serving.stats.LatencyHistogram.merge` and engine
  counters are summed, so the stats endpoint shows the set as one engine
  *plus* a per-replica breakdown (routed counts, in-flight gauge);
* **shared substrate, private state** — replicas share the underlying
  ``LabeledGraph`` (whose version-cached CSR freeze is paid once for the
  whole set) but each owns its result cache, label groups, BCindex and
  locks, so concurrent serving threads stop contending on one engine's
  cache lock.

``GraphDirectory.add(name, graph, replicas=N)`` registers a replica set
exactly like any other engine, so a hot graph scales horizontally without
the client noticing.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Union

from repro.api.config import SearchConfig
from repro.api.engine import (
    DEFAULT_RESULT_CACHE_SIZE,
    BCCEngine,
    serve_batch,
)
from repro.api.query import BatchQuery, Query, SearchResponse
from repro.eval.instrumentation import SearchInstrumentation
from repro.graph.labeled_graph import LabeledGraph
from repro.serving.sharded import ShardedBCCEngine
from repro.serving.stats import (
    LatencyHistogram,
    ServingStats,
    aggregate_counters,
    engine_payload,
)


class ReplicaSet:
    """N prepared engines serving one graph with least-loaded routing.

    Parameters
    ----------
    graph:
        The graph to serve, or any object exposing it as ``.graph`` — same
        contract as :class:`BCCEngine`.
    config:
        Base :class:`SearchConfig` handed to every replica.
    replicas:
        Number of engines in the set (>= 1).
    sharded:
        Build each replica as a :class:`ShardedBCCEngine` instead of a
        monolithic :class:`BCCEngine` — replication and sharding compose
        (N replicas, each component-sharded).
    result_cache_size, result_cache_policy:
        Forwarded to every replica's result cache; each replica owns its
        own cache (a policy object is shared — policies are stateless or
        internally locked).

    The set itself adds no new thread-safety requirements: routing state is
    a small in-flight table under one lock, and everything else is the
    replicas' own (already thread-safe) machinery.
    """

    def __init__(
        self,
        graph: Union[LabeledGraph, object],
        config: Optional[SearchConfig] = None,
        replicas: int = 2,
        sharded: bool = False,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        result_cache_policy: Optional[object] = None,
    ) -> None:
        if replicas < 1:
            raise ValueError("a replica set needs at least one replica")
        if not isinstance(graph, LabeledGraph):
            graph = getattr(graph, "graph", graph)
        if not isinstance(graph, LabeledGraph):
            raise TypeError(f"expected a LabeledGraph or bundle, got {type(graph)!r}")
        self.graph: LabeledGraph = graph
        self.config: SearchConfig = config if config is not None else SearchConfig()
        engine_type = ShardedBCCEngine if sharded else BCCEngine
        self._engines: List[Union[BCCEngine, ShardedBCCEngine]] = [
            engine_type(
                graph,
                self.config,
                result_cache_size=result_cache_size,
                result_cache_policy=result_cache_policy,
            )
            for _ in range(replicas)
        ]
        self._sharded = sharded
        self._route_lock = threading.Lock()
        self._in_flight: List[int] = [0] * replicas
        self._routed: List[int] = [0] * replicas
        self._searches = 0
        self._latency: List[LatencyHistogram] = [
            LatencyHistogram() for _ in range(replicas)
        ]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def replica_count(self) -> int:
        """Number of engines in the set."""
        return len(self._engines)

    def replica_engine(self, replica_id: int) -> Union[BCCEngine, ShardedBCCEngine]:
        """The engine behind ``replica_id`` (for tests and introspection)."""
        return self._engines[replica_id]

    def in_flight(self) -> List[int]:
        """A snapshot of the per-replica in-flight gauge."""
        with self._route_lock:
            return list(self._in_flight)

    def _acquire(self) -> int:
        """Claim the least-loaded replica (lowest id wins ties).

        ``routed`` counts every claim (it measures routing balance, so
        attempts belong in it); the set-level ``searches`` counter is
        bumped only once the engine actually serves the query, matching
        :class:`BCCEngine`'s "malformed queries are not served searches"
        semantics — so set-level and summed per-replica counters always
        reconcile.
        """
        with self._route_lock:
            replica_id = min(
                range(len(self._engines)), key=lambda i: (self._in_flight[i], i)
            )
            self._in_flight[replica_id] += 1
            self._routed[replica_id] += 1
            return replica_id

    def _release(self, replica_id: int) -> None:
        with self._route_lock:
            self._in_flight[replica_id] -= 1

    # ------------------------------------------------------------------
    # serving (ServingEngine surface)
    # ------------------------------------------------------------------
    def search(
        self,
        query: Query,
        *,
        config: Optional[SearchConfig] = None,
        instrumentation: Optional[SearchInstrumentation] = None,
        use_cache: bool = True,
    ) -> SearchResponse:
        """Serve one query from the least-loaded replica.

        Same surface and semantics as :meth:`BCCEngine.search` — replicas
        serve the same graph, so *which* replica answers never changes the
        answer (asserted by the replica parity tests); it only changes
        which cache warms and which locks contend.
        """
        replica_id = self._acquire()
        start = time.perf_counter()
        try:
            response = self._engines[replica_id].search(
                query,
                config=config,
                instrumentation=instrumentation,
                use_cache=use_cache,
            )
        finally:
            self._release(replica_id)
        # Served queries only: a malformed query raised above and is
        # neither a search nor a latency observation (same rule as the
        # monolithic and sharded engines).
        self._latency[replica_id].observe(time.perf_counter() - start)
        with self._route_lock:
            self._searches += 1
        return response

    def search_many(
        self,
        queries: Union[BatchQuery, Iterable[Query]],
        *,
        config: Optional[SearchConfig] = None,
        instrumentation: Optional[SearchInstrumentation] = None,
        on_error: str = "raise",
        max_workers: int = 1,
        use_cache: bool = True,
    ) -> List[SearchResponse]:
        """Serve a batch, routing every member query independently.

        One shared batch implementation with the monolithic and sharded
        engines (position alignment, ``on_error``, ``max_workers``,
        ``use_cache``); with ``max_workers > 1`` the in-flight gauge is what
        actually spreads a concurrent batch across replicas.
        """
        return serve_batch(
            self,
            queries,
            config=config,
            instrumentation=instrumentation,
            on_error=on_error,
            max_workers=max_workers,
            use_cache=use_cache,
        )

    def explain(
        self, query: Query, *, config: Optional[SearchConfig] = None
    ) -> Dict[str, object]:
        """Routing info plus the target replica's own engine-level explain.

        Explain routes like a search would (least-loaded at this instant)
        but does not hold the slot — it never runs the query.
        """
        with self._route_lock:
            replica_id = min(
                range(len(self._engines)), key=lambda i: (self._in_flight[i], i)
            )
            in_flight = list(self._in_flight)
        return {
            "replicas": len(self._engines),
            "replica": replica_id,
            "in_flight": in_flight,
            "engine": self._engines[replica_id].explain(query, config=config),
        }

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def counters_snapshot(self) -> Dict[str, int]:
        """Set-level counters: summed engine counters + routing totals.

        The set's own count of served queries wins the ``"searches"`` slot:
        each query ran on exactly one replica, so the sum would normally
        agree, but the set-level number is taken at the set's own edge and
        stays correct even for engines that count router-level
        short-circuits of their own (sharded replicas).
        """
        counters = aggregate_counters(
            [engine.counters_snapshot() for engine in self._engines]
        )
        with self._route_lock:
            counters["searches"] = self._searches
            counters["replicas"] = len(self._engines)
        return counters

    def merged_latency(self) -> LatencyHistogram:
        """All per-replica histograms merged into one (shared bounds)."""
        merged = LatencyHistogram(self._latency[0].bounds)
        for histogram in self._latency:
            merged.merge(histogram)
        return merged

    def stats(self, name: str = "replica-set") -> ServingStats:
        """The stats-endpoint snapshot: merged totals + per-replica blocks.

        ``latency`` is the bucket-wise merge of every replica's histogram;
        ``replicas`` carries one block per replica with its routed count,
        current in-flight gauge and engine counters, so an operator can see
        both the set as one engine and whether routing is balanced.
        """
        with self._route_lock:
            routed = list(self._routed)
            in_flight = list(self._in_flight)
        blocks: List[Dict[str, object]] = []
        cache_hits = 0
        cache_misses = 0
        cache_entries = 0
        for replica_id, engine in enumerate(self._engines):
            if isinstance(engine, BCCEngine):
                payload = engine_payload(engine)
                cache_info = payload["cache"]
                block: Dict[str, object] = {
                    "replica": replica_id,
                    "routed": routed[replica_id],
                    "in_flight": in_flight[replica_id],
                    "prepared": payload["prepared"],
                    "index_built": payload["index_built"],
                    "counters": payload["counters"],
                    "cache": cache_info,
                }
                cache_hits += int(cache_info.get("hits", 0))
                cache_misses += int(cache_info.get("misses", 0))
                cache_entries += int(cache_info.get("entries", 0))
            else:  # sharded replica: reuse its own aggregated snapshot
                shard_stats = engine.stats(name=f"{name}/replica{replica_id}")
                block = {
                    "replica": replica_id,
                    "routed": routed[replica_id],
                    "in_flight": in_flight[replica_id],
                    "shards": len(shard_stats.shards),
                    "counters": dict(shard_stats.counters),
                    "cache": dict(shard_stats.cache),
                }
                cache_hits += int(shard_stats.cache.get("hits", 0))
                cache_misses += int(shard_stats.cache.get("misses", 0))
                cache_entries += int(shard_stats.cache.get("entries", 0))
            blocks.append(block)
        lookups = cache_hits + cache_misses
        return ServingStats(
            name=name,
            kind="replicated",
            graph={
                "vertices": self.graph.num_vertices(),
                "edges": self.graph.num_edges(),
                "version": self.graph.version(),
            },
            counters=self.counters_snapshot(),
            cache={
                "hits": cache_hits,
                "misses": cache_misses,
                "entries": cache_entries,
                "hit_rate": (cache_hits / lookups) if lookups else None,
            },
            latency=self.merged_latency().snapshot(),
            replicas=tuple(blocks),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplicaSet(|V|={self.graph.num_vertices()}, "
            f"replicas={len(self._engines)}, "
            f"sharded={self._sharded}, searches={self._searches})"
        )
