"""Replica sets: one hot graph served by N engines behind one front.

The sharded engine scales a graph *across* components; a single hot
component still funnels every query through one engine's locks and one
result cache.  :class:`ReplicaSet` is the horizontal answer the ROADMAP's
replica follow-up asks for: N independently prepared engines over the same
graph behind one ``ServingEngine``-shaped front (``search`` /
``search_many`` / ``explain`` / ``counters_snapshot`` / ``stats``), with

* **least-loaded routing** — each query goes to the replica with the
  fewest in-flight queries (ties break to the lowest replica id, so
  single-threaded traffic is deterministic and a warmed replica stays
  warm);
* **merged stats** — per-replica latency histograms are merged bucket-wise
  via :meth:`repro.serving.stats.LatencyHistogram.merge` and engine
  counters are summed, so the stats endpoint shows the set as one engine
  *plus* a per-replica breakdown (routed counts, in-flight gauge);
* **shared substrate, private state** — replicas share the underlying
  ``LabeledGraph`` (whose version-cached CSR freeze is paid once for the
  whole set) but each owns its result cache, label groups, BCindex and
  locks, so concurrent serving threads stop contending on one engine's
  cache lock;
* **health, ejection & failover** — every replica carries a
  :class:`repro.server.resilience.ReplicaHealth` circuit breaker: a query
  that fails with a *non-caller* error (an engine crash, an injected
  fault) is transparently retried on another healthy replica, the failing
  replica accrues a health penalty, and after
  ``HealthPolicy.failure_threshold`` consecutive failures it is ejected
  from routing; after ``ejection_seconds`` the breaker admits one probe
  query whose outcome re-admits or re-ejects it.  Caller errors
  (:class:`~repro.exceptions.QueryError`, a missing query vertex) raise
  through unchanged and never penalize a replica — a bad query is not a
  sick server.  When *every* replica is ejected,
  :class:`~repro.exceptions.AllReplicasEjectedError` is raised instead of
  hanging.

``GraphDirectory.add(name, graph, replicas=N)`` registers a replica set
exactly like any other engine, so a hot graph scales horizontally without
the client noticing.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Set, Union

from repro.api.config import SearchConfig
from repro.api.engine import (
    DEFAULT_RESULT_CACHE_SIZE,
    BCCEngine,
    is_caller_error,
    serve_batch,
)
from repro.api.query import BatchQuery, Query, SearchResponse
from repro.eval.instrumentation import SearchInstrumentation
from repro.exceptions import AllReplicasEjectedError
from repro.graph.labeled_graph import LabeledGraph
from repro.obs.tracing import span as obs_span
from repro.server.resilience import HealthPolicy, ReplicaHealth
from repro.serving.sharded import ShardedBCCEngine
from repro.serving.stats import (
    LatencyHistogram,
    ServingStats,
    aggregate_counters,
    engine_payload,
)


class ReplicaSet:
    """N prepared engines serving one graph with least-loaded routing.

    Parameters
    ----------
    graph:
        The graph to serve, or any object exposing it as ``.graph`` — same
        contract as :class:`BCCEngine`.
    config:
        Base :class:`SearchConfig` handed to every replica.
    replicas:
        Number of engines in the set (>= 1).
    sharded:
        Build each replica as a :class:`ShardedBCCEngine` instead of a
        monolithic :class:`BCCEngine` — replication and sharding compose
        (N replicas, each component-sharded).
    result_cache_size, result_cache_policy:
        Forwarded to every replica's result cache; each replica owns its
        own cache (a policy object is shared — policies are stateless or
        internally locked).
    health_policy:
        The per-replica :class:`HealthPolicy` (one breaker per replica,
        shared policy).  Defaults to ``HealthPolicy()``.
    fault_plan:
        Optional :class:`repro.server.faults.FaultPlan` consulted at the
        ``"replica.search"`` site before each dispatch (chaos testing).
    clock:
        Monotonic clock driving the breakers' ejection windows — injectable
        so chaos tests advance time without sleeping.
    member_backend:
        ``"thread"`` (default) builds in-process engines.  ``"process"``
        builds each member as a :class:`repro.parallel.ProcessEngine`
        with one worker process, every member attached to **one** shared
        graph export — N members map the CSR arrays N times but copy them
        zero times — so a member crash is a real process death the health
        breaker ejects and the pool respawns behind it.  When shared
        memory is unavailable the set degrades to thread members with a
        one-time warning.  Process-backed sets should be :meth:`close`\\ d.

    The set itself adds no new thread-safety requirements: routing state is
    a small in-flight table under one lock, breakers carry their own locks,
    and everything else is the replicas' own (already thread-safe)
    machinery.
    """

    def __init__(
        self,
        graph: Union[LabeledGraph, object],
        config: Optional[SearchConfig] = None,
        replicas: int = 2,
        sharded: bool = False,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        result_cache_policy: Optional[object] = None,
        health_policy: Optional[HealthPolicy] = None,
        fault_plan: Optional[object] = None,
        clock: Callable[[], float] = time.monotonic,
        member_backend: str = "thread",
    ) -> None:
        if replicas < 1:
            raise ValueError("a replica set needs at least one replica")
        if member_backend not in ("thread", "process"):
            raise ValueError(
                f"unknown member_backend {member_backend!r}; "
                "known: ('thread', 'process')"
            )
        if not isinstance(graph, LabeledGraph):
            graph = getattr(graph, "graph", graph)
        if not isinstance(graph, LabeledGraph):
            raise TypeError(f"expected a LabeledGraph or bundle, got {type(graph)!r}")
        self.graph: LabeledGraph = graph
        self.config: SearchConfig = config if config is not None else SearchConfig()
        self._export: Optional[object] = None  # shared graph export (process)
        engines: Optional[List[object]] = None
        if member_backend == "process":
            engines = self._build_process_members(
                replicas, sharded, result_cache_size
            )
            if engines is None:  # graceful degrade: thread members
                member_backend = "thread"
        if engines is None:
            engine_type = ShardedBCCEngine if sharded else BCCEngine
            engines = [
                engine_type(
                    graph,
                    self.config,
                    result_cache_size=result_cache_size,
                    result_cache_policy=result_cache_policy,
                )
                for _ in range(replicas)
            ]
        self._engines: List[object] = engines
        self._member_backend = member_backend
        self._sharded = sharded
        self._fault_plan = fault_plan
        self.health_policy = (
            health_policy if health_policy is not None else HealthPolicy()
        )
        self._health: List[ReplicaHealth] = [
            ReplicaHealth(self.health_policy, clock=clock) for _ in range(replicas)
        ]
        self._route_lock = threading.Lock()
        self._in_flight: List[int] = [0] * replicas
        self._routed: List[int] = [0] * replicas
        self._searches = 0
        self._failovers = 0
        self._replica_failures = 0
        self._latency: List[LatencyHistogram] = [
            LatencyHistogram() for _ in range(replicas)
        ]

    # ------------------------------------------------------------------
    # process-backed members
    # ------------------------------------------------------------------
    def _build_process_members(
        self, replicas: int, sharded: bool, result_cache_size: int
    ) -> Optional[List[object]]:
        """N one-worker process engines over one shared export, or ``None``.

        ``None`` means the substrate is unavailable; the caller degrades
        to thread members (one-time warning, never an error).
        """
        from repro.api.engine import _warn_process_fallback_once
        from repro.parallel.process_engine import ProcessEngine
        from repro.parallel.shm import ProcessBackendUnavailable, export_graph
        from repro.server.protocol import encode_config

        try:
            export = export_graph(
                self.graph,
                encode_config(self.config),
                sharded=sharded,
                result_cache_size=result_cache_size,
            )
        except ProcessBackendUnavailable as exc:
            _warn_process_fallback_once(str(exc))
            return None
        self._export = export
        return [
            ProcessEngine(self.graph, self.config, workers=1, export=export)
            for _ in range(replicas)
        ]

    @property
    def member_backend(self) -> str:
        """``"thread"`` or ``"process"`` — what the members actually are."""
        return self._member_backend

    def close(self) -> None:
        """Shut down process-backed members and the shared export.

        Idempotent and safe on thread-member sets (where it also tears
        down any lazy per-member process pools).
        """
        for engine in self._engines:
            closer = getattr(engine, "close", None)
            if closer is None:
                closer = getattr(engine, "close_process_pool", None)
            if closer is not None:
                closer()
        if self._export is not None:
            self._export.close()
            self._export = None

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def replica_count(self) -> int:
        """Number of engines in the set."""
        return len(self._engines)

    def replica_engine(self, replica_id: int) -> Union[BCCEngine, ShardedBCCEngine]:
        """The engine behind ``replica_id`` (for tests and introspection)."""
        return self._engines[replica_id]

    def in_flight(self) -> List[int]:
        """A snapshot of the per-replica in-flight gauge."""
        with self._route_lock:
            return list(self._in_flight)

    def replica_health(self, replica_id: int) -> ReplicaHealth:
        """The health breaker behind ``replica_id`` (tests, introspection)."""
        return self._health[replica_id]

    def _acquire(self, exclude: Optional[Set[int]] = None) -> int:
        """Claim the least-loaded *healthy* replica (lowest id wins ties).

        ``routed`` counts every claim (it measures routing balance, so
        attempts belong in it); the set-level ``searches`` counter is
        bumped only once the engine actually serves the query, matching
        :class:`BCCEngine`'s "malformed queries are not served searches"
        semantics — so set-level and summed per-replica counters always
        reconcile.

        ``exclude`` lists replicas that already failed this query (failover
        must not bounce back to them).  Ejected replicas are skipped via
        their breaker; when no replica will admit the query,
        :class:`AllReplicasEjectedError` is raised rather than queueing
        onto a dead set.
        """
        excluded = exclude if exclude is not None else frozenset()
        with self._route_lock:
            order = sorted(
                range(len(self._engines)), key=lambda i: (self._in_flight[i], i)
            )
            for replica_id in order:
                if replica_id in excluded:
                    continue
                # try_admit() takes the breaker's own lock inside the route
                # lock; breakers never take the route lock, so the order is
                # acyclic.
                if not self._health[replica_id].try_admit():
                    continue
                self._in_flight[replica_id] += 1
                self._routed[replica_id] += 1
                return replica_id
        raise AllReplicasEjectedError(
            name="replica-set", replicas=len(self._engines)
        )

    def _release(self, replica_id: int) -> None:
        with self._route_lock:
            self._in_flight[replica_id] -= 1

    # ------------------------------------------------------------------
    # serving (ServingEngine surface)
    # ------------------------------------------------------------------
    def search(
        self,
        query: Query,
        *,
        config: Optional[SearchConfig] = None,
        instrumentation: Optional[SearchInstrumentation] = None,
        use_cache: bool = True,
    ) -> SearchResponse:
        """Serve one query from the least-loaded healthy replica.

        Same surface and semantics as :meth:`BCCEngine.search` — replicas
        serve the same graph, so *which* replica answers never changes the
        answer (asserted by the replica parity tests); it only changes
        which cache warms and which locks contend.

        A replica that fails with a non-caller error is charged a health
        failure and the query **fails over** to another healthy replica
        (each replica is tried at most once per query).  Caller errors
        re-raise immediately without a health verdict.  Once every replica
        has either failed this query or refused admission, the last
        replica's error propagates — or :class:`AllReplicasEjectedError`
        when nothing would even admit the query.
        """
        tried: Set[int] = set()
        last_error: Optional[BaseException] = None
        while True:
            try:
                replica_id = self._acquire(exclude=tried)
            except AllReplicasEjectedError:
                if last_error is not None:
                    # At least one replica actually ran (and failed) this
                    # query — its error is the informative one.
                    raise last_error
                raise
            health = self._health[replica_id]
            start = time.perf_counter()
            try:
                with obs_span("replica.search", replica=replica_id) as attempt:
                    if self._fault_plan is not None:
                        self._fault_plan.on(
                            "replica.search",
                            replica=replica_id,
                            method=query.method,
                            vertices=query.vertices,
                        )
                    response = self._engines[replica_id].search(
                        query,
                        config=config,
                        instrumentation=instrumentation,
                        use_cache=use_cache,
                    )
            except BaseException as exc:
                if is_caller_error(query, exc):
                    # Bad query, fine replica: no health verdict (beyond
                    # releasing a claimed probe slot), no failover — the
                    # same query would fail identically everywhere.
                    health.record_neutral()
                    raise
                # The finished attempt span records which replica failed
                # (the failover retry opens its own span next iteration).
                attempt.annotate(failed=True, error=type(exc).__name__)
                health.record_failure()
                with self._route_lock:
                    self._replica_failures += 1
                    self._failovers += 1
                tried.add(replica_id)
                last_error = exc
                continue
            finally:
                # The in-flight gauge must come back down on *every* path —
                # success, caller error, replica failure — or a crashing
                # replica would permanently look loaded and skew routing.
                self._release(replica_id)
            elapsed = time.perf_counter() - start
            health.record_success(elapsed)
            # Served queries only: a malformed query raised above and is
            # neither a search nor a latency observation (same rule as the
            # monolithic and sharded engines).
            self._latency[replica_id].observe(elapsed)
            with self._route_lock:
                self._searches += 1
            return response

    def search_many(
        self,
        queries: Union[BatchQuery, Iterable[Query]],
        *,
        config: Optional[SearchConfig] = None,
        instrumentation: Optional[SearchInstrumentation] = None,
        on_error: str = "raise",
        max_workers: int = 1,
        use_cache: bool = True,
    ) -> List[SearchResponse]:
        """Serve a batch, routing every member query independently.

        One shared batch implementation with the monolithic and sharded
        engines (position alignment, ``on_error``, ``max_workers``,
        ``use_cache``); with ``max_workers > 1`` the in-flight gauge is what
        actually spreads a concurrent batch across replicas.
        """
        return serve_batch(
            self,
            queries,
            config=config,
            instrumentation=instrumentation,
            on_error=on_error,
            max_workers=max_workers,
            use_cache=use_cache,
        )

    def explain(
        self, query: Query, *, config: Optional[SearchConfig] = None
    ) -> Dict[str, object]:
        """Routing info plus the target replica's own engine-level explain.

        Explain routes like a search would (least-loaded at this instant)
        but does not hold the slot — it never runs the query.
        """
        with self._route_lock:
            replica_id = min(
                range(len(self._engines)), key=lambda i: (self._in_flight[i], i)
            )
            in_flight = list(self._in_flight)
        return {
            "replicas": len(self._engines),
            "replica": replica_id,
            "in_flight": in_flight,
            "engine": self._engines[replica_id].explain(query, config=config),
        }

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def counters_snapshot(self) -> Dict[str, int]:
        """Set-level counters: summed engine counters + routing totals.

        The set's own count of served queries wins the ``"searches"`` slot:
        each query ran on exactly one replica, so the sum would normally
        agree, but the set-level number is taken at the set's own edge and
        stays correct even for engines that count router-level
        short-circuits of their own (sharded replicas).
        """
        counters = aggregate_counters(
            [engine.counters_snapshot() for engine in self._engines]
        )
        health_snapshots = [health.snapshot() for health in self._health]
        with self._route_lock:
            counters["searches"] = self._searches
            counters["replicas"] = len(self._engines)
            counters["failovers"] = self._failovers
            counters["replica_failures"] = self._replica_failures
        counters["ejections"] = sum(
            int(snap["ejections"]) for snap in health_snapshots
        )
        counters["readmissions"] = sum(
            int(snap["readmissions"]) for snap in health_snapshots
        )
        return counters

    def health_summary(self) -> Dict[str, object]:
        """The set's health as one coarse verdict plus per-replica states.

        ``state`` is ``"ok"`` when every replica would admit a query,
        ``"degraded"`` when some would, ``"down"`` when none would (the
        gateway's ``/healthz`` turns ``"down"`` into a 503).  Uses the
        side-effect-free :meth:`ReplicaHealth.peek_available`, so reporting
        health never claims a probe slot.
        """
        states = [health.state() for health in self._health]
        available = sum(1 for health in self._health if health.peek_available())
        if available == len(states):
            state = "ok"
        elif available > 0:
            state = "degraded"
        else:
            state = "down"
        return {
            "state": state,
            "replicas": len(states),
            "available": available,
            "states": states,
        }

    def merged_latency(self) -> LatencyHistogram:
        """All per-replica histograms merged into one (shared bounds)."""
        merged = LatencyHistogram(self._latency[0].bounds)
        for histogram in self._latency:
            merged.merge(histogram)
        return merged

    def stats(self, name: str = "replica-set") -> ServingStats:
        """The stats-endpoint snapshot: merged totals + per-replica blocks.

        ``latency`` is the bucket-wise merge of every replica's histogram;
        ``replicas`` carries one block per replica with its routed count,
        current in-flight gauge and engine counters, so an operator can see
        both the set as one engine and whether routing is balanced.
        """
        with self._route_lock:
            routed = list(self._routed)
            in_flight = list(self._in_flight)
        blocks: List[Dict[str, object]] = []
        cache_hits = 0
        cache_misses = 0
        cache_entries = 0
        for replica_id, engine in enumerate(self._engines):
            if isinstance(engine, BCCEngine):
                payload = engine_payload(engine)
                cache_info = payload["cache"]
                block: Dict[str, object] = {
                    "replica": replica_id,
                    "routed": routed[replica_id],
                    "in_flight": in_flight[replica_id],
                    "prepared": payload["prepared"],
                    "index_built": payload["index_built"],
                    "counters": payload["counters"],
                    "cache": cache_info,
                    "health": self._health[replica_id].snapshot(),
                }
                cache_hits += int(cache_info.get("hits", 0))
                cache_misses += int(cache_info.get("misses", 0))
                cache_entries += int(cache_info.get("entries", 0))
            elif isinstance(engine, ShardedBCCEngine):
                # sharded replica: reuse its own aggregated snapshot
                shard_stats = engine.stats(name=f"{name}/replica{replica_id}")
                block = {
                    "replica": replica_id,
                    "routed": routed[replica_id],
                    "in_flight": in_flight[replica_id],
                    "shards": len(shard_stats.shards),
                    "counters": dict(shard_stats.counters),
                    "cache": dict(shard_stats.cache),
                    "health": self._health[replica_id].snapshot(),
                }
                cache_hits += int(shard_stats.cache.get("hits", 0))
                cache_misses += int(shard_stats.cache.get("misses", 0))
                cache_entries += int(shard_stats.cache.get("entries", 0))
            else:
                # process-backed member: engine counters ride in on the
                # workers' piggybacked snapshots (never a blocking
                # round-trip); cache entry counts live worker-side only.
                cache_info = engine.result_cache_info()
                block = {
                    "replica": replica_id,
                    "routed": routed[replica_id],
                    "in_flight": in_flight[replica_id],
                    "prepared": engine.is_prepared(),
                    "index_built": engine.has_index(),
                    "counters": engine.counters_snapshot(),
                    "cache": cache_info,
                    "workers": engine.worker_stats(),
                    "health": self._health[replica_id].snapshot(),
                }
                cache_hits += int(cache_info.get("hits", 0) or 0)
                cache_misses += int(cache_info.get("misses", 0) or 0)
                cache_entries += int(cache_info.get("entries", 0) or 0)
            blocks.append(block)
        lookups = cache_hits + cache_misses
        return ServingStats(
            name=name,
            kind="replicated",
            graph={
                "vertices": self.graph.num_vertices(),
                "edges": self.graph.num_edges(),
                "version": self.graph.version(),
            },
            counters=self.counters_snapshot(),
            cache={
                "hits": cache_hits,
                "misses": cache_misses,
                "entries": cache_entries,
                "hit_rate": (cache_hits / lookups) if lookups else None,
            },
            latency=self.merged_latency().snapshot(),
            replicas=tuple(blocks),
            health=self.health_summary(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._route_lock:
            searches = self._searches
        return (
            f"ReplicaSet(|V|={self.graph.num_vertices()}, "
            f"replicas={len(self._engines)}, "
            f"sharded={self._sharded}, searches={searches})"
        )
