"""A urllib-based Python client for the HTTP gateway.

:class:`GatewayClient` mirrors the engine surface remote callers already
know from :class:`repro.api.BCCEngine` — ``search`` / ``search_many`` /
``explain`` / ``stats`` — over the wire codec in
:mod:`repro.server.protocol`, so examples, the eval harness and the
benchmarks can drive a gateway end-to-end with the same call shapes they
use in-process.  Decoded ``search`` answers are real
:class:`~repro.api.SearchResponse` objects: status/reason codes verbatim,
member sets restored, ``math.inf`` query distances exact.

Error surface:

* per-query failures inside ``search_many(on_error="return")`` come back
  as position-aligned ``status="error"`` rows, exactly as in-process;
* a caller error on ``search``/``explain`` (or an aborted
  ``on_error="raise"`` batch) raises :class:`repro.exceptions.QueryError`
  with the server's message;
* an unknown graph raises :class:`repro.exceptions.GraphNotFoundError`;
* a 429 backpressure rejection raises :class:`GatewayOverloadedError`
  carrying the server's ``Retry-After`` hint, so callers can implement
  honest backoff;
* a 503 (every replica of the graph ejected, no degraded answer) raises
  :class:`GatewayUnavailableError`, also carrying ``Retry-After``;
* transport failures (connection refused, timeouts, non-JSON bodies)
  raise :class:`GatewayError`.

With a :class:`repro.server.resilience.RetryPolicy` the client absorbs
transient trouble itself: 429/503 answers and transport failures are
retried up to ``max_attempts`` with exponential backoff and full jitter,
sleeping at least the server's ``Retry-After`` hint when one was given.
Only **idempotent** requests are retried after a transport failure (the
request may or may not have executed) — every verb this client speaks is a
read or a pure search, so all are marked idempotent.  By default
(``retry_policy=None``) nothing is retried and the error surface above is
exact.
"""

from __future__ import annotations

import http.client
import random
import socket
import threading
import time
import urllib.parse
import uuid
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.api.config import SearchConfig
from repro.api.query import BatchQuery, Query, SearchResponse
from repro.exceptions import (
    REASON_DEADLINE_EXCEEDED,
    DeadlineExceededError,
    GraphNotFoundError,
    QueryError,
    ReproError,
)
from repro.server.protocol import (
    ProtocolError,
    decode_response,
    encode_batch,
    encode_config,
    encode_query,
    json_dumps,
    json_loads,
)
from repro.server.resilience import RetryPolicy

__all__ = [
    "GatewayClient",
    "GatewayError",
    "GatewayOverloadedError",
    "GatewayUnavailableError",
]


class GatewayError(ReproError):
    """A transport- or server-level gateway failure (not a caller error)."""


class GatewayOverloadedError(GatewayError):
    """The gateway answered 429: too many in-flight requests.

    ``retry_after_seconds`` carries the server's ``Retry-After`` hint.
    """

    def __init__(self, message: str, retry_after_seconds: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class GatewayUnavailableError(GatewayError):
    """The gateway answered 503: no healthy replica can serve the graph.

    ``retry_after_seconds`` carries the server's ``Retry-After`` hint —
    roughly when an ejected replica's probe window opens.
    """

    def __init__(self, message: str, retry_after_seconds: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class GatewayClient:
    """Drive one gateway process through its HTTP surface.

    Parameters
    ----------
    base_url:
        The gateway's base URL (``Gateway.url``), e.g.
        ``"http://127.0.0.1:8437"``.
    timeout_seconds:
        Per-request socket timeout; a hung server fails the call instead of
        hanging the client forever.
    retry_policy:
        Optional :class:`repro.server.resilience.RetryPolicy`.  When set,
        429/503 answers and transport failures on idempotent requests are
        retried with jittered exponential backoff; ``None`` (the default)
        retries nothing.
    retry_rng:
        RNG feeding the jitter (defaults to a fresh seeded
        ``random.Random(0)`` — deterministic schedules in tests; share one
        RNG across clients for decorrelated production jitter).
    sleep:
        The sleep used between retries — injectable so tests assert the
        backoff schedule against a fake clock instead of waiting it out.
    """

    def __init__(
        self,
        base_url: str,
        timeout_seconds: float = 30.0,
        retry_policy: Optional[RetryPolicy] = None,
        retry_rng: Optional[random.Random] = None,
        # Declared BCC002 seam: retry backoff must really wait in
        # production (it paces a live server), while tests inject a fake
        # to assert the schedule without wall-clock delays.
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_seconds = timeout_seconds
        self.retry_policy = retry_policy
        self._retry_rng = retry_rng if retry_rng is not None else random.Random(0)
        self._sleep = sleep
        self._retry_lock = threading.Lock()
        self._retries = 0
        split = urllib.parse.urlsplit(self.base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(
                f"expected an http://host:port base URL, got {base_url!r}"
            )
        self._host = split.hostname
        self._port = split.port if split.port is not None else 80
        # One persistent keep-alive connection per calling thread: the
        # gateway speaks HTTP/1.1, so reusing the connection skips TCP
        # setup + server accept per request — the dominant cost of
        # fine-grained loopback serving (and what lets concurrent client
        # threads actually overlap inside the server).
        self._local = threading.local()

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout_seconds
            )
            connection.connect()
            # Request headers and body are separate writes; with Nagle on,
            # the body write stalls on the headers' delayed ACK (~40ms per
            # request on a keep-alive connection).
            connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._local.connection = connection
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def close(self) -> None:
        """Close this thread's persistent connection (safe to keep using
        the client afterwards — the next call reconnects)."""
        self._drop_connection()

    def _exchange(
        self, method: str, path: str, body: Optional[bytes], request_id: str
    ) -> Tuple[int, Dict[str, str], bytes]:
        connection = self._connection()
        connection.request(
            method,
            path,
            body=body,
            headers={
                "Content-Type": "application/json; charset=utf-8",
                "X-Request-Id": request_id,
            },
        )
        response = connection.getresponse()
        payload = response.read()  # drain fully so keep-alive stays in sync
        headers = {name: value for name, value in response.getheaders()}
        if response.will_close:
            self._drop_connection()
        return response.status, headers, payload

    def _request_once(
        self, method: str, path: str, body: Optional[bytes], request_id: str
    ) -> object:
        return json_loads(self._raw_once(method, path, body, request_id))

    def _raw_once(
        self, method: str, path: str, body: Optional[bytes], request_id: str
    ) -> bytes:
        try:
            try:
                status, headers, raw = self._exchange(
                    method, path, body, request_id
                )
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                # A stale keep-alive connection (server restarted, idle
                # close): reconnect once, then report honestly.
                self._drop_connection()
                status, headers, raw = self._exchange(
                    method, path, body, request_id
                )
        except (http.client.HTTPException, OSError) as exc:
            self._drop_connection()
            raise GatewayError(
                f"gateway unreachable at {self.base_url}: {exc!r}"
            ) from exc
        if status >= 400:
            raise self._http_error(status, headers, raw)
        return raw

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
        idempotent: bool = True,
    ) -> object:
        body = json_dumps(payload).encode("utf-8") if payload is not None else None
        policy = self.retry_policy
        # One id per *logical* request, minted before the retry loop: every
        # retry attempt (and the gateway-side trace, access-log line and
        # error payload it produces) carries the same X-Request-Id, so an
        # operator can see "this 503 and that success were one request".
        request_id = uuid.uuid4().hex
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body, request_id)
            except (GatewayOverloadedError, GatewayUnavailableError) as exc:
                # Explicitly retryable: the server said "come back later".
                if policy is None or attempt + 1 >= policy.max_attempts:
                    raise
                delay = max(
                    policy.delay_seconds(attempt, self._retry_rng),
                    exc.retry_after_seconds,
                )
            except GatewayError:
                # Transport failure: the request may or may not have run
                # server-side, so only idempotent requests retry.  (Every
                # verb this client currently speaks is idempotent; the flag
                # exists for future mutating endpoints.)
                if policy is None or not idempotent:
                    raise
                if attempt + 1 >= policy.max_attempts:
                    raise
                delay = policy.delay_seconds(attempt, self._retry_rng)
            with self._retry_lock:
                self._retries += 1
            self._sleep(delay)
            attempt += 1

    def retries(self) -> int:
        """Total retry attempts this client has performed (all threads)."""
        with self._retry_lock:
            return self._retries

    def _http_error(
        self, status: int, headers: Dict[str, str], raw: bytes
    ) -> ReproError:
        """Translate an HTTP error status into the library's exceptions."""
        try:
            body = json_loads(raw)
        except ProtocolError:
            body = None
        if status == 429:
            try:
                seconds = float(headers.get("Retry-After", "1"))
            except ValueError:
                seconds = 1.0
            return GatewayOverloadedError(
                f"gateway overloaded (429), retry after {seconds:g}s",
                retry_after_seconds=seconds,
            )
        if status == 503:
            try:
                seconds = float(headers.get("Retry-After", "1"))
            except ValueError:
                seconds = 1.0
            message = ""
            if isinstance(body, dict):
                message = str(body.get("error", ""))
            return GatewayUnavailableError(
                message
                or f"gateway unavailable (503), retry after {seconds:g}s",
                retry_after_seconds=seconds,
            )
        if isinstance(body, dict):
            message = str(body.get("error", f"HTTP {status}"))
            code = body.get("code")
            if code == "graph-not-found":
                return GraphNotFoundError(body.get("graph", message))
            # A 504 carrying a deadline-exceeded row re-raises as the same
            # exception the in-process deadline seam throws.
            if body.get("reason") == REASON_DEADLINE_EXCEEDED:
                return DeadlineExceededError(message)
            # A 400/404 carrying an encoded error *row* (single-query
            # search): surface the engine's own message as a QueryError,
            # matching what BCCEngine.search would have raised.
            if body.get("status") == "error":
                return QueryError(str(body.get("error") or body.get("reason")))
            if status in (400, 404):
                return QueryError(message)
            return GatewayError(f"gateway error {status}: {message}")
        return GatewayError(f"gateway error {status}")

    # ------------------------------------------------------------------
    # observability endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        """The gateway's liveness payload (uptime, versions, admission)."""
        return self._request("GET", "/healthz")  # type: ignore[return-value]

    def graphs(self) -> List[str]:
        """Names currently served by the gateway's directory."""
        payload = self._request("GET", "/graphs")
        return list(payload["graphs"])  # type: ignore[index,call-overload]

    def stats(self) -> Dict[str, object]:
        """The whole-directory stats document (``GET /stats``)."""
        return self._request("GET", "/stats")  # type: ignore[return-value]

    def metrics_text(self) -> str:
        """The Prometheus text exposition (``GET /metrics``), verbatim.

        Returned as the raw UTF-8 body — a scraper's view, not JSON — and
        never retried: a scrape is cheap and periodic, so a missed one is
        cheaper than a delayed one.
        """
        raw = self._raw_once("GET", "/metrics", None, uuid.uuid4().hex)
        return raw.decode("utf-8")

    def debug_slow(self) -> Dict[str, object]:
        """The slow-query log document (``GET /debug/slow``)."""
        return self._request("GET", "/debug/slow")  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # serving surface (mirrors BCCEngine)
    # ------------------------------------------------------------------
    def search(
        self,
        graph: str,
        query: Query,
        *,
        config: Optional[SearchConfig] = None,
        use_cache: bool = True,
    ) -> SearchResponse:
        """Serve one query remotely; raises for caller errors like
        :meth:`BCCEngine.search` (a missing query vertex or malformed query
        becomes :class:`QueryError`, an unknown graph
        :class:`GraphNotFoundError`)."""
        payload = self._request(
            "POST",
            f"/graphs/{graph}/search",
            {
                "query": encode_query(query),
                "config": encode_config(config),
                "use_cache": use_cache,
            },
        )
        return decode_response(payload)

    def search_many(
        self,
        graph: str,
        queries: Union[BatchQuery, Iterable[Query]],
        *,
        config: Optional[SearchConfig] = None,
        on_error: str = "raise",
        max_workers: int = 1,
        use_cache: bool = True,
    ) -> List[SearchResponse]:
        """Serve a batch remotely with ``search_many``'s exact semantics:
        position-aligned responses, per-query error rows under
        ``on_error="return"``, an aborting :class:`QueryError` under
        ``"raise"``, and the in-process config precedence (the ``config``
        argument of this call beats per-query configs, which beat the
        batch's shared config — it rides the wire as its own field so the
        server can keep the tiers distinct)."""
        body = encode_batch(queries)
        body.update(
            {
                "config_override": encode_config(config),
                "on_error": on_error,
                "max_workers": max_workers,
                "use_cache": use_cache,
            }
        )
        payload = self._request("POST", f"/graphs/{graph}/search_many", body)
        if not isinstance(payload, dict) or "responses" not in payload:
            raise GatewayError("malformed search_many envelope from gateway")
        return [decode_response(row) for row in payload["responses"]]

    def explain(
        self,
        graph: str,
        query: Query,
        *,
        config: Optional[SearchConfig] = None,
    ) -> Dict[str, object]:
        """The engine's dispatch report for ``query`` (never runs a search)."""
        payload = self._request(
            "POST",
            f"/graphs/{graph}/explain",
            {"query": encode_query(query), "config": encode_config(config)},
        )
        return payload["explain"]  # type: ignore[index,call-overload]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GatewayClient(base_url={self.base_url!r})"
