"""Replica health tracking, circuit breaking and retry backoff.

Three small, clock-injectable primitives the fault-tolerant serving path is
assembled from:

* :class:`HealthPolicy` / :class:`ReplicaHealth` — a per-replica health
  tracker with half-open circuit-breaker semantics.  Consecutive non-caller
  failures (or a latency EWMA above a configured ceiling) **eject** the
  replica; after ``ejection_seconds`` the breaker admits exactly one
  **probe** query, whose outcome either **re-admits** the replica or
  re-ejects it for another window.  All transitions run on an injected
  monotonic clock, so chaos tests drive ejection and re-admission with a
  fake clock instead of sleeping.
* :class:`RetryPolicy` — bounded retries with exponential backoff and *full
  jitter* (delay drawn uniformly from ``[0, min(cap, base·mult^attempt)]``),
  the schedule deterministic for a seeded RNG.  Used by
  :class:`repro.server.GatewayClient`.
* :func:`run_with_deadline` — run a callable on a daemon worker and give up
  after a wall-clock budget, raising
  :class:`~repro.exceptions.DeadlineExceededError`.  This is how a serving
  seam bounds a pure-Python kernel it cannot preempt: the caller gets its
  answer (an error row / 504) on time, and the abandoned worker finishes
  into the void.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

# Defined next to serve_batch (its primary consumer, which must not depend
# on the server package); re-exported here as part of the resilience surface.
from repro.api.engine import run_with_deadline

__all__ = [
    "HEALTH_DOWN",
    "HEALTH_OK",
    "HEALTH_PROBING",
    "HealthPolicy",
    "ReplicaHealth",
    "RetryPolicy",
    "run_with_deadline",
]

#: Replica health states (also the wire spellings in stats payloads).
HEALTH_OK = "ok"
HEALTH_DOWN = "ejected"
HEALTH_PROBING = "probing"


@dataclass(frozen=True)
class HealthPolicy:
    """When to eject a replica and when to probe it again.

    Parameters
    ----------
    failure_threshold:
        Consecutive non-caller failures that open the circuit.
    ejection_seconds:
        How long an ejected replica sits out before one probe is admitted.
    latency_alpha:
        Smoothing factor of the per-replica latency EWMA
        (``ewma = alpha·sample + (1-alpha)·ewma``).
    latency_threshold_seconds:
        Optional latency ceiling: once at least ``latency_min_samples``
        served queries have been observed, an EWMA above this ejects the
        replica even though every call "succeeded" — a replica that answers
        in 30s is down in every way that matters.  ``None`` disables the
        latency trigger.
    latency_min_samples:
        Minimum observations before the latency trigger may fire (protects
        against ejecting on one cold-start outlier).
    """

    failure_threshold: int = 3
    ejection_seconds: float = 30.0
    latency_alpha: float = 0.2
    latency_threshold_seconds: Optional[float] = None
    latency_min_samples: int = 10

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.ejection_seconds < 0:
            raise ValueError("ejection_seconds must be non-negative")
        if not 0.0 < self.latency_alpha <= 1.0:
            raise ValueError("latency_alpha must be within (0, 1]")
        if (
            self.latency_threshold_seconds is not None
            and self.latency_threshold_seconds <= 0
        ):
            raise ValueError("latency_threshold_seconds must be positive or None")
        if self.latency_min_samples < 1:
            raise ValueError("latency_min_samples must be >= 1")


class ReplicaHealth:
    """Health state of one replica: a half-open circuit breaker plus EWMA.

    Thread-safe; every transition happens under the instance lock.  The
    router asks :meth:`try_admit` before dispatching (which atomically
    claims the single probe slot of a half-open breaker), then reports the
    outcome with :meth:`record_success` / :meth:`record_failure` /
    :meth:`record_neutral` (caller errors: the replica is fine, the query
    was not — no health verdict either way).
    """

    def __init__(
        self,
        policy: Optional[HealthPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else HealthPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = HEALTH_OK
        self._consecutive_failures = 0
        self._ejected_until = 0.0
        self._probe_in_flight = False
        self._ewma: Optional[float] = None
        self._samples = 0
        self._failures = 0
        self._ejections = 0
        self._readmissions = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def try_admit(self) -> bool:
        """Whether the router may dispatch one query here *right now*.

        Ejected replicas refuse until the ejection window elapses; then the
        breaker goes half-open and admits exactly one probe at a time (the
        claim is atomic — concurrent routers cannot both probe).
        """
        with self._lock:
            if self._state == HEALTH_OK:
                return True
            if self._state == HEALTH_DOWN:
                if self._clock() < self._ejected_until:
                    return False
                self._state = HEALTH_PROBING
                self._probe_in_flight = True
                return True
            # probing: one probe at a time
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def peek_available(self) -> bool:
        """Like :meth:`try_admit` but side-effect free (for health reports)."""
        with self._lock:
            if self._state == HEALTH_OK:
                return True
            if self._state == HEALTH_DOWN:
                return self._clock() >= self._ejected_until
            return not self._probe_in_flight

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    def record_success(self, latency_seconds: float) -> None:
        """A served answer: closes a probing breaker, feeds the EWMA.

        The latency trigger can still eject here — a "successful" replica
        whose smoothed latency sits above the ceiling is serving too slowly
        to keep in rotation.
        """
        with self._lock:
            self._consecutive_failures = 0
            alpha = self.policy.latency_alpha
            self._ewma = (
                latency_seconds
                if self._ewma is None
                else alpha * latency_seconds + (1.0 - alpha) * self._ewma
            )
            self._samples += 1
            if self._state == HEALTH_PROBING:
                self._probe_in_flight = False
                self._state = HEALTH_OK
                self._readmissions += 1
            ceiling = self.policy.latency_threshold_seconds
            if (
                ceiling is not None
                and self._state == HEALTH_OK
                and self._samples >= self.policy.latency_min_samples
                and self._ewma > ceiling
            ):
                self._eject_locked()

    def record_failure(self) -> None:
        """A non-caller failure: trips or re-opens the breaker."""
        with self._lock:
            self._failures += 1
            self._consecutive_failures += 1
            if self._state == HEALTH_PROBING:
                # The probe failed: straight back to ejected for another
                # window (no threshold — a probing replica has no credit).
                self._probe_in_flight = False
                self._eject_locked()
            elif (
                self._state == HEALTH_OK
                and self._consecutive_failures >= self.policy.failure_threshold
            ):
                self._eject_locked()

    def record_neutral(self) -> None:
        """No verdict (caller error): releases a claimed probe slot only."""
        with self._lock:
            if self._state == HEALTH_PROBING:
                self._probe_in_flight = False

    def _eject_locked(self) -> None:
        self._state = HEALTH_DOWN
        self._ejected_until = self._clock() + self.policy.ejection_seconds
        self._ejections += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def state(self) -> str:
        """``"ok"`` / ``"ejected"`` / ``"probing"``."""
        with self._lock:
            return self._state

    def snapshot(self) -> Dict[str, object]:
        """The JSON-serializable health block for stats payloads."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failures": self._failures,
                "ejections": self._ejections,
                "readmissions": self._readmissions,
                "latency_ewma_seconds": self._ewma,
                "observed": self._samples,
            }


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and full jitter.

    ``delay_seconds(attempt, rng)`` draws uniformly from ``[0, cap]`` where
    ``cap = min(max_delay, base·multiplier^attempt)`` — the "full jitter"
    scheme that decorrelates a thundering herd of retrying clients.  The
    schedule is a pure function of the RNG, so a seeded
    ``random.Random`` makes it assertable in tests.
    """

    max_attempts: int = 4
    base_delay_seconds: float = 0.05
    max_delay_seconds: float = 2.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay_seconds(self, attempt: int, rng) -> float:
        """The jittered sleep before retry number ``attempt + 1``."""
        cap = min(
            self.max_delay_seconds,
            self.base_delay_seconds * (self.multiplier ** attempt),
        )
        return rng.uniform(0.0, cap)
