"""Process-level HTTP serving gateway over the serving tier.

This package is the network boundary the ROADMAP asks for: everything built
below it — prepared engines (:mod:`repro.api`), sharded multi-graph serving
(:mod:`repro.serving`), caches and stats — becomes reachable by an actual
remote client, with nothing beyond the Python standard library:

* :mod:`repro.server.protocol` — the typed JSON wire codec for
  :class:`~repro.api.Query` / :class:`~repro.api.BatchQuery` /
  :class:`~repro.api.SearchResponse` with *exact* round-tripping
  (``math.inf`` query distances ride as the string ``"inf"``, never as
  non-standard JSON ``Infinity``).
* :mod:`repro.server.app` — :class:`Gateway`, a ``ThreadingHTTPServer``
  facade over a :class:`~repro.serving.GraphDirectory` (``GET /healthz``,
  ``GET /graphs``, ``GET /stats``, ``POST /graphs/{name}/search |
  /search_many | /explain``) with bounded-admission backpressure: a
  semaphore caps in-flight search requests and overflow answers ``429`` +
  ``Retry-After`` instead of queueing unboundedly.
* :mod:`repro.server.replicas` — :class:`ReplicaSet`, N prepared engines
  behind one engine-shaped front with least-loaded routing and merged
  stats, so one hot graph scales horizontally in-process
  (``GraphDirectory.add(..., replicas=N)``).
* :mod:`repro.server.client` — :class:`GatewayClient`, a urllib-based
  client mirroring the engine surface (``search`` / ``search_many`` /
  ``explain`` / ``stats``), decoding wire responses back into
  :class:`~repro.api.SearchResponse` objects, with optional bounded
  retries (:class:`RetryPolicy`).
* :mod:`repro.server.resilience` — per-replica health tracking with
  half-open circuit breaking (:class:`HealthPolicy` /
  :class:`ReplicaHealth`), retry backoff (:class:`RetryPolicy`) and
  deadline enforcement (:func:`run_with_deadline`).
* :mod:`repro.server.faults` — deterministic, seeded fault injection
  (:class:`FaultPlan` / :class:`FaultRule` / :class:`InjectedFault`) for
  chaos-testing every serving seam without monkeypatching.
"""

from repro.server.app import DEFAULT_MAX_IN_FLIGHT, Gateway
from repro.server.client import (
    GatewayClient,
    GatewayError,
    GatewayOverloadedError,
    GatewayUnavailableError,
)
from repro.server.faults import FaultPlan, FaultRule, InjectedFault
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_batch,
    decode_query,
    decode_response,
    encode_batch,
    encode_query,
    encode_response,
    json_dumps,
    json_loads,
)
from repro.server.replicas import ReplicaSet
from repro.server.resilience import (
    HealthPolicy,
    ReplicaHealth,
    RetryPolicy,
    run_with_deadline,
)

__all__ = [
    "DEFAULT_MAX_IN_FLIGHT",
    "FaultPlan",
    "FaultRule",
    "Gateway",
    "GatewayClient",
    "GatewayError",
    "GatewayOverloadedError",
    "GatewayUnavailableError",
    "HealthPolicy",
    "InjectedFault",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReplicaHealth",
    "ReplicaSet",
    "RetryPolicy",
    "decode_batch",
    "decode_query",
    "decode_response",
    "encode_batch",
    "encode_query",
    "encode_response",
    "json_dumps",
    "json_loads",
    "run_with_deadline",
]
