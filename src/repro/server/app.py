"""The HTTP gateway: a process boundary over :class:`GraphDirectory`.

:class:`Gateway` wraps a :class:`repro.serving.GraphDirectory` in a
``ThreadingHTTPServer`` (one thread per connection, stdlib only) and exposes
the serving tier to remote callers:

========  =================================  =====================================
Verb      Path                               Meaning
========  =================================  =====================================
GET       ``/healthz``                       liveness + uptime + schema versions
GET       ``/graphs``                        names currently served
GET       ``/stats``                         ``GraphDirectory.stats_payload()``
GET       ``/metrics``                       Prometheus text exposition (0.0.4)
GET       ``/debug/slow``                    retained slow-query traces (JSON)
POST      ``/graphs/{name}/search``          one :class:`Query` → one response
POST      ``/graphs/{name}/search_many``     a batch → position-aligned responses
POST      ``/graphs/{name}/explain``         dispatch report, no search
========  =================================  =====================================

Observability rides the :class:`repro.obs.Observability` bundle the
directory carries (or a private one when the directory has none): every
POST runs under ``tracer.trace(request_id)`` — a no-op until tracing is
enabled — so span trees are keyed by the same ``X-Request-Id`` the access
log and error payloads carry, and ``/metrics`` renders the unified
registry (gateway admission counters included) for scrapers while
``/stats`` keeps serving the same numbers as JSON.

Two serving-tier policies live at this boundary:

* **Bounded admission (backpressure).**  A semaphore caps the number of
  in-flight POST requests; a request that cannot claim a slot is answered
  ``429 Too Many Requests`` with a ``Retry-After`` header *immediately*
  instead of queueing unboundedly in the accept backlog until the client
  times out.  ``GET`` endpoints are exempt so operators can read
  ``/stats`` from a saturated process.
* **One status mapping.**  Response rows ship with the HTTP status derived
  from the single reason→status table next to the reason codes
  (:data:`repro.exceptions.HTTP_STATUS_BY_REASON`): missing query vertex →
  404, malformed query / unknown method → 400, empty answers (cross-shard
  included) → 200 — an empty community is a successful search; a query
  that outruns its ``deadline_ms`` → 504; a graph whose every replica is
  ejected → 503 with ``Retry-After`` — unless the gateway has a cached
  last-good answer for the exact query, which it replays marked
  ``degraded: true`` (stale beats down).

Every request emits one structured JSON access-log line on the
``repro.server.access`` logger (method, path, status, duration, in-flight
gauge, request id) — parseable telemetry, not prose.  Callers may supply
an ``X-Request-Id`` header (generated when absent); it is echoed on the
response and stamped into error payloads, so one id follows a request
through client logs, access logs and error bodies.
"""

from __future__ import annotations

import json
import logging
import threading
import time
import uuid
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from repro.api.engine import (
    deadline_seconds_for,
    error_response_for,
    is_caller_error,
    reason_for_error,
    run_with_deadline,
)
from repro.exceptions import (
    AllReplicasEjectedError,
    DeadlineExceededError,
    GraphNotFoundError,
    QueryError,
    VertexNotFoundError,
    http_status_for_response,
)
from repro.obs import Observability
from repro.obs.metrics import Sample, counter_samples
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_batch,
    decode_config,
    decode_query,
    encode_response,
    json_dumps,
    json_loads,
    jsonable,
)
from repro.serving.stats import STATS_SCHEMA_VERSION

__all__ = [
    "DEFAULT_DEGRADED_CACHE_SIZE",
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_MAX_IN_FLIGHT",
    "DEFAULT_RETRY_AFTER_SECONDS",
    "Gateway",
]

#: Default cap on concurrently served POST requests.
DEFAULT_MAX_IN_FLIGHT = 64

#: Default size of the gateway's last-good-answer cache (degraded mode).
DEFAULT_DEGRADED_CACHE_SIZE = 256

#: Longest accepted caller-supplied ``X-Request-Id`` (longer ids are
#: replaced, not truncated — a mangled id is worse than a fresh one).
_MAX_REQUEST_ID_LENGTH = 128

#: Default ``Retry-After`` (seconds) on a 429 rejection.
DEFAULT_RETRY_AFTER_SECONDS = 1

#: Default cap on request body size (a query batch, not a graph upload).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Structured access-log lines (one JSON document per request) land here.
ACCESS_LOGGER = logging.getLogger("repro.server.access")

#: POST verbs served under ``/graphs/{name}/...``.
_POST_VERBS = ("search", "search_many", "explain")


class _ClientError(Exception):
    """Internal: abort request handling with a specific HTTP error."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


class _GatewayHTTPServer(ThreadingHTTPServer):
    """One daemon thread per connection; the gateway object rides along."""

    daemon_threads = True
    allow_reuse_address = True
    gateway: "Gateway"


class _GatewayRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-gateway"
    sys_version = ""
    # HTTP/1.1 keep-alive: one connection (and one server thread) serves a
    # client's whole session instead of paying accept + thread spawn per
    # request — the difference between ~150 and ~1000 q/s on loopback.
    # Every response carries Content-Length, which 1.1 requires.
    protocol_version = "HTTP/1.1"
    # Headers and body leave in separate writes; with Nagle on, the second
    # write waits for the delayed ACK of the first (~40ms per request on a
    # keep-alive connection).
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def gateway(self) -> "Gateway":
        return self.server.gateway  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        """Silence the default stderr chatter; access logs are structured."""

    def _assign_request_id(self) -> str:
        """Adopt the caller's ``X-Request-Id`` or mint one.

        A caller-supplied id must be modest (≤128 chars) and printable
        ASCII — anything else (including header-splitting control bytes)
        is replaced with a fresh id rather than echoed back.
        """
        supplied = self.headers.get("X-Request-Id", "")
        if (
            supplied
            and len(supplied) <= _MAX_REQUEST_ID_LENGTH
            and all(32 <= ord(ch) < 127 for ch in supplied)
        ):
            self._request_id = supplied
        else:
            self._request_id = uuid.uuid4().hex
        return self._request_id

    @property
    def request_id(self) -> str:
        """This request's id (assigned at the top of do_GET / do_POST)."""
        return getattr(self, "_request_id", "") or "-"

    def _access_log(self, method: str, status: int, started: float) -> None:
        record = {
            "method": method,
            "path": self.path,
            "status": status,
            "duration_ms": round((time.perf_counter() - started) * 1000.0, 3),
            "in_flight": self.gateway.in_flight(),
            "request_id": self.request_id,
        }
        ACCESS_LOGGER.info("%s", json.dumps(record, sort_keys=True))

    def _send_json(
        self,
        status: int,
        payload: object,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> int:
        body = json_dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", self.request_id)
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        return status

    def _send_error_json(self, status: int, code: str, message: str) -> int:
        return self._send_json(
            status,
            {"error": message, "code": code, "request_id": self.request_id},
        )

    def _send_text(self, status: int, body: str, content_type: str) -> int:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.send_header("X-Request-Id", self.request_id)
        self.end_headers()
        self.wfile.write(data)
        return status

    def _read_body(self) -> bytes:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "0")
        except ValueError:
            self.close_connection = True
            raise _ClientError(400, "bad-request", "malformed Content-Length")
        if length < 0:
            self.close_connection = True
            raise _ClientError(400, "bad-request", "malformed Content-Length")
        if length > self.gateway.max_body_bytes:
            # The body stays unread, so the keep-alive stream is desynced;
            # drop the connection after answering.
            self.close_connection = True
            raise _ClientError(
                413,
                "payload-too-large",
                f"request body of {length} bytes exceeds the "
                f"{self.gateway.max_body_bytes}-byte limit",
            )
        return self.rfile.read(length)

    # ------------------------------------------------------------------
    # GET endpoints (observability; never subject to backpressure)
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        started = time.perf_counter()
        gateway = self.gateway
        self._assign_request_id()
        try:
            if self.path == "/healthz":
                payload = gateway.health_payload()
                # A gateway whose every replica of some graph is ejected is
                # not healthy: load balancers reading /healthz should stop
                # sending it traffic until a probe re-admits a replica.
                status = self._send_json(
                    503 if payload["status"] == "down" else 200, payload
                )
            elif self.path == "/graphs":
                status = self._send_json(
                    200, {"graphs": gateway.directory.names()}
                )
            elif self.path == "/stats":
                status = self._send_json(200, gateway.directory.stats_payload())
            elif self.path == "/metrics":
                status = self._send_text(
                    200,
                    gateway.observability.registry.render_prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif self.path == "/debug/slow":
                status = self._send_json(
                    200, gateway.observability.slow_log.payload()
                )
            else:
                status = self._send_error_json(
                    404, "not-found", f"no such endpoint: {self.path}"
                )
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            return
        except Exception as exc:  # pragma: no cover - defensive boundary
            status = self._send_error_json(500, "internal", repr(exc))
        self._access_log("GET", status, started)

    # ------------------------------------------------------------------
    # POST endpoints (query serving; bounded admission)
    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        started = time.perf_counter()
        gateway = self.gateway
        self._assign_request_id()
        try:
            name, verb = self._route_post()
        except _ClientError as exc:
            # The body was never read: the keep-alive stream is desynced,
            # so answer and drop the connection.
            self.close_connection = True
            status = self._send_error_json(exc.status, exc.code, str(exc))
            self._access_log("POST", status, started)
            return
        if not gateway.try_acquire():
            gateway.count("rejections")
            # Rejected before reading the body — same desync rule: the
            # 429 answer rides out on a closing connection, which also
            # stops a retrying client from hammering a warm socket.
            self.close_connection = True
            status = self._send_json(
                429,
                {
                    "error": (
                        f"gateway at capacity "
                        f"({gateway.max_in_flight} in-flight requests)"
                    ),
                    "code": "overloaded",
                    "max_in_flight": gateway.max_in_flight,
                    "retry_after_seconds": gateway.retry_after_seconds,
                },
                headers=(("Retry-After", str(gateway.retry_after_seconds)),),
            )
            self._access_log("POST", status, started)
            return
        try:
            gateway.count("requests")
            # A no-op until tracing is enabled; once on, the whole POST
            # (routing, failover, kernels, even process-pool workers) hangs
            # its spans off this request-id-keyed trace.
            with gateway.observability.tracer.trace(
                self.request_id, path=self.path
            ):
                status = self._serve_post(name, verb)
        except _ClientError as exc:
            status = self._send_error_json(exc.status, exc.code, str(exc))
        except AllReplicasEjectedError as exc:
            # Every replica of the graph is ejected and no degraded answer
            # was available: tell the client when to come back instead of
            # hanging or answering 500.
            gateway.count("unavailable")
            status = self._send_json(
                503,
                {
                    "error": str(exc),
                    "code": "unavailable",
                    "request_id": self.request_id,
                    "retry_after_seconds": gateway.retry_after_seconds,
                },
                headers=(("Retry-After", str(gateway.retry_after_seconds)),),
            )
        except GraphNotFoundError as exc:
            status = self._send_json(
                404,
                {"error": str(exc), "code": "graph-not-found",
                 "graph": str(exc.name)},
            )
        except ProtocolError as exc:
            status = self._send_error_json(400, "bad-request", str(exc))
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            status = 499  # client went away; nothing to send
        except Exception as exc:  # pragma: no cover - defensive boundary
            gateway.count("errors")
            status = self._send_error_json(500, "internal", repr(exc))
        finally:
            gateway.release()
        self._access_log("POST", status, started)

    def _route_post(self) -> Tuple[str, str]:
        parts = self.path.strip("/").split("/")
        if len(parts) != 3 or parts[0] != "graphs":
            raise _ClientError(404, "not-found", f"no such endpoint: {self.path}")
        name, verb = parts[1], parts[2]
        if verb not in _POST_VERBS:
            raise _ClientError(
                404,
                "not-found",
                f"unknown action {verb!r}; known: {list(_POST_VERBS)}",
            )
        return name, verb

    def _serve_post(self, name: str, verb: str) -> int:
        fault_plan = self.gateway.fault_plan
        if fault_plan is not None:
            fault_plan.on("gateway.request", endpoint=verb, graph=name)
        payload = json_loads(self._read_body())
        if not isinstance(payload, dict):
            raise _ClientError(400, "bad-request", "request body must be a JSON object")
        if verb == "search":
            return self._serve_search(name, payload)
        if verb == "search_many":
            return self._serve_search_many(name, payload)
        return self._serve_explain(name, payload)

    def _encode_response(self, response) -> Dict[str, object]:
        """Encode an outgoing response; an un-encodable one is OUR fault.

        The generic ``ProtocolError -> 400`` handler exists for malformed
        *request* payloads; a search that succeeded but cannot be put on
        the wire (e.g. a graph hosting non-scalar vertices) must answer
        500, not blame the caller.
        """
        try:
            return encode_response(response)
        except ProtocolError as exc:
            self.gateway.count("errors")
            raise _ClientError(
                500, "internal", f"response is not wire-encodable: {exc}"
            )

    def _serve_search(self, name: str, payload: Dict[str, object]) -> int:
        query = decode_query(payload.get("query"))
        config = decode_config(payload.get("config"))
        use_cache = bool(payload.get("use_cache", True))
        gateway = self.gateway
        engine = gateway.directory.get(name)
        deadline = deadline_seconds_for(
            config, query.config, getattr(engine, "config", None)
        )
        degraded_key = gateway.degraded_cache_key(name, payload)
        try:
            response = run_with_deadline(
                lambda: gateway.directory.serve(
                    name, query, config=config, use_cache=use_cache
                ),
                deadline,
                what=f"search:{name}",
            )
        except (QueryError, VertexNotFoundError) as exc:
            if not is_caller_error(query, exc):
                raise  # an implementation bug is a 500, not a caller error
            response = error_response_for(query, exc)
        except DeadlineExceededError as exc:
            gateway.count("deadline_exceeded")
            response = error_response_for(query, exc)
        except AllReplicasEjectedError:
            # Degraded mode: replay the last good answer for this exact
            # request (marked so) rather than failing — stale beats down.
            stale = gateway.degraded_cache_get(degraded_key)
            if stale is None:
                raise  # → 503 + Retry-After in do_POST
            gateway.count("degraded")
            replay = dict(stale)
            replay["degraded"] = True
            return self._send_json(
                http_status_for_response(
                    str(replay.get("status", "ok")), replay.get("reason")
                ),
                replay,
            )
        encoded = self._encode_response(response)
        if response.status != "error":
            # Only genuinely served answers become degraded-mode material;
            # caching error rows would replay failures.
            gateway.degraded_cache_put(degraded_key, encoded)
        return self._send_json(
            http_status_for_response(response.status, response.reason),
            encoded,
        )

    def _serve_search_many(self, name: str, payload: Dict[str, object]) -> int:
        batch = decode_batch(payload)
        # The call-level override rides separately from the batch's shared
        # config ("config" inside the batch payload): in-process precedence
        # is call > query > batch, and folding the call tier into the batch
        # tier would let per-query configs beat it.
        config = decode_config(payload.get("config_override"))
        on_error = payload.get("on_error", "raise")
        if on_error not in ("raise", "return"):
            raise _ClientError(
                400, "bad-request", f"unknown on_error policy {on_error!r}"
            )
        max_workers = payload.get("max_workers", 1)
        if not isinstance(max_workers, int) or max_workers < 1:
            raise _ClientError(400, "bad-request", "max_workers must be an int >= 1")
        use_cache = bool(payload.get("use_cache", True))
        try:
            responses = self.gateway.directory.serve_many(
                name,
                batch,
                config=config,
                on_error=on_error,
                max_workers=max_workers,
                use_cache=use_cache,
            )
        except (QueryError, VertexNotFoundError) as exc:
            # on_error="raise" semantics over the wire: the batch aborts
            # with the caller error's own status (row-level failures only
            # exist under on_error="return").
            raise _ClientError(
                http_status_for_response("error", reason_for_error(exc)),
                "query-error",
                str(exc),
            )
        return self._send_json(
            200,
            {
                "count": len(responses),
                "responses": [self._encode_response(r) for r in responses],
            },
        )

    def _serve_explain(self, name: str, payload: Dict[str, object]) -> int:
        query = decode_query(payload.get("query"))
        config = decode_config(payload.get("config"))
        engine = self.gateway.directory.get(name)
        try:
            report = engine.explain(query, config=config)
        except (QueryError, VertexNotFoundError) as exc:
            raise _ClientError(
                http_status_for_response("error", reason_for_error(exc)),
                "query-error",
                str(exc),
            )
        return self._send_json(200, {"explain": jsonable(report)})


class Gateway:
    """A runnable HTTP gateway over one :class:`GraphDirectory`.

    Parameters
    ----------
    directory:
        The serving directory to expose.  The gateway adds no serving state
        of its own beyond admission control — engines, caches and stats all
        live in the directory.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back from
        :attr:`port` — the pattern tests, benchmarks and examples use).
    max_in_flight:
        Bounded admission: at most this many POST requests are served
        concurrently; overflow is answered ``429`` + ``Retry-After``.
    retry_after_seconds:
        The hint sent with 429 (overload) and 503 (unavailable) responses.
    max_body_bytes:
        Request bodies above this size are refused with ``413``.
    fault_plan:
        Optional :class:`repro.server.faults.FaultPlan` consulted at the
        ``"gateway.request"`` site before each POST is served.
    degraded_cache_size:
        Entries in the last-good-answer cache backing degraded mode
        (``0`` disables degraded answers entirely — all-replicas-down then
        always answers 503).
    observability:
        The :class:`repro.obs.Observability` bundle serving ``/metrics``,
        ``/debug/slow`` and request tracing.  Defaults to the directory's
        own bundle (``directory.observability``) so gateway counters land
        in the same registry as engine counters; a directory without one
        gets a private bundle (tracing off, defaults throughout).
    clock:
        Monotonic-seconds source for uptime reporting; injectable so
        deterministic tests can drive it (the BCC002 seam pattern).

    Use as a context manager (or call :meth:`start` / :meth:`stop`)::

        with Gateway(directory, port=0) as gateway:
            client = GatewayClient(gateway.url)
            client.search("orkut", Query("lp-bcc", pair))
    """

    def __init__(
        self,
        directory,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        retry_after_seconds: int = DEFAULT_RETRY_AFTER_SECONDS,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        fault_plan: Optional[object] = None,
        degraded_cache_size: int = DEFAULT_DEGRADED_CACHE_SIZE,
        observability: Optional[Observability] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if retry_after_seconds < 0:
            raise ValueError("retry_after_seconds must be non-negative")
        if degraded_cache_size < 0:
            raise ValueError("degraded_cache_size must be non-negative")
        self.directory = directory
        self.max_in_flight = max_in_flight
        self.retry_after_seconds = retry_after_seconds
        self.max_body_bytes = max_body_bytes
        self.fault_plan = fault_plan
        self.degraded_cache_size = degraded_cache_size
        self._degraded_lock = threading.Lock()
        self._degraded_cache: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._slots = threading.Semaphore(max_in_flight)
        self._gauge_lock = threading.Lock()
        self._in_flight = 0
        self._counters: Dict[str, int] = {
            "requests": 0,
            "rejections": 0,
            "errors": 0,
            "deadline_exceeded": 0,
            "degraded": 0,
            "unavailable": 0,
        }
        if observability is None:
            observability = getattr(directory, "observability", None)
        if observability is None:
            observability = Observability()
        self.observability = observability
        self.observability.registry.register_source(
            "gateway", self._metric_samples
        )
        self._clock = clock
        self._started_monotonic = clock()
        self._httpd = _GatewayHTTPServer((host, port), _GatewayRequestHandler)
        self._httpd.gateway = self
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def try_acquire(self) -> bool:
        """Claim an in-flight slot without blocking (False → answer 429)."""
        if not self._slots.acquire(blocking=False):
            return False
        with self._gauge_lock:
            self._in_flight += 1
        return True

    def release(self) -> None:
        """Return an in-flight slot."""
        with self._gauge_lock:
            self._in_flight -= 1
        self._slots.release()

    def in_flight(self) -> int:
        """The current in-flight POST gauge (for logs and tests)."""
        with self._gauge_lock:
            return self._in_flight

    def count(self, name: str) -> None:
        with self._gauge_lock:
            self._counters[name] = self._counters.get(name, 0) + 1

    def counters_snapshot(self) -> Dict[str, int]:
        """Gateway-level counters: requests served, 429 rejections, errors."""
        with self._gauge_lock:
            return dict(self._counters)

    def _metric_samples(self):
        """The gateway's rows in the unified metrics registry."""
        samples = counter_samples(
            "gateway",
            self.counters_snapshot(),
            help="gateway admission/serving counter",
        )
        samples.append(
            Sample(
                name="bcc_gateway_in_flight",
                value=float(self.in_flight()),
                kind="gauge",
                help="POST requests currently being served",
            )
        )
        return samples

    # ------------------------------------------------------------------
    # degraded mode (last-good-answer cache)
    # ------------------------------------------------------------------
    def degraded_cache_key(self, name: str, payload: Dict[str, object]) -> str:
        """One stable key per (graph, exact request payload).

        Keyed on the *wire* payload — two requests that would hit the same
        engine-cache entry but spell their config differently get separate
        degraded entries, which errs toward correctness (a degraded answer
        must match exactly what this caller asked before).
        """
        return json_dumps({"graph": name, "payload": payload})

    def degraded_cache_put(self, key: str, encoded: Dict[str, object]) -> None:
        """Remember a served answer as degraded-mode material (LRU)."""
        if self.degraded_cache_size == 0:
            return
        with self._degraded_lock:
            self._degraded_cache[key] = dict(encoded)
            self._degraded_cache.move_to_end(key)
            while len(self._degraded_cache) > self.degraded_cache_size:
                self._degraded_cache.popitem(last=False)

    def degraded_cache_get(self, key: str) -> Optional[Dict[str, object]]:
        """The last good answer for this exact request, if any (LRU touch)."""
        with self._degraded_lock:
            encoded = self._degraded_cache.get(key)
            if encoded is None:
                return None
            self._degraded_cache.move_to_end(key)
            return dict(encoded)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the real one, also when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """The base URL clients talk to."""
        return f"http://{self.host}:{self.port}"

    def uptime_seconds(self) -> float:
        return self._clock() - self._started_monotonic

    def health_payload(self) -> Dict[str, object]:
        """The ``/healthz`` body: readiness, uptime, versions, admission.

        ``status`` is the worst per-graph readiness state: ``"ok"`` when
        every served graph would serve a query right now, ``"degraded"``
        when some graph has ejected replicas but could still answer,
        ``"down"`` when some graph cannot answer at all (the handler turns
        that into a 503).  ``graphs`` carries the per-graph breakdown from
        :meth:`GraphDirectory.readiness`.
        """
        counters = self.counters_snapshot()
        readiness = self.directory.readiness()
        states = [str(entry.get("state", "ok")) for entry in readiness.values()]
        if any(state == "down" for state in states):
            status = "down"
        elif any(state == "degraded" for state in states):
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "graphs": readiness,
            "uptime_seconds": self.uptime_seconds(),
            "protocol_version": PROTOCOL_VERSION,
            "stats_schema_version": STATS_SCHEMA_VERSION,
            "served_graphs": len(self.directory),
            "max_in_flight": self.max_in_flight,
            "in_flight": self.in_flight(),
            "requests": counters["requests"],
            "rejections": counters["rejections"],
            "degraded_answers": counters["degraded"],
            "deadline_exceeded": counters["deadline_exceeded"],
            # Persistent-store state (root, snapshots on disk, attach /
            # persist / mismatch counters, per-graph attach modes);
            # ``None`` when the directory serves without a store.
            "store": self.directory.store_summary(),
        }

    def start(self) -> "Gateway":
        """Serve in a daemon thread; returns self so construction chains."""
        if self._thread is not None:
            raise RuntimeError("gateway already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"repro-gateway:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Gateway(url={self.url!r}, graphs={self.directory.names()}, "
            f"max_in_flight={self.max_in_flight})"
        )
