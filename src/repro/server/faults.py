"""Deterministic fault injection for the serving path.

Chaos testing a threaded serving stack with ``time.sleep`` and luck produces
flaky tests; this module makes failure *schedulable*.  A :class:`FaultPlan`
is a seeded list of :class:`FaultRule` s, each naming an injection **site**
(a stable string like ``"replica.search"``), an optional attribute match
(``replica=2``, ``endpoint="search"``), a call-count window (``after`` /
``count``) and a fault ``kind``:

* ``"error"``  — raise :class:`InjectedFault` (optionally after a delay);
* ``"delay"``  — sleep ``delay_seconds`` then proceed (a *late* answer);
* ``"stall"``  — alias of ``"delay"``, for rules whose intent is a hang a
  deadline must cut short rather than mere slowness.

The serving layers expose one hook each and call
:meth:`FaultPlan.on` with their site name and matchable attributes:

==================  ======================================  =================
Site                Hooked in                               Attributes
==================  ======================================  =================
``engine.search``   :meth:`repro.api.BCCEngine.search`      method, vertices
``replica.search``  :meth:`repro.server.ReplicaSet.search`  replica, method,
                                                            vertices
``gateway.request``  the gateway POST handler               endpoint, graph
==================  ======================================  =================

Matching is counted per rule, so ``after=3, count=2`` fires on exactly the
4th and 5th matching call whatever threads deliver them; probabilistic
rules draw from the plan's own seeded RNG under the plan lock, so a given
seed always yields the same injection schedule for the same call sequence.
The injected ``sleep`` is swappable for a fake clock in tests.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ReproError

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
]

#: Recognized fault kinds (``"stall"`` behaves as ``"delay"``; the two names
#: document different intents — slowness vs. a hang a deadline must bound).
FAULT_KINDS = ("error", "delay", "stall")


class InjectedFault(ReproError):
    """The failure a :class:`FaultPlan` injects at a serving hook.

    Deliberately *not* a :class:`~repro.exceptions.QueryError`: an injected
    fault simulates infrastructure failing, so the resilience layer must
    treat it as a replica failure (health penalty, failover), never as a
    caller error.
    """

    def __init__(self, message: str, site: str = "") -> None:
        super().__init__(message)
        self.site = site


@dataclass
class FaultRule:
    """One scheduled fault.

    Parameters
    ----------
    site:
        The injection site this rule watches (e.g. ``"replica.search"``).
    kind:
        ``"error"`` / ``"delay"`` / ``"stall"`` (see module docs).
    where:
        Attribute equality match against the keyword arguments of
        :meth:`FaultPlan.on`; an empty mapping matches every call at the
        site.  ``where={"replica": 2}`` targets one replica only.
    after:
        Number of matching calls to let through before injecting.
    count:
        How many matching calls to inject into once active (``None`` =
        every one, forever).
    delay_seconds:
        Sleep applied by ``delay``/``stall`` rules — and by ``error`` rules
        before raising, to model a slow failure.
    probability:
        Chance of injecting once the window is active, drawn from the
        plan's seeded RNG (1.0 = deterministic).
    message:
        Optional text for the raised :class:`InjectedFault`.
    """

    site: str
    kind: str = "error"
    where: Dict[str, object] = field(default_factory=dict)
    after: int = 0
    count: Optional[int] = None
    delay_seconds: float = 0.0
    probability: float = 1.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.after < 0:
            raise ValueError("after must be non-negative")
        if self.count is not None and self.count < 0:
            raise ValueError("count must be non-negative or None")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")

    def matches(self, site: str, attrs: Dict[str, object]) -> bool:
        """Whether a hook call at ``site`` with ``attrs`` concerns this rule."""
        if site != self.site:
            return False
        return all(attrs.get(key) == value for key, value in self.where.items())


class FaultPlan:
    """A seeded, thread-safe schedule of injectable faults.

    Parameters
    ----------
    rules:
        The :class:`FaultRule` s to apply, in priority order — the first
        rule that decides to inject on a call wins.
    seed:
        Seed of the plan's private RNG (used only by probabilistic rules).
    sleep:
        The sleep used by ``delay``/``stall`` rules; swap in a fake for
        tests that assert schedules without wall-clock waits.

    A plan with no rules is inert and free to leave attached.
    """

    def __init__(
        self,
        rules: Iterable[FaultRule] = (),
        seed: int = 0,
        # Declared BCC002 seam: delay/stall faults should really stall a
        # live process under manual chaos; the deterministic suites pass
        # a recording fake instead.
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._rules: Tuple[FaultRule, ...] = tuple(rules)
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._site_calls: Dict[str, int] = {}
        self._matched: List[int] = [0] * len(self._rules)
        self._injected: List[int] = [0] * len(self._rules)

    @property
    def rules(self) -> Tuple[FaultRule, ...]:
        return self._rules

    # ------------------------------------------------------------------
    # the hook
    # ------------------------------------------------------------------
    def on(self, site: str, **attrs: object) -> None:
        """Invoked by a serving layer at an injection site.

        Decides under the plan lock (so counting and the RNG are
        deterministic), then sleeps/raises *outside* it — a stalling rule
        must never stall unrelated sites.
        """
        fire: Optional[Tuple[int, FaultRule]] = None
        with self._lock:
            self._site_calls[site] = self._site_calls.get(site, 0) + 1
            for index, rule in enumerate(self._rules):
                if not rule.matches(site, attrs):
                    continue
                position = self._matched[index]
                self._matched[index] += 1
                if position < rule.after:
                    continue
                if rule.count is not None and position >= rule.after + rule.count:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                self._injected[index] += 1
                fire = (index, rule)
                break
        if fire is None:
            return
        _, rule = fire
        if rule.delay_seconds > 0.0:
            self._sleep(rule.delay_seconds)
        if rule.kind == "error":
            raise InjectedFault(
                rule.message
                or f"injected fault at {site} ({attrs or 'unconditional'})",
                site=site,
            )

    # ------------------------------------------------------------------
    # introspection (what actually happened, for assertions)
    # ------------------------------------------------------------------
    def calls(self, site: str) -> int:
        """How many hook calls ``site`` has seen."""
        with self._lock:
            return self._site_calls.get(site, 0)

    def injected(self, rule_index: Optional[int] = None) -> int:
        """Faults injected by one rule (or by the whole plan)."""
        with self._lock:
            if rule_index is not None:
                return self._injected[rule_index]
            return sum(self._injected)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable audit of the plan's activity so far."""
        with self._lock:
            return {
                "sites": dict(self._site_calls),
                "rules": [
                    {
                        "site": rule.site,
                        "kind": rule.kind,
                        "where": dict(rule.where),
                        "matched": self._matched[index],
                        "injected": self._injected[index],
                    }
                    for index, rule in enumerate(self._rules)
                ],
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(rules={len(self._rules)}, injected={self.injected()})"
