"""Serving statistics: latency histograms and the stats-endpoint payload.

Operators of a long-lived serving process ask three questions: *is the
cache working* (hit rates), *did laziness hold* (which shards actually paid
freeze/index cost), and *what does latency look like* (a histogram, not an
average).  :class:`ServingStats` answers all three with one JSON-serializable
snapshot — the payload a ``/stats`` endpoint would return — assembled from
the lock-protected engine counters (:meth:`BCCEngine.counters_snapshot`),
the result-cache info and a :class:`LatencyHistogram` fed by the serving
layer.

Nothing here blocks serving: snapshots copy under short leaf locks, and the
histogram's ``observe`` is a counter bump under its own lock.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.engine import ENGINE_COUNTER_NAMES, BCCEngine

#: Version stamp of the stats-endpoint payload schema
#: (``GraphDirectory.stats_payload`` / ``GET /stats``).  Bump when a field
#: is renamed or removed; adding fields is backward compatible.  Version 2
#: added the top-level ``trace`` and ``metrics`` observability blocks.
STATS_SCHEMA_VERSION = 2

#: Half-decade log-scaled bucket upper bounds (seconds): 100µs .. 10s, plus
#: an implicit overflow bucket.  Community searches on the evaluation
#: networks span exactly this range — cache hits land in the first buckets,
#: cold index builds in the last.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = (
    0.0001,
    0.000316,
    0.001,
    0.00316,
    0.01,
    0.0316,
    0.1,
    0.316,
    1.0,
    3.16,
    10.0,
)


class LatencyHistogram:
    """A fixed-bucket latency histogram safe to fill from serving threads.

    Buckets are cumulative-style upper bounds (Prometheus ``le`` idiom) with
    a final overflow bucket.  Quantiles are estimated as the upper bound of
    the bucket containing the quantile rank — deliberately conservative
    (never under-reports) and cheap enough for a per-request hot path.
    """

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS) -> None:
        self._bounds: Tuple[float, ...] = tuple(sorted(bounds))
        if not self._bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts: List[int] = [0] * (len(self._bounds) + 1)  # + overflow
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    @property
    def bounds(self) -> Tuple[float, ...]:
        """The (sorted, immutable) bucket upper bounds."""
        return self._bounds

    def observe(self, seconds: float) -> None:
        """Record one request latency."""
        if seconds < 0:
            seconds = 0.0
        index = bisect_left(self._bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Accumulate ``other``'s observations into this histogram.

        Bucket counts, totals and maxima are summed/maxed, so N per-replica
        histograms merge into one set-level histogram without losing bucket
        resolution.  Both histograms must share the same bounds — merging
        across different bucket layouts would silently misfile counts, so it
        raises ``ValueError`` instead.  Returns ``self`` so merges chain.
        """
        if not isinstance(other, LatencyHistogram):
            raise TypeError(f"cannot merge {type(other)!r} into a histogram")
        if other._bounds != self._bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self._bounds} != {other._bounds}"
            )
        # Snapshot the source under its own lock first; lock order is
        # other -> self, and merge targets are private per-merge objects,
        # so no concurrent opposite-order merge can deadlock.
        with other._lock:
            counts = list(other._counts)
            count = other._count
            total = other._sum
            observed_max = other._max
        with self._lock:
            for index, value in enumerate(counts):
                self._counts[index] += value
            self._count += count
            self._sum += total
            if observed_max > self._max:
                self._max = observed_max
        return self

    def _quantile_upper_bound(
        self, counts: List[int], rank: float, observed_max: float
    ) -> float:
        """Upper bound of the bucket holding the ``rank``-quantile sample.

        ``observed_max`` is the caller's already-snapshotted maximum — this
        runs outside the lock, so it must not touch live counter state.
        """
        target = rank * sum(counts)
        running = 0
        for index, count in enumerate(counts):
            running += count
            if running >= target and count:
                if index < len(self._bounds):
                    return self._bounds[index]
                return observed_max  # overflow bucket: the observed max
        return 0.0

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable copy: bucket counts plus derived summaries."""
        with self._lock:
            counts = list(self._counts)
            count = self._count
            total = self._sum
            observed_max = self._max
        buckets = [
            {"le": bound, "count": counts[index]}
            for index, bound in enumerate(self._bounds)
        ]
        buckets.append({"le": "inf", "count": counts[-1]})
        snapshot: Dict[str, object] = {
            "count": count,
            "sum_seconds": total,
            "mean_seconds": (total / count) if count else None,
            "max_seconds": observed_max if count else None,
            "buckets": buckets,
        }
        for name, rank in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            snapshot[f"{name}_seconds"] = (
                self._quantile_upper_bound(counts, rank, observed_max)
                if count
                else None
            )
        return snapshot


def zero_engine_counters() -> Dict[str, int]:
    """An all-zero engine counter dict (for shards that never did work)."""
    return {name: 0 for name in ENGINE_COUNTER_NAMES}


def aggregate_counters(parts: Sequence[Dict[str, int]]) -> Dict[str, int]:
    """Sum counter dicts key-wise (missing keys count as zero)."""
    total: Dict[str, int] = {}
    for part in parts:
        for key, value in part.items():
            total[key] = total.get(key, 0) + value
    return total


def engine_payload(engine: BCCEngine) -> Dict[str, object]:
    """One engine's stats block: graph shape, counters, cache info."""
    return {
        "vertices": engine.graph.num_vertices(),
        "edges": engine.graph.num_edges(),
        "prepared": engine.is_prepared(),
        "index_built": engine.has_index(),
        "counters": engine.counters_snapshot(),
        "cache": engine.result_cache_info(),
    }


@dataclass(frozen=True)
class ServingStats:
    """The stats-endpoint payload for one served graph.

    ``counters`` aggregates engine counters across every shard (for a
    monolithic engine it *is* the engine's counters) merged with the
    serving-layer counters (``searches``, ``cross_shard_queries``,
    ``partitions``, ...).  ``shards`` carries one block per shard —
    including never-built shards, whose counters are explicitly all-zero:
    that is the laziness proof a test or an operator reads off the
    endpoint.  A replicated engine (:class:`repro.server.ReplicaSet`)
    reports ``kind="replicated"`` with one ``replicas`` block per replica
    (routed counts, in-flight gauge, per-replica engine counters) and a
    latency histogram merged across replicas via
    :meth:`LatencyHistogram.merge`.
    """

    name: str
    kind: str  # "sharded" | "monolithic" | "replicated"
    graph: Dict[str, int]
    counters: Dict[str, int]
    cache: Dict[str, object]
    latency: Dict[str, object]
    shards: Tuple[Dict[str, object], ...] = ()
    replicas: Tuple[Dict[str, object], ...] = ()
    #: Replica-set health summary (``state``/``available``/``states``);
    #: ``None`` for engines without health tracking.
    health: Optional[Dict[str, object]] = None
    #: Persistent-store block (attach mode, resident/evicted shard counts);
    #: ``None`` for engines serving without a snapshot store.
    store: Optional[Dict[str, object]] = None
    #: Process-backend worker-pool block (pool size, dispatch counters,
    #: one row per worker process with pid / liveness / crash counts and
    #: its last piggybacked engine counters); ``None`` when no pool is
    #: live — serving never blocks on a busy worker to report this.
    workers: Optional[Dict[str, object]] = None

    @classmethod
    def from_engine(
        cls,
        engine: BCCEngine,
        name: str = "engine",
        latency: Optional[LatencyHistogram] = None,
    ) -> "ServingStats":
        """Snapshot a monolithic :class:`BCCEngine`.

        (Sharded engines build their own snapshot — see
        :meth:`repro.serving.sharded.ShardedBCCEngine.stats`.)
        """
        payload = engine_payload(engine)
        pool_stats = getattr(engine, "process_pool_stats", None)
        return cls(
            name=name,
            kind="monolithic",
            graph={
                "vertices": payload["vertices"],
                "edges": payload["edges"],
                "version": engine.graph.version(),
            },
            counters=payload["counters"],
            cache=payload["cache"],
            latency=(
                latency.snapshot()
                if latency is not None
                else LatencyHistogram().snapshot()
            ),
            workers=pool_stats() if pool_stats is not None else None,
        )

    def shard(self, shard_id: int) -> Dict[str, object]:
        """The stats block of one shard (raises IndexError when absent)."""
        for block in self.shards:
            if block.get("shard") == shard_id:
                return block
        raise IndexError(f"no shard {shard_id} in stats for {self.name!r}")

    def to_dict(self) -> Dict[str, object]:
        """The JSON-serializable endpoint payload."""
        payload: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "graph": dict(self.graph),
            "counters": dict(self.counters),
            "cache": dict(self.cache),
            "latency": dict(self.latency),
        }
        if self.kind == "sharded":
            payload["shards"] = [dict(block) for block in self.shards]
        if self.kind == "replicated":
            payload["replicas"] = [dict(block) for block in self.replicas]
        if self.health is not None:
            payload["health"] = dict(self.health)
        if self.store is not None:
            payload["store"] = dict(self.store)
        if self.workers is not None:
            payload["workers"] = dict(self.workers)
        return payload

    def to_json(self, indent: Optional[int] = None) -> str:
        """The payload as a JSON document (the endpoint body)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
