"""A directory of named serving engines: many graphs, one process.

:class:`GraphDirectory` hosts multiple named engines — sharded
(:class:`repro.serving.sharded.ShardedBCCEngine`) or monolithic
(:class:`repro.api.BCCEngine`) — behind one ``serve(name, query)`` surface,
and is wired to the dataset registry so any registered evaluation network
is servable by name::

    directory = GraphDirectory()
    directory.load("baidu-tiny", seed=7)          # sharded by default
    response = directory.serve("baidu-tiny", Query("lp-bcc", pair))
    print(directory.stats()["baidu-tiny"].to_json(indent=2))

Per-graph latency histograms are recorded at the directory edge (covering
routing *and* search), so the aggregated :meth:`stats` payload is the whole
process's "stats endpoint".
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Dict, Iterable, List, Optional, Union

from repro.api.config import SearchConfig
from repro.api.engine import DEFAULT_RESULT_CACHE_SIZE, BCCEngine
from repro.api.query import BatchQuery, Query, SearchResponse
from repro.datasets.registry import load_dataset
from repro.exceptions import GraphNotFoundError
from repro.graph.labeled_graph import LabeledGraph
from repro.obs import Observability
from repro.obs.metrics import Sample, counter_samples
from repro.serving.sharded import ShardedBCCEngine
from repro.serving.stats import (
    STATS_SCHEMA_VERSION,
    LatencyHistogram,
    ServingStats,
)

#: Anything the directory can host: a monolithic engine, a sharded engine,
#: or a replica set (``repro.server.replicas.ReplicaSet`` — imported lazily
#: to keep ``repro.serving`` importable without the server package).
ServingEngine = Union[BCCEngine, ShardedBCCEngine, object]


class GraphDirectory:
    """Named serving engines over many graphs in one process.

    Parameters
    ----------
    config:
        Default :class:`SearchConfig` for engines added without their own.
    sharded:
        Whether :meth:`add` / :meth:`load` build sharded engines by default
        (overridable per graph).
    result_cache_size, result_cache_policy:
        Defaults forwarded to every engine's result cache.
    store:
        A :class:`repro.store.SnapshotStore` (or a root path for one).
        When set, :meth:`add` / :meth:`load` attach to persisted snapshots
        instead of rebuilding whenever the on-disk checksum and graph
        fingerprint match the live graph (rebuilding *and persisting* on
        any miss), sharded engines spill/page per-shard snapshots through
        it, and the store's attach/persist/mismatch counters ride the
        stats payload.  Replicated hosting (``replicas > 1``) ignores the
        store: N replica engines deliberately build N private states.
    max_resident_shards:
        Default per-graph memory budget for sharded engines (LRU shard
        eviction; ``None`` = unbounded).  Overridable per :meth:`add`.
    observability:
        The :class:`repro.obs.Observability` bundle this directory reports
        into (one is created when not given).  The directory registers a
        ``"directory"`` metrics source over its own :meth:`stats` — every
        engine/router/pool/store counter and the per-graph latency
        histograms land in ``GET /metrics`` without any engine knowing the
        registry exists — and :meth:`stats_payload` carries the bundle's
        ``trace``/``metrics`` blocks.  Tracing stays off until
        ``directory.observability.tracer.enable()``.

    All directory operations are thread-safe; the engines themselves are
    thread-safe by construction, so one directory can serve a whole
    process's traffic.
    """

    def __init__(
        self,
        config: Optional[SearchConfig] = None,
        sharded: bool = True,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        result_cache_policy: Optional[object] = None,
        store: Optional[object] = None,
        max_resident_shards: Optional[int] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        self._config = config
        self._sharded_default = sharded
        self._result_cache_size = result_cache_size
        self._result_cache_policy = result_cache_policy
        if store is not None and not hasattr(store, "attach_or_build"):
            # A root path was given; stand up a store over it.  Imported
            # lazily so `repro.serving` stays importable on its own.
            from repro.store import SnapshotStore

            store = SnapshotStore(store)
        self._store = store
        self._max_resident_shards = max_resident_shards
        self._lock = threading.Lock()
        self._engines: Dict[str, ServingEngine] = {}
        self._latency: Dict[str, LatencyHistogram] = {}
        self._store_modes: Dict[str, str] = {}
        self._started_monotonic = time.monotonic()
        if observability is None:
            observability = Observability()
        self.observability = observability
        self.observability.registry.register_source(
            "directory", self._metric_samples
        )

    # ------------------------------------------------------------------
    # hosting
    # ------------------------------------------------------------------
    def add(
        self,
        name: str,
        graph: Union[LabeledGraph, object],
        *,
        sharded: Optional[bool] = None,
        replicas: int = 1,
        config: Optional[SearchConfig] = None,
        result_cache_size: Optional[int] = None,
        result_cache_policy: Optional[object] = None,
        health_policy: Optional[object] = None,
        fault_plan: Optional[object] = None,
        max_resident_shards: Optional[int] = None,
        member_backend: str = "thread",
    ) -> ServingEngine:
        """Host ``graph`` (or a bundle) under ``name`` and return its engine.

        Re-adding an existing name replaces its engine — the directory is
        the single owner of the name, so a live process can swap a graph
        for a rebuilt one atomically.

        With a directory ``store=``, monolithic hosting goes through
        :meth:`SnapshotStore.attach_or_build` (a matching snapshot means
        no freeze and no index build at all) and sharded hosting passes
        the store down so shards spill/page under ``max_resident_shards``
        (falling back to the directory-wide default budget when not given
        here).

        ``replicas > 1`` hosts the graph as a
        :class:`repro.server.replicas.ReplicaSet` — N engines (sharded or
        monolithic per the ``sharded`` flag) behind least-loaded routing —
        so one hot graph scales horizontally without the caller noticing.
        ``health_policy`` (a :class:`repro.server.resilience.HealthPolicy`)
        and ``fault_plan`` (a :class:`repro.server.faults.FaultPlan`) are
        forwarded to the replica set; for single-engine hosting only
        ``fault_plan`` applies (monolithic engines hook the
        ``"engine.search"`` fault site, and there is no replica health to
        police).
        """
        if not name or not isinstance(name, str):
            raise ValueError("a served graph needs a non-empty string name")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        use_sharded = self._sharded_default if sharded is None else sharded
        engine_config = config if config is not None else self._config
        cache_size = (
            self._result_cache_size
            if result_cache_size is None
            else result_cache_size
        )
        cache_policy = (
            self._result_cache_policy
            if result_cache_policy is None
            else result_cache_policy
        )
        shard_budget = (
            self._max_resident_shards
            if max_resident_shards is None
            else max_resident_shards
        )
        engine: ServingEngine
        store_mode: Optional[str] = None
        if replicas > 1:
            # Imported lazily: repro.server builds on repro.serving, so a
            # module-level import here would be circular.
            from repro.server.replicas import ReplicaSet

            engine = ReplicaSet(
                graph,
                engine_config,
                replicas=replicas,
                sharded=use_sharded,
                result_cache_size=cache_size,
                result_cache_policy=cache_policy,
                health_policy=health_policy,  # type: ignore[arg-type]
                fault_plan=fault_plan,
                member_backend=member_backend,
            )
        elif use_sharded:
            engine = ShardedBCCEngine(
                graph,
                engine_config,
                result_cache_size=cache_size,
                result_cache_policy=cache_policy,
                store=self._store,
                store_key=name,
                max_resident_shards=shard_budget,
            )
            if self._store is not None:
                store_mode = "sharded"
        elif self._store is not None:
            plain = graph if isinstance(graph, LabeledGraph) else getattr(
                graph, "graph", graph
            )
            engine, store_mode = self._store.attach_or_build(
                name,
                plain,
                engine_config,
                result_cache_size=cache_size,
                result_cache_policy=cache_policy,
                fault_plan=fault_plan,
            )
        else:
            engine = BCCEngine(
                graph,
                engine_config,
                result_cache_size=cache_size,
                result_cache_policy=cache_policy,
                fault_plan=fault_plan,
            )
        with self._lock:
            self._engines[name] = engine
            self._latency[name] = LatencyHistogram()
            if store_mode is not None:
                self._store_modes[name] = store_mode
            else:
                self._store_modes.pop(name, None)
        return engine

    def load(
        self,
        dataset: str,
        *,
        name: Optional[str] = None,
        seed: int = 0,
        sharded: Optional[bool] = None,
        replicas: int = 1,
        config: Optional[SearchConfig] = None,
        **kwargs: object,
    ) -> ServingEngine:
        """Generate a registered dataset and host it (name defaults to the
        dataset's); extra ``kwargs`` go to the generator.

        This is the "any registered dataset is servable by name" wiring:
        ``directory.load("orkut", communities=6)`` stands up a sharded
        engine over a fresh orkut-like network in one call.
        """
        bundle = load_dataset(dataset, seed=seed, **kwargs)
        return self.add(
            name if name is not None else dataset,
            bundle,
            sharded=sharded,
            replicas=replicas,
            config=config,
        )

    def get(self, name: str) -> ServingEngine:
        """The engine serving ``name`` (:class:`GraphNotFoundError` if absent)."""
        with self._lock:
            engine = self._engines.get(name)
            if engine is None:
                raise GraphNotFoundError(name, known=self._engines)
            return engine

    def remove(self, name: str) -> None:
        """Stop serving ``name`` (:class:`GraphNotFoundError` if absent).

        Process-backed resources (worker pools, shared-memory exports) are
        released outside the directory lock — shutting workers down joins
        their processes, which must never stall unrelated serving calls.
        """
        with self._lock:
            if name not in self._engines:
                raise GraphNotFoundError(name, known=self._engines)
            engine = self._engines.pop(name)
            del self._latency[name]
            self._store_modes.pop(name, None)
        closer = getattr(engine, "close", None)
        if closer is None:
            closer = getattr(engine, "close_process_pool", None)
        if closer is not None:
            closer()

    def names(self) -> List[str]:
        """The graphs currently served, sorted."""
        with self._lock:
            return sorted(self._engines)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._engines

    def __len__(self) -> int:
        with self._lock:
            return len(self._engines)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def serve(self, name: str, query: Query, **kwargs: object) -> SearchResponse:
        """Serve one query against the named graph, recording edge latency."""
        engine = self.get(name)
        histogram = self._histogram(name)
        start = time.perf_counter()
        try:
            return engine.search(query, **kwargs)  # type: ignore[arg-type]
        finally:
            histogram.observe(time.perf_counter() - start)

    def serve_many(
        self,
        name: str,
        queries: Union[BatchQuery, Iterable[Query]],
        **kwargs: object,
    ) -> List[SearchResponse]:
        """Serve a batch against the named graph (``search_many`` semantics).

        The batch's wall-clock is recorded as one edge-latency observation —
        per-query latencies live in each response's ``timings``.
        """
        engine = self.get(name)
        histogram = self._histogram(name)
        start = time.perf_counter()
        try:
            return engine.search_many(queries, **kwargs)  # type: ignore[arg-type]
        finally:
            histogram.observe(time.perf_counter() - start)

    def _histogram(self, name: str) -> LatencyHistogram:
        with self._lock:
            histogram = self._latency.get(name)
        if histogram is None:
            # Raced a remove() after get(): serve the in-flight query and
            # drop its observation — re-inserting here would leave an
            # orphan histogram for a graph no longer served.
            return LatencyHistogram()
        return histogram

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, ServingStats]:
        """Per-graph :class:`ServingStats`, keyed by served name."""
        with self._lock:
            engines = dict(self._engines)
            histograms = dict(self._latency)
            store_modes = dict(self._store_modes)
        snapshots: Dict[str, ServingStats] = {}
        for name, engine in engines.items():
            if isinstance(engine, BCCEngine):
                snapshot = ServingStats.from_engine(
                    engine, name=name, latency=histograms.get(name)
                )
                mode = store_modes.get(name)
                if mode is not None:
                    # "attached" = served from a snapshot (no freeze, no
                    # index build); "built" = snapshot miss, rebuilt and
                    # persisted for the next process.
                    snapshot = dataclasses.replace(
                        snapshot, store={"mode": mode}
                    )
            else:
                # Sharded engines and replica sets build their own
                # aggregated snapshot (per-shard / per-replica blocks).
                snapshot = engine.stats(name=name)
            snapshots[name] = snapshot
        return snapshots

    def readiness(self) -> Dict[str, Dict[str, object]]:
        """Per-graph serving readiness, keyed by served name.

        Engines that track replica health (:class:`ReplicaSet`) report
        their own :meth:`health_summary` (``ok`` / ``degraded`` / ``down``
        plus per-replica states); engines without health tracking are
        ready by construction and report ``{"state": "ok"}``.  This is the
        substance behind the gateway's ``/healthz``.
        """
        with self._lock:
            engines = dict(self._engines)
        readiness: Dict[str, Dict[str, object]] = {}
        for name, engine in engines.items():
            summary = getattr(engine, "health_summary", None)
            readiness[name] = summary() if callable(summary) else {"state": "ok"}
        return readiness

    def uptime_seconds(self) -> float:
        """Seconds since this directory was constructed."""
        return time.monotonic() - self._started_monotonic

    def store_summary(self) -> Optional[Dict[str, object]]:
        """The persistent-store block for stats/health payloads.

        ``None`` when the directory serves without a store; otherwise the
        store root, the snapshot names on disk, the store counters
        (attaches / builds / persists / mismatches / invalid) and the
        per-served-name attach mode.
        """
        if self._store is None:
            return None
        summary = self._store.summary()
        with self._lock:
            summary["modes"] = dict(self._store_modes)
        return summary

    def _metric_samples(self) -> List[Sample]:
        """The ``"directory"`` rows of the unified metrics registry.

        Built from the exact snapshots ``/stats`` serves (engine counters,
        pool counters and per-worker rows, store counters, edge-latency
        histograms), so ``GET /metrics`` and ``GET /stats`` agree by
        construction — the integration tests assert counter-for-counter
        equality between the two endpoints.
        """
        samples: List[Sample] = []
        for name, snapshot in self.stats().items():
            graph_labels = {"graph": name}
            # Engine + router (+ replica set health/routing) counters: for
            # replicated/sharded engines ``counters`` already aggregates
            # per-member counters plus the serving-layer's own.
            samples.extend(
                counter_samples(
                    "engine",
                    snapshot.counters,
                    labels=graph_labels,
                    help="aggregated serving counters per graph",
                )
            )
            samples.append(
                Sample(
                    name="bcc_graph_latency_seconds",
                    labels=(("graph", name),),
                    kind="histogram",
                    help="directory-edge serving latency",
                    histogram=snapshot.latency,
                )
            )
            workers = snapshot.workers
            if isinstance(workers, dict):
                samples.extend(
                    counter_samples(
                        "pool",
                        workers.get("counters", {}),  # type: ignore[arg-type]
                        labels=graph_labels,
                        help="process worker pool counters",
                    )
                )
                for block in workers.get("workers", ()):  # type: ignore[union-attr]
                    if not isinstance(block, dict):
                        continue
                    per_worker = {
                        key: value
                        for key, value in block.items()
                        if key not in ("worker", "pid", "alive", "engine")
                    }
                    samples.extend(
                        counter_samples(
                            "pool_worker",
                            per_worker,
                            labels={
                                "graph": name,
                                "worker": block.get("worker", "?"),
                            },
                            help="per-worker-process pool counters",
                        )
                    )
        store = self.store_summary()
        if store is not None:
            samples.extend(
                counter_samples(
                    "store",
                    store.get("counters", {}),  # type: ignore[arg-type]
                    help="snapshot store counters",
                )
            )
        samples.append(
            Sample(
                name="bcc_directory_served_graphs",
                value=float(len(self)),
                kind="gauge",
                help="graphs currently served by this directory",
            )
        )
        return samples

    def stats_payload(self) -> Dict[str, object]:
        """The whole directory as one JSON-serializable stats document.

        Self-describing: ``schema_version`` stamps the payload layout
        (:data:`repro.serving.stats.STATS_SCHEMA_VERSION`) and
        ``uptime_seconds`` dates the process, so a scraper can tell a
        restarted server from a quiet one.  The full field-by-field schema
        is documented in the README's "Stats payload schema" section.
        Schema version 2 added the ``trace`` and ``metrics`` blocks (the
        observability bundle's tracer/slow-log state and metrics-registry
        summary).
        """
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "uptime_seconds": self.uptime_seconds(),
            "graphs": {
                name: snapshot.to_dict()
                for name, snapshot in self.stats().items()
            },
            "served_graphs": len(self),
            "store": self.store_summary(),
            "trace": self.observability.trace_block(),
            "metrics": self.observability.metrics_block(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphDirectory(serving={self.names()})"
