"""Cache admission policies for the engine's LRU result cache.

``BCCEngine``'s result cache is a plain LRU: under skewed traffic that is
both too eager (a burst of one-off queries evicts the hot set) and too
trusting (an answer cached hours ago replays forever on an unmutated
graph).  A :class:`CacheAdmissionPolicy` layers serving-grade behaviour on
top without touching the engine's locking:

* :class:`TTLPolicy` — entries older than ``ttl_seconds`` are evicted at
  lookup time and the lookup reports a miss, so stale answers are never
  replayed even though the graph version did not change (useful when the
  response feeds a freshness-sensitive consumer).
* :class:`MethodBudgetPolicy` — per-method entry budgets: one method's
  burst can evict *its own* oldest entries beyond its budget, never another
  method's.  A budget of 0 refuses admission outright.
* :class:`CompositePolicy` — combines policies: admission requires every
  member's consent, expiry any member's verdict, and the effective
  per-method budget is the tightest one.

The engine calls four hooks (duck-typed — the engine does not import this
module, so the ``api`` layer stays below ``serving``):

* ``now() -> float`` — the policy's clock.  Monotonic by default;
  injectable (``clock=``) so tests can advance time deterministically.
* ``admit(method, response) -> bool`` — gate on insert.
* ``expired(method, age_seconds) -> bool`` — gate on lookup.
* ``method_budget(method) -> Optional[int]`` — per-method entry cap
  (``None`` = unbounded).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence

from repro.exceptions import QueryError

Clock = Callable[[], float]


class CacheAdmissionPolicy:
    """Base policy: admit everything, expire nothing, no budgets.

    Subclasses override the hooks they care about.  ``clock`` defaults to
    :func:`time.monotonic`; tests inject a fake clock to advance time
    deterministically.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock: Clock = clock if clock is not None else time.monotonic

    def now(self) -> float:
        """The policy's clock (seconds; only differences are meaningful)."""
        return self._clock()

    def admit(self, method: str, response: object) -> bool:
        """Whether ``response`` may enter the cache at all."""
        return True

    def expired(self, method: str, age_seconds: float) -> bool:
        """Whether an entry of ``age_seconds`` must be treated as a miss."""
        return False

    def method_budget(self, method: str) -> Optional[int]:
        """Max entries ``method`` may hold (``None`` = unbounded)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class TTLPolicy(CacheAdmissionPolicy):
    """Expire every cached response ``ttl_seconds`` after insertion.

    An expired entry is evicted at lookup time and the lookup counts as a
    miss (``result_cache_expirations`` in the engine counters) — the search
    then runs and re-caches a fresh answer.
    """

    def __init__(self, ttl_seconds: float, clock: Optional[Clock] = None) -> None:
        super().__init__(clock)
        if ttl_seconds <= 0:
            raise QueryError("ttl_seconds must be positive")
        self.ttl_seconds = float(ttl_seconds)

    def expired(self, method: str, age_seconds: float) -> bool:
        return age_seconds >= self.ttl_seconds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TTLPolicy(ttl_seconds={self.ttl_seconds})"


class MethodBudgetPolicy(CacheAdmissionPolicy):
    """Per-method entry budgets over the engine's shared LRU.

    ``budgets`` maps canonical method names to their entry caps; methods
    absent from the mapping fall back to ``default`` (``None`` =
    unbounded).  Exceeding a budget evicts the *same method's* oldest
    entries only — skewed traffic on one method cannot flush another
    method's warm answers.  A budget of 0 refuses admission outright.
    """

    def __init__(
        self,
        budgets: Dict[str, int],
        default: Optional[int] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(clock)
        for method, budget in budgets.items():
            if budget < 0:
                raise QueryError(
                    f"budget for method {method!r} must be non-negative"
                )
        if default is not None and default < 0:
            raise QueryError("default budget must be non-negative")
        self.budgets = dict(budgets)
        self.default = default

    def admit(self, method: str, response: object) -> bool:
        # A zero budget means "never cache this method" — refusing at the
        # door beats inserting and immediately evicting.
        return self.method_budget(method) != 0

    def method_budget(self, method: str) -> Optional[int]:
        return self.budgets.get(method, self.default)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MethodBudgetPolicy(budgets={self.budgets}, default={self.default})"


class CompositePolicy(CacheAdmissionPolicy):
    """Combine several policies into one.

    Admission requires *every* member to admit; an entry is expired as soon
    as *any* member says so; the effective per-method budget is the
    tightest member budget.  The composite's clock is used for stamping —
    member clocks are ignored, so mixing differently-clocked members cannot
    skew ages.
    """

    def __init__(
        self,
        policies: Sequence[CacheAdmissionPolicy],
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(clock)
        self.policies = tuple(policies)

    def admit(self, method: str, response: object) -> bool:
        return all(policy.admit(method, response) for policy in self.policies)

    def expired(self, method: str, age_seconds: float) -> bool:
        return any(
            policy.expired(method, age_seconds) for policy in self.policies
        )

    def method_budget(self, method: str) -> Optional[int]:
        budgets = [
            budget
            for policy in self.policies
            if (budget := policy.method_budget(method)) is not None
        ]
        return min(budgets) if budgets else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompositePolicy({list(self.policies)})"
