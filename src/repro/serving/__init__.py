"""Sharded multi-graph serving layer above :mod:`repro.api`.

This package is the process-level serving tier the ROADMAP's north star
asks for: many graphs, many shards, one uniform ``Query`` /
``SearchResponse`` surface.

* :class:`ShardedBCCEngine` — one :class:`repro.api.BCCEngine` per
  connected component behind a vertex→shard routing table; shards prepare
  lazily, cross-component queries short-circuit to ``status="empty"`` with
  ``reason="cross-shard"``, and ``search_many`` scatter-gathers with the
  monolithic engine's exact batch semantics.
* :class:`GraphDirectory` — named engines (sharded or monolithic) wired to
  the dataset registry, so any registered network is servable by name.
* :class:`ServingStats` / :class:`LatencyHistogram` — the JSON-serializable
  "stats endpoint" payload: per-shard counters, cache hit rates, latency
  histograms.
* :mod:`repro.serving.policies` — cache admission policies (TTL expiry,
  per-method size budgets) layered onto the engine's LRU result cache.
"""

from repro.serving.directory import GraphDirectory
from repro.serving.policies import (
    CacheAdmissionPolicy,
    CompositePolicy,
    MethodBudgetPolicy,
    TTLPolicy,
)
from repro.serving.sharded import ShardedBCCEngine
from repro.serving.stats import LatencyHistogram, ServingStats

__all__ = [
    "CacheAdmissionPolicy",
    "CompositePolicy",
    "GraphDirectory",
    "LatencyHistogram",
    "MethodBudgetPolicy",
    "ServingStats",
    "ShardedBCCEngine",
    "TTLPolicy",
]
