"""Sharded serving: one engine per connected component, one ``Query`` type.

The BCC model's communities are connected subgraphs containing the query
vertices (Problem 1), and Algorithm 2 extracts the *connected* k-cores
around each query vertex — so every answer is local to the connected
component the query lives in.  :class:`ShardedBCCEngine` exploits that
exactness: it partitions a labeled graph into connected-component shards,
serves each shard from its own :class:`repro.api.BCCEngine`, and routes
queries through a vertex→shard table built at partition time.

Why this is strictly better than one monolithic engine on a multi-component
graph:

* **Laziness** — shards prepare on first use.  A query pays the CSR freeze
  and (for index methods) the BCindex build *of its own component only*;
  components nobody queries never do any work, which
  :meth:`ShardedBCCEngine.stats` proves with explicitly all-zero counters.
* **Smaller working sets** — label groups, cores and the BCindex are built
  over one component instead of the whole graph.
* **Free cross-component answers** — a query spanning two components can
  never have a community; it short-circuits to ``status="empty"`` with
  :data:`repro.exceptions.REASON_CROSS_SHARD` without touching any shard.

Answers are *identical* to the monolithic engine position-for-position
(same status, community, iteration counts and query distances) — enforced
by the randomized parity suite in ``tests/serving/`` — with one documented
difference: cross-component emptiness is reported as ``REASON_CROSS_SHARD``
by the router, while the monolithic engine reports the method's own
discovery of the same fact (e.g. ``REASON_QUERY_DISCONNECTED``).

Mutating the graph between serving calls triggers exactly one re-partition
(double-checked under a lock, counted in ``"partitions"``), discarding
every shard engine; mutating *during* an in-flight search remains undefined,
exactly as for :class:`BCCEngine`.

Bounded-memory serving (the persistent-store wiring)
----------------------------------------------------

With a :class:`repro.store.SnapshotStore` attached (``store=``), shard
engines page in from per-shard snapshot files instead of re-freezing and
re-indexing (``shard_attaches``), persist themselves on first build so the
next process — or the next page-in — attaches (``shard_persists``), and a
``max_resident_shards`` budget turns the shard table into an LRU: when a
page-in would exceed the budget the coldest resident engine is dropped
(``shard_evictions``) and simply re-attached from disk the next time a
query routes to it.  Eviction also works without a store — paging back
then costs a full rebuild — so the budget is a hard memory bound either
way.  In-flight queries keep serving from an evicted engine object until
they finish; eviction only removes it from the resident table.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set, Union

from repro.api.config import SearchConfig
from repro.api.engine import (
    DEFAULT_RESULT_CACHE_SIZE,
    PROCESS_AUTO_MIN_EDGES,
    BCCEngine,
    error_response_for,
    is_caller_error,
    serve_batch,
)
from repro.api.query import (
    STATUS_EMPTY,
    BatchQuery,
    Query,
    SearchResponse,
)
from repro.api.registry import get_method
from repro.eval.instrumentation import SearchInstrumentation
from repro.exceptions import (
    REASON_CROSS_SHARD,
    VertexNotFoundError,
)
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import connected_components
from repro.obs.tracing import span as obs_span
from repro.serving.stats import (
    LatencyHistogram,
    ServingStats,
    aggregate_counters,
    engine_payload,
    zero_engine_counters,
)


class ShardedBCCEngine:
    """Serve one labeled graph as connected-component shards.

    Parameters
    ----------
    graph:
        The graph to serve, or any object exposing it as ``.graph`` (e.g. a
        :class:`repro.datasets.base.DatasetBundle`) — same contract as
        :class:`BCCEngine`.
    config:
        Base :class:`SearchConfig` handed to every shard engine; per-query
        and per-call overrides ride through unchanged, so config precedence
        (call > query > batch > engine base) matches the monolithic engine.
    result_cache_size, result_cache_policy:
        Forwarded to each shard engine's LRU result cache; the admission
        policy object is shared across shards (policies are stateless or
        internally locked).
    store, store_key:
        A :class:`repro.store.SnapshotStore` (or a root path for one) to
        page shard engines from and persist them to; ``store_key`` is the
        served-graph name the per-shard snapshot files live under
        (defaults to ``"sharded"``; :class:`repro.serving.GraphDirectory`
        passes the directory name).
    max_resident_shards:
        Memory budget: at most this many shard engines stay resident at
        once (LRU; ``None`` = unbounded, the pre-store behavior).  Must be
        >= 1 — a zero budget could never serve any query.

    The partition (connected components + the vertex→shard routing table)
    is computed eagerly at construction — routing must work before any
    shard exists — but shard *engines* are created and prepared lazily on
    the first query routed to them.
    """

    def __init__(
        self,
        graph: Union[LabeledGraph, object],
        config: Optional[SearchConfig] = None,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        result_cache_policy: Optional[object] = None,
        store: Optional[object] = None,
        store_key: str = "sharded",
        max_resident_shards: Optional[int] = None,
    ) -> None:
        if not isinstance(graph, LabeledGraph):
            graph = getattr(graph, "graph", graph)
        if not isinstance(graph, LabeledGraph):
            raise TypeError(f"expected a LabeledGraph or bundle, got {type(graph)!r}")
        if max_resident_shards is not None and max_resident_shards < 1:
            raise ValueError("max_resident_shards must be >= 1 (or None)")
        self.graph: LabeledGraph = graph
        self.config: SearchConfig = config if config is not None else SearchConfig()
        self._result_cache_size = result_cache_size
        self._result_cache_policy = result_cache_policy
        if store is not None and not hasattr(store, "try_attach_shard"):
            # A root path was given; stand up a store over it.
            from repro.store import SnapshotStore

            store = SnapshotStore(store)
        self._store = store
        self._store_key = store_key
        self._max_resident_shards = max_resident_shards
        # Lock order (outermost first): partition -> shards; the counters
        # lock is a leaf, never held while acquiring another lock.  The
        # latency histogram carries its own internal lock.
        self._partition_lock = threading.Lock()
        self._shards_lock = threading.Lock()
        self._counters_lock = threading.Lock()
        # Lazy process-backend pool (shard-pinned workers); the pool lock
        # only guards the slot, shutdown happens outside every router lock.
        self._pool_lock = threading.Lock()
        self._process_pool: Optional[object] = None
        self._counters: Dict[str, int] = {
            "partitions": 0,
            "searches": 0,
            "cross_shard_queries": 0,
            "shard_engines_built": 0,
            "shard_attaches": 0,
            "shard_persists": 0,
            "shard_evictions": 0,
            "process_batches": 0,
            "process_tasks": 0,
            "process_fallbacks": 0,
        }
        self._latency = LatencyHistogram()
        self._components: List[Set[Vertex]] = []
        self._routing: Dict[Vertex, int] = {}
        # Insertion/access-ordered so the budget can evict least recently
        # *used* (not least recently built): every hit re-ranks its shard.
        self._shards: "OrderedDict[int, BCCEngine]" = OrderedDict()
        self._graph_version: int = -1
        self._partition()

    # ------------------------------------------------------------------
    # partitioning & routing
    # ------------------------------------------------------------------
    def _partition(self) -> None:
        """(Re)compute components, the routing table and empty shard slots.

        Runs under the partition lock; callers outside ``__init__`` go
        through :meth:`_check_version` so one graph mutation produces
        exactly one re-partition however many threads observe it.
        """
        stale_pool = None
        with self._partition_lock:
            version = self.graph.version()
            if version == self._graph_version:
                return
            components = connected_components(self.graph)
            routing: Dict[Vertex, int] = {}
            for shard_id, component in enumerate(components):
                for vertex in component:
                    routing[vertex] = shard_id
            with self._shards_lock:
                self._components = components
                self._routing = routing
                self._shards = OrderedDict()
            with self._pool_lock:
                stale_pool = self._process_pool
                self._process_pool = None
            self._graph_version = version
            self._count("partitions")
        if stale_pool is not None:
            # Worker processes hold the old frozen snapshot; joining them
            # can take a moment, so it happens outside the router locks.
            stale_pool.close()

    def _check_version(self) -> None:
        """Re-partition exactly once when the underlying graph mutated."""
        if self.graph.version() != self._graph_version:
            self._partition()

    def _count(self, name: str, amount: int = 1) -> None:
        with self._counters_lock:
            self._counters[name] += amount

    def shard_count(self) -> int:
        """Number of connected-component shards in the current partition."""
        self._check_version()
        return len(self._components)

    def shard_of(self, vertex: Vertex) -> int:
        """The shard id serving ``vertex`` (raises for unknown vertices)."""
        self._check_version()
        shard_id = self._routing.get(vertex)
        if shard_id is None:
            raise VertexNotFoundError(vertex)
        return shard_id

    def shards_built(self) -> List[int]:
        """Shard ids whose engine is currently resident.

        Without eviction this is exactly "shards someone queried"; under a
        ``max_resident_shards`` budget, evicted shards drop out of this
        list until a query pages them back in.
        """
        self._check_version()
        with self._shards_lock:
            return sorted(self._shards)

    def shard_engine(self, shard_id: int) -> BCCEngine:
        """The (lazily created, prepared) engine serving ``shard_id``.

        The double-checked fill under the shards lock mirrors the
        monolithic engine's fill-once caches: concurrent queries to a cold
        shard build its subgraph and engine exactly once.  With a store
        attached the fill *attaches* to the shard's persisted snapshot when
        one matches (no freeze, no peel) and persists the engine it built
        on a miss, so the next page-in — or the next process — attaches;
        either way the engine is prepared before any query runs.  When a
        ``max_resident_shards`` budget is set, filling a shard beyond the
        budget evicts the least recently used resident engine (in-flight
        queries on it finish unharmed; the next routed query pages it back).
        """
        self._check_version()
        if not 0 <= shard_id < len(self._components):
            raise IndexError(f"no shard {shard_id}")
        with self._shards_lock:
            engine = self._shards.get(shard_id)
            if engine is not None:
                self._shards.move_to_end(shard_id)
                return engine
        attached = built = persisted = False
        evicted = 0
        with obs_span("sharded.shard_engine", shard=shard_id), \
                self._shards_lock:
            engine = self._shards.get(shard_id)
            if engine is not None:
                self._shards.move_to_end(shard_id)
            else:
                subgraph = self.graph.induced_subgraph(
                    self._components[shard_id]
                )
                if self._store is not None:
                    engine = self._store.try_attach_shard(
                        self._store_key,
                        shard_id,
                        subgraph,
                        self.config,
                        result_cache_size=self._result_cache_size,
                        result_cache_policy=self._result_cache_policy,
                    )
                    attached = engine is not None
                if engine is None:
                    engine = BCCEngine(
                        subgraph,
                        self.config,
                        result_cache_size=self._result_cache_size,
                        result_cache_policy=self._result_cache_policy,
                    ).prepare()
                    built = True
                    if self._store is not None:
                        # Persisting pays this shard's one index build now
                        # so every later page-in (and every other process)
                        # attaches instead of re-peeling.
                        self._store.persist_shard(
                            self._store_key, shard_id, engine
                        )
                        persisted = True
                self._shards[shard_id] = engine
                self._shards.move_to_end(shard_id)
                if self._max_resident_shards is not None:
                    while len(self._shards) > self._max_resident_shards:
                        self._shards.popitem(last=False)
                        evicted += 1
        if built:
            self._count("shard_engines_built")
        if attached:
            self._count("shard_attaches")
        if persisted:
            self._count("shard_persists")
        if evicted:
            self._count("shard_evictions", evicted)
        return engine

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def _route(self, query: Query) -> Optional[int]:
        """The single shard serving ``query``, or ``None`` when it spans shards.

        Unknown query vertices raise :class:`VertexNotFoundError` exactly as
        the monolithic engine does (on an empty graph every vertex is
        unknown, so an empty :class:`ShardedBCCEngine` is serveable — every
        query just fails vertex validation).
        """
        shard_ids = set()
        for vertex in query.vertices:
            shard_id = self._routing.get(vertex)
            if shard_id is None:
                raise VertexNotFoundError(vertex)
            shard_ids.add(shard_id)
        if len(shard_ids) > 1:
            return None
        return shard_ids.pop()

    def _cross_shard_response(
        self, query: Query, method: str, elapsed: float
    ) -> SearchResponse:
        """The short-circuit answer for a query spanning components."""
        return SearchResponse(
            method=method,
            query=query.vertices,
            status=STATUS_EMPTY,
            reason=REASON_CROSS_SHARD,
            timings={
                "total_seconds": elapsed,
                "index_build_seconds": 0.0,
                "query_seconds": elapsed,
            },
        )

    def search(
        self,
        query: Query,
        *,
        config: Optional[SearchConfig] = None,
        instrumentation: Optional[SearchInstrumentation] = None,
        use_cache: bool = True,
    ) -> SearchResponse:
        """Serve one query from the shard that owns its vertices.

        Same surface and semantics as :meth:`BCCEngine.search`, plus
        routing: a query whose vertices span components short-circuits to
        ``status="empty"`` with ``reason=REASON_CROSS_SHARD`` — a normal
        answer, never an exception — because no connected community can
        contain vertices of different components.  The method name is still
        resolved first, so unknown methods raise exactly as the monolithic
        engine's would.

        Note the router validates *vertex existence and placement* only; a
        cross-shard query with a structural defect the method would have
        rejected (wrong arity, duplicate labels) is answered as cross-shard
        empty — the method never runs, so its validation never sees it.
        """
        start = time.perf_counter()
        with obs_span("sharded.search", method=query.method) as routed:
            self._check_version()
            spec = get_method(query.method)  # unknown-method parity: raises here
            shard_id = self._route(query)
            if shard_id is None:
                routed.annotate(cross_shard=True)
                self._count("searches")
                self._count("cross_shard_queries")
                elapsed = time.perf_counter() - start
                self._latency.observe(elapsed)
                return self._cross_shard_response(query, spec.name, elapsed)
            routed.annotate(shard=shard_id)
            engine = self.shard_engine(shard_id)
            response = engine.search(
                query,
                config=config,
                instrumentation=instrumentation,
                use_cache=use_cache,
            )
            self._count("searches")
            self._latency.observe(time.perf_counter() - start)
            return response

    def search_many(
        self,
        queries: Union[BatchQuery, Iterable[Query]],
        *,
        config: Optional[SearchConfig] = None,
        instrumentation: Optional[SearchInstrumentation] = None,
        on_error: str = "raise",
        max_workers: int = 1,
        use_cache: bool = True,
        backend: Optional[str] = None,
    ) -> List[SearchResponse]:
        """Scatter-gather a batch across shards, preserving batch semantics.

        Responses are position-aligned with the input whatever
        ``max_workers``; ``on_error="return"`` converts per-query failures
        (including routing failures — a query naming an unknown vertex)
        into position-aligned ``status="error"`` rows exactly as
        :meth:`BCCEngine.search_many` does, and batch-structure errors
        always raise.  Shards the batch never routes to are never built —
        a batch touching only shard A leaves shard B at zero cost.

        ``max_workers > 1`` serves queries from one thread pool spanning
        shards; each shard engine's fill-once caches keep preparation
        exactly-once per shard under contention.

        ``backend="process"`` (or an ``"auto"`` pick on a compute-bound
        shape, same heuristic as the monolithic engine) ships the batch to
        ``max_workers`` worker processes instead.  Routing still happens
        router-side: cross-shard rows short-circuit in the parent without
        touching any worker, and every in-shard row is *pinned* to worker
        ``shard_id % workers`` so one shard's engine is built by exactly
        one worker process however large the batch.  Unavailable shared
        memory degrades to the threaded path with a one-time warning and a
        ``"process_fallbacks"`` counter tick.
        """
        if isinstance(queries, BatchQuery):
            batch = queries
        else:
            batch = BatchQuery(queries=tuple(queries))
        resolved_backend = backend
        if resolved_backend is None:
            base = config if config is not None else self.config
            resolved_backend = base.backend
        use_process = resolved_backend == "process" or (
            resolved_backend == "auto"
            and max_workers > 1
            and len(batch.queries) > 1
            and instrumentation is None
            and self.graph.num_edges() >= PROCESS_AUTO_MIN_EDGES
        )
        if use_process:
            responses = self._try_serve_process(
                batch,
                config=config,
                instrumentation=instrumentation,
                on_error=on_error,
                max_workers=max_workers,
                use_cache=use_cache,
            )
            if responses is not None:
                return responses
        # One shared implementation with the monolithic engine, so batch
        # semantics can never diverge.  No ``prepare`` hook: laziness is
        # the point — only the shards the batch routes to get built.
        return serve_batch(
            self,
            batch,
            config=config,
            instrumentation=instrumentation,
            on_error=on_error,
            max_workers=max_workers,
            use_cache=use_cache,
        )

    # ------------------------------------------------------------------
    # process batch transport
    # ------------------------------------------------------------------
    @staticmethod
    def _row_config(
        config: Optional[SearchConfig],
        query: Query,
        batch_config: Optional[SearchConfig],
    ) -> Optional[SearchConfig]:
        """Call > query > batch precedence; ``None`` = worker engine base."""
        if config is not None:
            return config
        if query.config is not None:
            return query.config
        return batch_config

    def _try_serve_process(
        self,
        batch: BatchQuery,
        *,
        config: Optional[SearchConfig],
        instrumentation: Optional[SearchInstrumentation],
        on_error: str,
        max_workers: int,
        use_cache: bool,
    ) -> Optional[List[SearchResponse]]:
        """Serve ``batch`` through shard-pinned workers, or ``None`` to fall back."""
        from repro.api.engine import _warn_process_fallback_once
        from repro.parallel.shm import ProcessBackendUnavailable

        if on_error not in ("raise", "return"):
            # Let serve_batch raise its canonical validation error.
            return None
        if instrumentation is not None:
            self._count("process_fallbacks")
            _warn_process_fallback_once(
                "caller-supplied instrumentation cannot cross the process "
                "boundary"
            )
            return None
        try:
            pool = self._ensure_process_pool(max(1, max_workers))
        except ProcessBackendUnavailable as exc:
            self._count("process_fallbacks")
            _warn_process_fallback_once(str(exc))
            return None
        # Route every row in the parent: cross-shard answers short-circuit
        # here (no worker ever sees them), routing failures follow the
        # on_error policy, and in-shard rows carry their pin.
        responses: List[Optional[SearchResponse]] = [None] * len(batch.queries)
        remote: List[tuple] = []  # (position, (query, config, pin))
        for position, query in enumerate(batch.queries):
            start = time.perf_counter()
            try:
                spec = get_method(query.method)
                shard_id = self._route(query)
            except Exception as exc:
                if on_error == "raise" or not is_caller_error(query, exc):
                    raise
                responses[position] = error_response_for(query, exc)
                continue
            if shard_id is None:
                self._count("searches")
                self._count("cross_shard_queries")
                elapsed = time.perf_counter() - start
                self._latency.observe(elapsed)
                responses[position] = self._cross_shard_response(
                    query, spec.name, elapsed
                )
                continue
            row_config = self._row_config(config, query, batch.config)
            remote.append((position, (query, row_config, shard_id % pool.workers)))
        if remote:
            rows = pool.run_batch(
                [spec for _, spec in remote],
                on_error=on_error,
                use_cache=use_cache,
            )
            for (position, _), response in zip(remote, rows):
                responses[position] = response
                if response.status != "error":
                    self._count("searches")
        self._count("process_batches")
        self._count("process_tasks", len(remote))
        return list(responses)  # type: ignore[arg-type]

    def _ensure_process_pool(self, workers: int):
        """The live shard-pinned pool, created or grown under the pool lock."""
        from repro.parallel.pool import ProcessWorkerPool

        self._check_version()
        stale = None
        with self._pool_lock:
            current = self._process_pool
            if current is not None and current.workers >= workers:
                return current
            pool = ProcessWorkerPool(
                self.graph,
                self.config,
                workers,
                sharded=True,
                result_cache_size=self._result_cache_size,
            )
            try:
                pool.start()
            except Exception:
                pool.close()
                raise
            self._process_pool = pool
            stale = current
        if stale is not None:
            stale.close()
        return pool

    def process_pool_stats(self) -> Optional[Dict[str, object]]:
        """The worker pool's stats block, or ``None`` when no pool is live."""
        with self._pool_lock:
            pool = self._process_pool
        return None if pool is None else pool.stats()

    def close_process_pool(self) -> None:
        """Shut the worker pool down (idempotent; a later batch respawns it)."""
        with self._pool_lock:
            pool = self._process_pool
            self._process_pool = None
        if pool is not None:
            pool.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def explain(
        self, query: Query, *, config: Optional[SearchConfig] = None
    ) -> Dict[str, object]:
        """Describe routing plus the owning shard's engine-level explain.

        Cross-shard queries are explained (``"cross_shard": True`` with the
        shard each vertex routes to) without building any shard engine.
        """
        self._check_version()
        spec = get_method(query.method)
        placements = {}
        for vertex in query.vertices:
            shard_id = self._routing.get(vertex)
            if shard_id is None:
                raise VertexNotFoundError(vertex)
            placements[vertex] = shard_id
        shard_ids = set(placements.values())
        info: Dict[str, object] = {
            "method": spec.name,
            "query": tuple(query.vertices),
            "routing": {
                "shards": len(self._components),
                "placements": {str(v): s for v, s in placements.items()},
                "cross_shard": len(shard_ids) > 1,
            },
        }
        if len(shard_ids) == 1:
            shard_id = shard_ids.pop()
            info["shard"] = shard_id
            info["engine"] = self.shard_engine(shard_id).explain(
                query, config=config
            )
        return info

    def counters_snapshot(self) -> Dict[str, int]:
        """A consistent copy of the serving-layer (router) counters."""
        with self._counters_lock:
            return dict(self._counters)

    def stats(self, name: str = "sharded-engine") -> ServingStats:
        """The stats-endpoint snapshot: router + per-shard engine stats.

        Never-built shards appear with explicitly all-zero engine counters
        — the machine-checkable laziness proof that untouched components
        performed no freezes, no index builds, no searches.
        """
        self._check_version()
        with self._shards_lock:
            components = list(self._components)
            shards = dict(self._shards)
        blocks: List[Dict[str, object]] = []
        for shard_id, component in enumerate(components):
            engine = shards.get(shard_id)
            if engine is None:
                blocks.append(
                    {
                        "shard": shard_id,
                        "vertices": len(component),
                        "built": False,
                        "prepared": False,
                        "index_built": False,
                        "counters": zero_engine_counters(),
                        "cache": {"entries": 0, "hits": 0, "misses": 0},
                    }
                )
            else:
                payload = engine_payload(engine)
                blocks.append(
                    {
                        "shard": shard_id,
                        "vertices": payload["vertices"],
                        "edges": payload["edges"],
                        "built": True,
                        "prepared": payload["prepared"],
                        "index_built": payload["index_built"],
                        "counters": payload["counters"],
                        "cache": payload["cache"],
                    }
                )
        engine_totals = aggregate_counters(
            [block["counters"] for block in blocks]  # type: ignore[misc]
        )
        cache_totals = {
            "hits": engine_totals.get("result_cache_hits", 0),
            "misses": engine_totals.get("result_cache_misses", 0),
            "expirations": engine_totals.get("result_cache_expirations", 0),
            "entries": sum(
                int(block["cache"].get("entries", 0)) for block in blocks  # type: ignore[union-attr]
            ),
        }
        lookups = cache_totals["hits"] + cache_totals["misses"]
        cache_totals["hit_rate"] = (
            cache_totals["hits"] / lookups if lookups else None
        )
        counters = dict(engine_totals)
        # Router counters win the "searches" slot: they count every served
        # query including cross-shard short-circuits no shard ever saw.
        router = self.counters_snapshot()
        counters.update(router)
        store_block: Optional[Dict[str, object]] = None
        if self._store is not None or self._max_resident_shards is not None:
            store_block = {
                "enabled": self._store is not None,
                "key": self._store_key if self._store is not None else None,
                "max_resident_shards": self._max_resident_shards,
                "resident_shards": sorted(shards),
                "attaches": router["shard_attaches"],
                "persists": router["shard_persists"],
                "evictions": router["shard_evictions"],
            }
        return ServingStats(
            name=name,
            kind="sharded",
            graph={
                "vertices": self.graph.num_vertices(),
                "edges": self.graph.num_edges(),
                "version": self.graph.version(),
                "components": len(components),
            },
            counters=counters,
            cache=cache_totals,
            latency=self._latency.snapshot(),
            shards=tuple(blocks),
            store=store_block,
            workers=self.process_pool_stats(),
        )

    def observe_latency(self, seconds: float) -> None:
        """Feed the latency histogram (for callers timing at their edge)."""
        self._latency.observe(seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._shards_lock:
            built = len(self._shards)
        return (
            f"ShardedBCCEngine(|V|={self.graph.num_vertices()}, "
            f"shards={len(self._components)}, "
            f"built={built}, "
            f"searches={self.counters_snapshot()['searches']})"
        )
