"""Common containers for the synthetic evaluation datasets.

Every generator in :mod:`repro.datasets` returns a :class:`DatasetBundle`,
which packages the labeled graph together with its ground-truth communities
(when the dataset has them), a sensible default query pair, and free-form
metadata used by the experiment harness (e.g. which communities are
cross-group project teams).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import DatasetError
from repro.graph.labeled_graph import LabeledGraph, Vertex


@dataclass
class GroundTruthCommunity:
    """A ground-truth community: member vertices plus the labels it spans."""

    members: Set[Vertex]
    labels: Tuple = ()
    name: str = ""

    def __post_init__(self) -> None:
        self.members = set(self.members)

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self.members


@dataclass
class DatasetBundle:
    """A generated dataset: graph, ground truth, default query and metadata."""

    name: str
    graph: LabeledGraph
    communities: List[GroundTruthCommunity] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)
    seed: Optional[int] = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def default_query(self) -> Tuple[Vertex, Vertex]:
        """Return a representative cross-label query pair.

        Preference order: the pair stored by the generator in
        ``metadata['default_query']``; otherwise the endpoints of the first
        cross edge inside the first multi-label ground-truth community;
        otherwise any cross edge of the graph.
        """
        stored = self.metadata.get("default_query")
        if stored is not None:
            return tuple(stored)  # type: ignore[return-value]
        for community in self.communities:
            if len(community.labels) >= 2:
                pair = self._cross_pair_within(community.members)
                if pair is not None:
                    return pair
        for u, v in self.graph.cross_edges():
            return (u, v)
        raise DatasetError(f"dataset {self.name!r} has no cross edge to query")

    def _cross_pair_within(self, members: Set[Vertex]) -> Optional[Tuple[Vertex, Vertex]]:
        for u in members:
            if u not in self.graph:
                continue
            for w in self.graph.neighbors(u):
                if w in members and self.graph.label(w) != self.graph.label(u):
                    return (u, w)
        return None

    def random_cross_query(
        self, rng: random.Random, community_index: Optional[int] = None
    ) -> Tuple[Vertex, Vertex]:
        """Return a random query pair with different labels.

        When ``community_index`` is given, both endpoints are drawn from that
        ground-truth community (the evaluation protocol queries pairs inside
        ground-truth cross communities).
        """
        if community_index is not None:
            members = list(self.communities[community_index].members)
            members = [v for v in members if v in self.graph]
            rng.shuffle(members)
            for u in members:
                for w in members:
                    if (
                        w != u
                        and self.graph.label(u) != self.graph.label(w)
                    ):
                        return (u, w)
        cross = list(self.graph.cross_edges())
        if not cross:
            raise DatasetError(f"dataset {self.name!r} has no cross edges")
        return cross[rng.randrange(len(cross))]

    # ------------------------------------------------------------------
    # ground-truth helpers
    # ------------------------------------------------------------------
    def community_of(self, vertex: Vertex) -> Optional[GroundTruthCommunity]:
        """Return the first ground-truth community containing ``vertex``."""
        for community in self.communities:
            if vertex in community:
                return community
        return None

    def community_for_query(
        self, q_left: Vertex, q_right: Vertex
    ) -> Optional[GroundTruthCommunity]:
        """Return a ground-truth community containing both query vertices."""
        for community in self.communities:
            if q_left in community and q_right in community:
                return community
        return None

    def cross_group_communities(self) -> List[GroundTruthCommunity]:
        """Return communities spanning at least two labels."""
        result = []
        for community in self.communities:
            labels = {self.graph.label(v) for v in community.members if v in self.graph}
            if len(labels) >= 2:
                result.append(community)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatasetBundle({self.name!r}, |V|={self.graph.num_vertices()}, "
            f"|E|={self.graph.num_edges()}, communities={len(self.communities)})"
        )
