"""Synthetic stand-ins for every evaluation and case-study dataset of the paper."""

from repro.datasets.academic import RESEARCH_FIELDS, generate_academic_network
from repro.datasets.baidu import generate_baidu_network
from repro.datasets.base import DatasetBundle, GroundTruthCommunity
from repro.datasets.fiction import generate_fiction_network
from repro.datasets.flight import generate_flight_network
from repro.datasets.labeling import (
    apply_multi_label_protocol,
    apply_two_label_protocol,
)
from repro.datasets.registry import (
    CASE_STUDY_NETWORKS,
    EVALUATION_NETWORKS,
    MULTILABEL_NETWORKS,
    dataset_names,
    load_dataset,
)
from repro.datasets.snap_like import generate_snap_like, snap_preset_names
from repro.datasets.trade import generate_trade_network

__all__ = [
    "CASE_STUDY_NETWORKS",
    "DatasetBundle",
    "EVALUATION_NETWORKS",
    "GroundTruthCommunity",
    "MULTILABEL_NETWORKS",
    "RESEARCH_FIELDS",
    "apply_multi_label_protocol",
    "apply_two_label_protocol",
    "dataset_names",
    "generate_academic_network",
    "generate_baidu_network",
    "generate_fiction_network",
    "generate_flight_network",
    "generate_snap_like",
    "generate_trade_network",
    "load_dataset",
    "snap_preset_names",
]
