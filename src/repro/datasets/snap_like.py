"""Scaled-down stand-ins for the SNAP evaluation graphs.

The paper uses five SNAP graphs with ground-truth communities (Amazon, DBLP,
Youtube, LiveJournal, Orkut), adds synthetic two-sided labels to each
ground-truth community, injects 10% intra-community cross edges and 10%
global noise cross edges (Section 8, "Datasets").  The raw graphs are not
available offline and are far too large for pure Python, so
:func:`generate_snap_like` builds a planted-partition graph whose community
count, community size and density are tuned per dataset name to echo each
graph's character (Amazon: many small sparse communities; Orkut: fewer, much
denser and larger communities), then applies the paper's own labeling
protocol (:mod:`repro.datasets.labeling`).

The point of the substitution (see DESIGN.md) is that the *relative*
behaviour of the community-search methods — which the figures compare — is
driven by community density, size and cross-edge structure, all of which are
reproduced here with known ground truth.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.datasets.base import DatasetBundle
from repro.datasets.labeling import apply_multi_label_protocol, apply_two_label_protocol
from repro.exceptions import DatasetError
from repro.graph.generators import RandomLike, _rng, planted_partition_graph

_SNAP_PRESETS: Dict[str, Dict[str, float]] = {
    # name: (communities, community size, p_in, p_out)
    "amazon": {"communities": 24, "size": 12, "p_in": 0.55, "p_out": 0.002},
    "dblp": {"communities": 20, "size": 18, "p_in": 0.50, "p_out": 0.003},
    "youtube": {"communities": 18, "size": 20, "p_in": 0.30, "p_out": 0.004},
    "livejournal": {"communities": 16, "size": 28, "p_in": 0.45, "p_out": 0.004},
    "orkut": {"communities": 12, "size": 40, "p_in": 0.50, "p_out": 0.005},
    "tiny": {"communities": 4, "size": 10, "p_in": 0.6, "p_out": 0.01},
}


def snap_preset_names() -> list:
    """Return the available SNAP-like preset names (excluding the test preset)."""
    return [name for name in _SNAP_PRESETS if name != "tiny"]


def generate_snap_like(
    name: str = "dblp",
    seed: RandomLike = 0,
    num_labels: int = 2,
    communities: Optional[int] = None,
    community_size: Optional[int] = None,
    cross_fraction: float = 0.10,
    noise_fraction: float = 0.10,
) -> DatasetBundle:
    """Generate a SNAP-like labeled graph with ground-truth communities.

    Parameters
    ----------
    name:
        One of ``amazon``, ``dblp``, ``youtube``, ``livejournal``, ``orkut``
        (or ``tiny`` for tests); controls the community count/size/density
        profile.
    seed:
        Random seed.
    num_labels:
        2 reproduces the paper's default labeling protocol; larger values
        produce the ``-M`` multi-label variants of Exp-10 (six labels in the
        paper).
    communities, community_size:
        Optional overrides of the preset.
    cross_fraction, noise_fraction:
        The protocol's 10% intra-community cross edges and 10% global noise.
    """
    key = name.lower()
    if key.endswith("-m"):
        key = key[:-2]
        if num_labels == 2:
            num_labels = 6
    if key not in _SNAP_PRESETS:
        raise DatasetError(f"unknown SNAP-like preset {name!r}; choose from {sorted(_SNAP_PRESETS)}")
    preset = dict(_SNAP_PRESETS[key])
    if communities is not None:
        preset["communities"] = communities
    if community_size is not None:
        preset["size"] = community_size

    rng = _rng(seed)
    sizes = []
    base = int(preset["size"])
    for _ in range(int(preset["communities"])):
        # Vary sizes by +-30% so communities are not all identical.
        jitter = rng.randint(-base // 3, base // 3)
        sizes.append(max(6, base + jitter))
    graph, raw_communities = planted_partition_graph(
        sizes, preset["p_in"], preset["p_out"], seed=rng
    )
    if num_labels == 2:
        ground_truth = apply_two_label_protocol(
            graph,
            raw_communities,
            cross_fraction=cross_fraction,
            noise_fraction=noise_fraction,
            seed=rng,
        )
        bundle_name = key
    else:
        labels = [f"L{i}" for i in range(num_labels)]
        ground_truth = apply_multi_label_protocol(
            graph,
            raw_communities,
            labels,
            cross_fraction=cross_fraction,
            noise_fraction=noise_fraction,
            seed=rng,
        )
        bundle_name = f"{key}-m"
    bundle = DatasetBundle(
        name=bundle_name,
        graph=graph,
        communities=ground_truth,
        metadata={"preset": key, "num_labels": num_labels},
        seed=seed if isinstance(seed, int) else None,
    )
    return bundle
