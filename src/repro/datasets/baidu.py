"""Synthetic stand-in for the Baidu-1 / Baidu-2 IT professional networks.

The paper's proprietary datasets are communication graphs between employees;
vertices are labeled by department, and the ground-truth communities are
joint projects between two (or more) department teams.  The generator plants
exactly that structure:

* a configurable number of departments (labels), each containing several
  dense intra-department teams (each team a ``k``-core-like block);
* ground-truth *cross-group project communities*: pairs (or, for the
  multi-label experiments, tuples) of teams from different departments wired
  together with cross edges, including a planted leader pair whose cross
  connections form several butterflies;
* background noise: random intra-department edges and random cross edges
  outside any project.

``generate_baidu_network(scale="baidu-1")`` and ``scale="baidu-2"`` mimic the
relative sizes/densities of the two datasets (Baidu-2 being larger and much
denser).
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.base import DatasetBundle, GroundTruthCommunity
from repro.exceptions import DatasetError
from repro.graph.generators import RandomLike, _rng, ensure_butterfly
from repro.graph.labeled_graph import LabeledGraph, Vertex

_SCALE_PRESETS: Dict[str, Dict[str, int]] = {
    "baidu-1": {
        "departments": 6,
        "teams_per_department": 3,
        "team_size": 14,
        "projects": 6,
        "intra_team_degree": 5,
        "project_cross_edges": 30,
    },
    "baidu-2": {
        "departments": 8,
        "teams_per_department": 3,
        "team_size": 18,
        "projects": 10,
        "intra_team_degree": 7,
        "project_cross_edges": 60,
    },
    "tiny": {
        "departments": 3,
        "teams_per_department": 2,
        "team_size": 8,
        "projects": 3,
        "intra_team_degree": 3,
        "project_cross_edges": 12,
    },
}


def _build_team(
    graph: LabeledGraph,
    vertices: Sequence[Vertex],
    label: str,
    degree: int,
    rng: random.Random,
) -> None:
    """Wire a dense intra-department team with minimum degree ``degree``."""
    n = len(vertices)
    for v in vertices:
        graph.add_vertex(v, label=label)
    half = (degree + 1) // 2
    for i in range(n):
        for offset in range(1, half + 1):
            graph.add_edge(vertices[i], vertices[(i + offset) % n])
    # Random chords make teams denser and their coreness less uniform.
    extra = max(1, n // 2)
    for _ in range(extra):
        u, w = rng.sample(list(vertices), 2)
        graph.add_edge(u, w)


def generate_baidu_network(
    scale: str = "baidu-1",
    seed: RandomLike = 0,
    departments: Optional[int] = None,
    teams_per_department: Optional[int] = None,
    team_size: Optional[int] = None,
    projects: Optional[int] = None,
    project_labels: int = 2,
) -> DatasetBundle:
    """Generate an IT-professional-network stand-in with cross-team projects.

    Parameters
    ----------
    scale:
        One of ``"baidu-1"``, ``"baidu-2"`` or ``"tiny"`` — presets matching
        the relative size/density of the paper's two proprietary graphs plus
        a fast preset for tests.
    seed:
        Random seed (or an existing :class:`random.Random`).
    departments, teams_per_department, team_size, projects:
        Optional overrides of the preset values.
    project_labels:
        Number of departments participating in each ground-truth project
        (2 reproduces the BCC setting; larger values create the multi-label
        ground truth used by Exp-9/Exp-10).

    Returns
    -------
    DatasetBundle
        Graph, ground-truth project communities and a default query pair
        taken from the first project's leader pair.
    """
    if scale not in _SCALE_PRESETS:
        raise DatasetError(f"unknown scale {scale!r}; choose from {sorted(_SCALE_PRESETS)}")
    preset = dict(_SCALE_PRESETS[scale])
    if departments is not None:
        preset["departments"] = departments
    if teams_per_department is not None:
        preset["teams_per_department"] = teams_per_department
    if team_size is not None:
        preset["team_size"] = team_size
    if projects is not None:
        preset["projects"] = projects
    if project_labels < 2:
        raise DatasetError("project_labels must be >= 2")
    if project_labels > preset["departments"]:
        raise DatasetError("project_labels cannot exceed the number of departments")

    rng = _rng(seed)
    graph = LabeledGraph()
    labels = [f"dept-{d}" for d in range(preset["departments"])]

    # Build teams: teams[label] is a list of vertex lists.
    teams: Dict[str, List[List[Vertex]]] = {label: [] for label in labels}
    counter = itertools.count()
    for label in labels:
        for _ in range(preset["teams_per_department"]):
            members = [f"e{next(counter)}" for _ in range(preset["team_size"])]
            _build_team(graph, members, label, preset["intra_team_degree"], rng)
            teams[label].append(members)

    # Sparse intra-department edges between teams of the same department.
    for label in labels:
        department_teams = teams[label]
        for team_a, team_b in itertools.combinations(department_teams, 2):
            for _ in range(max(1, preset["team_size"] // 4)):
                graph.add_edge(rng.choice(team_a), rng.choice(team_b))

    # Ground-truth cross-group projects.
    communities: List[GroundTruthCommunity] = []
    default_query: Optional[Tuple[Vertex, Vertex]] = None
    for project_index in range(preset["projects"]):
        chosen_labels = rng.sample(labels, project_labels)
        chosen_teams = [rng.choice(teams[label]) for label in chosen_labels]
        members: set = set()
        for team in chosen_teams:
            members.update(team)
        # Leaders: the first two members of each participating team.
        leaders = [team[0] for team in chosen_teams]
        deputies = [team[1] for team in chosen_teams]
        # Wire butterflies between every consecutive pair of teams so each
        # label pair in the project has a leader pair with chi >= b.
        for (team_a, leader_a, deputy_a), (team_b, leader_b, deputy_b) in zip(
            zip(chosen_teams, leaders, deputies),
            list(zip(chosen_teams, leaders, deputies))[1:]
            + [list(zip(chosen_teams, leaders, deputies))[0]],
        ):
            if team_a is team_b:
                continue
            ensure_butterfly(graph, (leader_a, deputy_a), (leader_b, deputy_b))
            # Additional random cross edges between the two teams.
            for _ in range(preset["project_cross_edges"] // max(1, project_labels)):
                graph.add_edge(rng.choice(team_a), rng.choice(team_b))
        communities.append(
            GroundTruthCommunity(
                members=members,
                labels=tuple(chosen_labels),
                name=f"project-{project_index}",
            )
        )
        if default_query is None:
            default_query = (leaders[0], leaders[1])

    # Global noise: random cross-department edges outside projects.
    all_vertices = list(graph.vertices())
    noise_edges = graph.num_edges() // 20
    for _ in range(noise_edges):
        u, w = rng.sample(all_vertices, 2)
        if graph.label(u) != graph.label(w):
            graph.add_edge(u, w)

    metadata: Dict[str, object] = {
        "scale": scale,
        "labels": labels,
        "default_query": default_query,
        "project_labels": project_labels,
    }
    return DatasetBundle(
        name=scale if project_labels == 2 else f"{scale}-m{project_labels}",
        graph=graph,
        communities=communities,
        metadata=metadata,
        seed=seed if isinstance(seed, int) else None,
    )
