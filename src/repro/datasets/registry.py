"""Dataset registry: look up every evaluation network by its paper name.

The experiment harness and the benchmark suite iterate over "the seven
networks of Table 3" and "the case-study networks"; this registry maps the
paper's dataset names to the corresponding synthetic generator with sensible
default arguments, so a benchmark can simply do::

    bundle = load_dataset("dblp", seed=7)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.datasets.academic import generate_academic_network
from repro.datasets.baidu import generate_baidu_network
from repro.datasets.base import DatasetBundle
from repro.datasets.fiction import generate_fiction_network
from repro.datasets.flight import generate_flight_network
from repro.datasets.snap_like import generate_snap_like
from repro.datasets.trade import generate_trade_network
from repro.exceptions import DatasetError

GeneratorFn = Callable[..., DatasetBundle]

# The seven evaluation networks of Table 3 (Exp-1 .. Exp-5).
EVALUATION_NETWORKS: List[str] = [
    "baidu-1",
    "baidu-2",
    "amazon",
    "dblp",
    "youtube",
    "livejournal",
    "orkut",
]

# The multi-label evaluation networks of Exp-10.
MULTILABEL_NETWORKS: List[str] = [
    "baidu-1",
    "baidu-2",
    "dblp-m",
    "livejournal-m",
    "orkut-m",
]

# The four case-study networks (Exp-6 .. Exp-8, Exp-11).
CASE_STUDY_NETWORKS: List[str] = ["flight", "trade", "fiction", "academic"]


def _registry() -> Dict[str, GeneratorFn]:
    registry: Dict[str, GeneratorFn] = {
        "baidu-1": lambda seed=0, **kw: generate_baidu_network("baidu-1", seed=seed, **kw),
        "baidu-2": lambda seed=0, **kw: generate_baidu_network("baidu-2", seed=seed, **kw),
        "baidu-tiny": lambda seed=0, **kw: generate_baidu_network("tiny", seed=seed, **kw),
        "flight": lambda seed=0, **kw: generate_flight_network(seed=seed, **kw),
        "trade": lambda seed=0, **kw: generate_trade_network(seed=seed, **kw),
        "fiction": lambda seed=0, **kw: generate_fiction_network(seed=seed, **kw),
        "academic": lambda seed=0, **kw: generate_academic_network(seed=seed, **kw),
    }
    for snap_name in ("amazon", "dblp", "youtube", "livejournal", "orkut", "tiny"):
        registry[snap_name] = (
            lambda seed=0, _n=snap_name, **kw: generate_snap_like(_n, seed=seed, **kw)
        )
        registry[f"{snap_name}-m"] = (
            lambda seed=0, _n=snap_name, **kw: generate_snap_like(
                _n, seed=seed, num_labels=kw.pop("num_labels", 6), **kw
            )
        )
    return registry


_REGISTRY = _registry()


def dataset_names() -> List[str]:
    """Return every registered dataset name."""
    return sorted(_REGISTRY)


def load_dataset(name: str, seed: int = 0, **kwargs) -> DatasetBundle:
    """Generate the dataset registered under ``name``.

    Parameters
    ----------
    name:
        A paper dataset name (see :data:`EVALUATION_NETWORKS`,
        :data:`MULTILABEL_NETWORKS`, :data:`CASE_STUDY_NETWORKS`) or any other
        registered preset (e.g. ``"tiny"`` / ``"baidu-tiny"`` for tests).
    seed:
        Random seed forwarded to the generator.
    kwargs:
        Extra generator-specific arguments (e.g. ``num_labels`` for the
        SNAP-like generators).
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise DatasetError(f"unknown dataset {name!r}; known: {dataset_names()}")
    return _REGISTRY[key](seed=seed, **kwargs)
