"""Synthetic stand-in for the Harry Potter fiction network (Exp-8).

The paper's fiction graph is a 2-labeled character network: each character is
labeled by camp (justice or evil); same-camp edges are family/ally relations
and cross-camp edges are hostilities.  The case study queries
Q = {"Ron Weasley", "Draco Malfoy"} and expects a BCC made of Ron's extended
family/ally group (including Harry, Hermione, the Weasley family and
Dumbledore), Draco's group (including Lord Voldemort, Lucius Malfoy, Bellatrix
Lestrange, Crabbe and Goyle), with the main hero/villain figures providing
the cross-camp butterflies.

The generator hard-codes that character structure (65 vertices in the
original dataset; the core cast reproduced here drives the case study) and
adds a configurable number of minor characters per camp so the graph has the
same order of magnitude as the original.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List

from repro.datasets.base import DatasetBundle, GroundTruthCommunity
from repro.graph.generators import RandomLike, _rng, ensure_butterfly
from repro.graph.labeled_graph import LabeledGraph

_JUSTICE_CORE = [
    "Harry Potter",
    "Ron Weasley",
    "Hermione Granger",
    "Ginny Weasley",
    "Fred Weasley",
    "George Weasley",
    "Bill Weasley",
    "Charlie Weasley",
    "Molly Weasley",
    "Arthur Weasley",
    "Albus Dumbledore",
    "Sirius Black",
    "Remus Lupin",
    "Neville Longbottom",
    "Luna Lovegood",
]

_EVIL_CORE = [
    "Draco Malfoy",
    "Lucius Malfoy",
    "Narcissa Malfoy",
    "Lord Voldemort",
    "Bellatrix Lestrange",
    "Vincent Crabbe",
    "Gregory Goyle",
    "Vincent Crabbe Sr.",
    "Severus Snape",
    "Peter Pettigrew",
    "Dolores Umbridge",
]


def generate_fiction_network(
    seed: RandomLike = 0, minor_characters_per_camp: int = 12
) -> DatasetBundle:
    """Generate the fiction-network stand-in used by the Exp-8 case study."""
    rng = _rng(seed)
    graph = LabeledGraph()

    for name in _JUSTICE_CORE:
        graph.add_vertex(name, label="justice")
    for name in _EVIL_CORE:
        graph.add_vertex(name, label="evil")

    # Justice camp: the Weasley family clique, the trio, and the Order.
    weasleys = [n for n in _JUSTICE_CORE if "Weasley" in n]
    for a, b in itertools.combinations(weasleys, 2):
        graph.add_edge(a, b)
    trio = ["Harry Potter", "Ron Weasley", "Hermione Granger"]
    for a, b in itertools.combinations(trio, 2):
        graph.add_edge(a, b)
    for member in ("Harry Potter", "Hermione Granger"):
        for weasley in weasleys:
            graph.add_edge(member, weasley)
    order = ["Albus Dumbledore", "Sirius Black", "Remus Lupin"]
    for a, b in itertools.combinations(order, 2):
        graph.add_edge(a, b)
    for mentor in order:
        for pupil in trio + ["Ginny Weasley", "Arthur Weasley", "Molly Weasley"]:
            graph.add_edge(mentor, pupil)
    for friend in ("Neville Longbottom", "Luna Lovegood"):
        for other in trio + ["Ginny Weasley"]:
            graph.add_edge(friend, other)

    # Evil camp: the Malfoy family, Voldemort's inner circle, Draco's cronies.
    malfoys = ["Draco Malfoy", "Lucius Malfoy", "Narcissa Malfoy"]
    for a, b in itertools.combinations(malfoys, 2):
        graph.add_edge(a, b)
    inner_circle = [
        "Lord Voldemort",
        "Bellatrix Lestrange",
        "Lucius Malfoy",
        "Severus Snape",
        "Peter Pettigrew",
    ]
    for a, b in itertools.combinations(inner_circle, 2):
        graph.add_edge(a, b)
    cronies = ["Vincent Crabbe", "Gregory Goyle", "Vincent Crabbe Sr."]
    for crony in cronies:
        graph.add_edge(crony, "Draco Malfoy")
        graph.add_edge(crony, "Lucius Malfoy")
    for a, b in itertools.combinations(cronies, 2):
        graph.add_edge(a, b)
    graph.add_edge("Dolores Umbridge", "Lucius Malfoy")
    graph.add_edge("Dolores Umbridge", "Draco Malfoy")
    graph.add_edge("Lord Voldemort", "Draco Malfoy")
    graph.add_edge("Narcissa Malfoy", "Bellatrix Lestrange")

    # Cross-camp hostilities: the hero/villain pairs form butterflies.
    ensure_butterfly(graph, ("Harry Potter", "Ron Weasley"), ("Draco Malfoy", "Lord Voldemort"))
    ensure_butterfly(graph, ("Harry Potter", "Hermione Granger"), ("Draco Malfoy", "Lucius Malfoy"))
    ensure_butterfly(
        graph, ("Harry Potter", "Ginny Weasley"), ("Lord Voldemort", "Bellatrix Lestrange")
    )
    hostilities = [
        ("Ron Weasley", "Vincent Crabbe"),
        ("Ron Weasley", "Gregory Goyle"),
        ("Hermione Granger", "Gregory Goyle"),
        ("Hermione Granger", "Vincent Crabbe"),
        ("Hermione Granger", "Bellatrix Lestrange"),
        ("Molly Weasley", "Bellatrix Lestrange"),
        ("Albus Dumbledore", "Lord Voldemort"),
        ("Albus Dumbledore", "Severus Snape"),
        ("Sirius Black", "Bellatrix Lestrange"),
        ("Sirius Black", "Peter Pettigrew"),
        ("Remus Lupin", "Peter Pettigrew"),
        ("Neville Longbottom", "Bellatrix Lestrange"),
        ("Arthur Weasley", "Lucius Malfoy"),
        ("Fred Weasley", "Dolores Umbridge"),
        ("George Weasley", "Dolores Umbridge"),
    ]
    for a, b in hostilities:
        graph.add_edge(a, b)

    # Minor characters: sparse attachments within each camp.
    for camp, core in (("justice", _JUSTICE_CORE), ("evil", _EVIL_CORE)):
        for index in range(minor_characters_per_camp):
            name = f"{camp}-minor-{index}"
            graph.add_vertex(name, label=camp)
            for anchor in rng.sample(core, 3):
                graph.add_edge(name, anchor)
            if rng.random() < 0.3:
                other_camp_core = _EVIL_CORE if camp == "justice" else _JUSTICE_CORE
                graph.add_edge(name, rng.choice(other_camp_core))

    expected = GroundTruthCommunity(
        members=set(_JUSTICE_CORE[:11]) | set(_EVIL_CORE[:8]),
        labels=("justice", "evil"),
        name="hero-villain-community",
    )
    metadata: Dict[str, object] = {
        "default_query": ("Ron Weasley", "Draco Malfoy"),
        "case_study": "Exp-8 / Figure 13",
    }
    return DatasetBundle(
        name="fiction",
        graph=graph,
        communities=[expected],
        metadata=metadata,
        seed=seed if isinstance(seed, int) else None,
    )
