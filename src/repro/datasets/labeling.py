"""The paper's label-assignment protocol for graphs with ground-truth communities.

Section 8, "Datasets": for the five SNAP graphs the authors *synthesise*
vertex labels —

    "we split the vertices based on communities into two parts, assigned all
    vertices in each part with one label. [...] To add cross edges within
    communities, we randomly assigned vertices with 10% cross edges to
    simulate the collaboration behaviors between two communities. Moreover,
    we added 10% noise data of cross edges globally on the whole graph."

:func:`apply_two_label_protocol` reproduces that protocol on any graph with
ground-truth communities, and :func:`apply_multi_label_protocol` extends it
to ``m`` labels for the DBLP-M / LiveJournal-M / Orkut-M style datasets used
by the multi-label experiments (Exp-10).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.base import GroundTruthCommunity
from repro.exceptions import DatasetError
from repro.graph.generators import RandomLike, _rng
from repro.graph.labeled_graph import LabeledGraph, Vertex


def split_community_by_labels(
    members: Sequence[Vertex],
    labels: Sequence,
    rng: random.Random,
) -> Dict[Vertex, object]:
    """Split one community's members into ``len(labels)`` contiguous parts.

    The members are shuffled and divided into near-equal parts; every vertex
    of part ``i`` receives ``labels[i]``.  Returns the assignment.
    """
    if not labels:
        raise DatasetError("at least one label is required")
    members = list(members)
    rng.shuffle(members)
    assignment: Dict[Vertex, object] = {}
    m = len(labels)
    size = max(1, len(members) // m)
    for index, vertex in enumerate(members):
        part = min(index // size, m - 1)
        assignment[vertex] = labels[part]
    return assignment


def add_intra_community_cross_edges(
    graph: LabeledGraph,
    communities: Sequence[GroundTruthCommunity],
    fraction: float,
    rng: random.Random,
) -> int:
    """Add cross-label edges inside each community ("10% cross edges").

    For every community, the number of added edges is ``fraction`` times the
    community's current edge count; endpoints are sampled uniformly from
    different label groups of the community.  Returns the number of edges
    added.
    """
    added = 0
    for community in communities:
        members = [v for v in community.members if v in graph]
        if len(members) < 2:
            continue
        by_label: Dict[object, List[Vertex]] = {}
        for v in members:
            by_label.setdefault(graph.label(v), []).append(v)
        label_groups = [group for group in by_label.values() if group]
        if len(label_groups) < 2:
            continue
        internal_edges = sum(
            1
            for u in members
            for w in graph.neighbors(u)
            if w in community.members
        ) // 2
        target = max(1, int(round(fraction * internal_edges)))
        attempts = 0
        while target > 0 and attempts < 50 * target:
            attempts += 1
            group_a, group_b = rng.sample(label_groups, 2)
            u = rng.choice(group_a)
            w = rng.choice(group_b)
            if u != w and not graph.has_edge(u, w):
                graph.add_edge(u, w)
                added += 1
                target -= 1
    return added


def plant_leader_butterflies(
    graph: LabeledGraph,
    communities: Sequence[GroundTruthCommunity],
    rng: random.Random,
) -> int:
    """Plant one leader-pair butterfly between consecutive label parts of each community.

    The SNAP ground-truth communities have no inherent cross-group structure
    (the labels are synthetic), so without this step many communities would
    contain no butterfly at all and the (k1, k2, b>=1)-BCC query would have no
    answer.  The paper's own datasets clearly do contain such answers (their
    BCC methods attain high F1), so the stand-in plants, per community, a 2x2
    biclique between the two highest-degree vertices of each pair of adjacent
    label parts — the "leaders or liaisons in charge of communications across
    the groups" of Section 3.3.  Returns the number of butterflies planted.
    """
    planted = 0
    for community in communities:
        members = [v for v in community.members if v in graph]
        by_label: Dict[object, List[Vertex]] = {}
        for v in members:
            by_label.setdefault(graph.label(v), []).append(v)
        parts = [group for group in by_label.values() if len(group) >= 2]
        for part_a, part_b in zip(parts, parts[1:]):
            leaders_a = sorted(part_a, key=lambda v: (-graph.degree(v), str(v)))[:2]
            leaders_b = sorted(part_b, key=lambda v: (-graph.degree(v), str(v)))[:2]
            for u in leaders_a:
                for w in leaders_b:
                    graph.add_edge(u, w)
            planted += 1
    return planted


def add_global_noise_cross_edges(
    graph: LabeledGraph, fraction: float, rng: random.Random
) -> int:
    """Add global noise cross edges ("10% noise data of cross edges globally").

    The number of added edges is ``fraction`` times the current edge count;
    endpoints are sampled uniformly from the whole graph and kept only when
    their labels differ.  Returns the number of edges added.
    """
    vertices = list(graph.vertices())
    if len(vertices) < 2:
        return 0
    target = int(round(fraction * graph.num_edges()))
    added = 0
    attempts = 0
    while added < target and attempts < 50 * max(target, 1):
        attempts += 1
        u = rng.choice(vertices)
        w = rng.choice(vertices)
        if u == w or graph.has_edge(u, w):
            continue
        if graph.label(u) == graph.label(w):
            continue
        graph.add_edge(u, w)
        added += 1
    return added


def apply_two_label_protocol(
    graph: LabeledGraph,
    communities: Sequence[Sequence[Vertex]],
    left_label: str = "A",
    right_label: str = "B",
    cross_fraction: float = 0.10,
    noise_fraction: float = 0.10,
    seed: RandomLike = None,
) -> List[GroundTruthCommunity]:
    """Apply the paper's two-label protocol in place and return the communities.

    Every community is split into a ``left_label`` part and a ``right_label``
    part, 10% cross edges are added inside each community and 10% noise cross
    edges are added globally (both fractions configurable).
    """
    rng = _rng(seed)
    ground_truth: List[GroundTruthCommunity] = []
    for index, members in enumerate(communities):
        assignment = split_community_by_labels(members, [left_label, right_label], rng)
        for vertex, label in assignment.items():
            if vertex in graph:
                graph.set_label(vertex, label)
        ground_truth.append(
            GroundTruthCommunity(
                members=set(members),
                labels=(left_label, right_label),
                name=f"community-{index}",
            )
        )
    # Vertices not covered by any community get a label uniformly at random.
    for vertex in graph.vertices():
        if graph.label(vertex) is None:
            graph.set_label(vertex, rng.choice([left_label, right_label]))
    plant_leader_butterflies(graph, ground_truth, rng)
    add_intra_community_cross_edges(graph, ground_truth, cross_fraction, rng)
    add_global_noise_cross_edges(graph, noise_fraction, rng)
    return ground_truth


def apply_multi_label_protocol(
    graph: LabeledGraph,
    communities: Sequence[Sequence[Vertex]],
    labels: Sequence[str],
    cross_fraction: float = 0.10,
    noise_fraction: float = 0.10,
    seed: RandomLike = None,
) -> List[GroundTruthCommunity]:
    """Apply the m-label variant of the protocol (Exp-10's DBLP-M style graphs).

    Each community is split into ``len(labels)`` parts; the rest of the
    protocol matches :func:`apply_two_label_protocol`.
    """
    if len(labels) < 2:
        raise DatasetError("the multi-label protocol needs at least two labels")
    rng = _rng(seed)
    ground_truth: List[GroundTruthCommunity] = []
    for index, members in enumerate(communities):
        assignment = split_community_by_labels(members, list(labels), rng)
        for vertex, label in assignment.items():
            if vertex in graph:
                graph.set_label(vertex, label)
        used = tuple(sorted({str(lab) for lab in assignment.values()}))
        ground_truth.append(
            GroundTruthCommunity(
                members=set(members), labels=used, name=f"community-{index}"
            )
        )
    for vertex in graph.vertices():
        if graph.label(vertex) is None:
            graph.set_label(vertex, rng.choice(list(labels)))
    plant_leader_butterflies(graph, ground_truth, rng)
    add_intra_community_cross_edges(graph, ground_truth, cross_fraction, rng)
    add_global_noise_cross_edges(graph, noise_fraction, rng)
    return ground_truth
