"""Synthetic stand-in for the OpenFlights global flight network (Exp-6).

The paper's case study queries Q = {"Toronto", "Frankfurt"} on a graph where
vertices are cities labeled by country and edges are airline routes
(domestic routes are homogeneous edges, international routes are cross
edges).  The expected BCC answer is a dense Canadian domestic core (6-core in
the paper), a dense German domestic core (5-core) and a butterfly of
transnational hub cities {Toronto, Vancouver, Frankfurt, Munich}.

The generator plants a hub-and-spoke domestic network per country (hubs are
densely interconnected, spokes attach to a few hubs) plus international
routes concentrated on the hubs, so the leader-pair/butterfly structure of
the case study is present by construction.  Real city names are used for the
two focus countries so the example scripts read like the paper's figures.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Sequence, Tuple

from repro.datasets.base import DatasetBundle, GroundTruthCommunity
from repro.graph.generators import RandomLike, _rng
from repro.graph.labeled_graph import LabeledGraph, Vertex

_CANADA_HUBS = ["Toronto", "Vancouver", "Montreal", "Calgary", "Ottawa", "Edmonton", "Winnipeg"]
_CANADA_SPOKES = ["Halifax", "Quebec City", "Victoria", "Saskatoon", "Regina", "St. Johns"]
_GERMANY_HUBS = ["Frankfurt", "Munich", "Duesseldorf", "Hamburg", "Stuttgart", "Berlin"]
_GERMANY_SPOKES = ["Cologne", "Leipzig", "Nuremberg", "Dresden", "Westerland"]

_OTHER_COUNTRIES = [
    "USA",
    "France",
    "UK",
    "Japan",
    "Brazil",
    "Australia",
    "India",
    "Spain",
]


def _add_country(
    graph: LabeledGraph,
    country: str,
    hubs: Sequence[str],
    spokes: Sequence[str],
    rng: random.Random,
    hub_degree_boost: int = 0,
) -> None:
    """Add one country's domestic network: a hub clique plus attached spokes."""
    for city in list(hubs) + list(spokes):
        graph.add_vertex(city, label=country)
    for a, b in itertools.combinations(hubs, 2):
        graph.add_edge(a, b)
    for spoke in spokes:
        # Every spoke connects to several hubs (regional airports serve hubs).
        count = min(len(hubs), 3 + hub_degree_boost)
        for hub in rng.sample(list(hubs), count):
            graph.add_edge(spoke, hub)
    # A few spoke-to-spoke regional routes.
    spokes = list(spokes)
    for i in range(len(spokes) - 1):
        if rng.random() < 0.4:
            graph.add_edge(spokes[i], spokes[i + 1])


def generate_flight_network(seed: RandomLike = 0) -> DatasetBundle:
    """Generate the flight-network stand-in used by the Exp-6 case study."""
    rng = _rng(seed)
    graph = LabeledGraph()

    _add_country(graph, "Canada", _CANADA_HUBS, _CANADA_SPOKES, rng, hub_degree_boost=2)
    _add_country(graph, "Germany", _GERMANY_HUBS, _GERMANY_SPOKES, rng, hub_degree_boost=1)

    # International routes between Canada and Germany: hub-to-hub heavy, a few
    # hub-to-secondary routes.  {Toronto, Vancouver} x {Frankfurt, Munich} is
    # the planted butterfly of the case study.
    transatlantic_pairs = [
        ("Toronto", "Frankfurt"),
        ("Toronto", "Munich"),
        ("Vancouver", "Frankfurt"),
        ("Vancouver", "Munich"),
        ("Montreal", "Frankfurt"),
        ("Montreal", "Munich"),
        ("Calgary", "Frankfurt"),
        ("Toronto", "Duesseldorf"),
        ("Vancouver", "Duesseldorf"),
        ("Ottawa", "Frankfurt"),
    ]
    for a, b in transatlantic_pairs:
        graph.add_edge(a, b)

    # Other countries: small hub networks connected to the international hubs.
    for country in _OTHER_COUNTRIES:
        hubs = [f"{country} Hub {i}" for i in range(3)]
        spokes = [f"{country} City {i}" for i in range(4)]
        _add_country(graph, country, hubs, spokes, rng)
        # International routes to both focus countries and to other countries.
        graph.add_edge(hubs[0], "Toronto")
        graph.add_edge(hubs[0], "Frankfurt")
        if rng.random() < 0.5:
            graph.add_edge(hubs[1], "Munich")
        if rng.random() < 0.5:
            graph.add_edge(hubs[1], "Vancouver")
    # Routes between the other countries themselves.
    for country_a, country_b in itertools.combinations(_OTHER_COUNTRIES, 2):
        if rng.random() < 0.4:
            graph.add_edge(f"{country_a} Hub 0", f"{country_b} Hub 0")

    expected = GroundTruthCommunity(
        members=set(_CANADA_HUBS) | set(_GERMANY_HUBS),
        labels=("Canada", "Germany"),
        name="transatlantic-hub-community",
    )
    metadata: Dict[str, object] = {
        "default_query": ("Toronto", "Frankfurt"),
        "expected_butterfly": ("Toronto", "Vancouver", "Frankfurt", "Munich"),
        "case_study": "Exp-6 / Figure 11",
    }
    return DatasetBundle(
        name="flight",
        graph=graph,
        communities=[expected],
        metadata=metadata,
        seed=seed if isinstance(seed, int) else None,
    )
