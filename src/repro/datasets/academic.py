"""Synthetic stand-in for the DBLP-Citation academic collaboration network (Exp-11).

The paper builds a collaboration graph from the Aminer DBLP-Citation-network
V12 dump: vertices are authors labeled by their dominant research field
(7 fields), edges are paper co-authorships, and cross-field edges are
interdisciplinary collaborations.  The case study runs a 2-labeled query
({"Tim Kraska", "Michael I. Jordan"} — Database x Machine Learning) and a
3-labeled query (adding "Ion Stoica" / Systems and Networking), expecting
dense field groups bridged by well-known interdisciplinary scholars.

The generator plants per-field research groups (dense co-authorship blocks),
a handful of named "star" researchers per field that collaborate across
groups within their field, and interdisciplinary project teams that wire
stars of different fields into butterflies — mirroring the ML4DB / DB4ML
collaborations highlighted in the paper.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Sequence

from repro.datasets.base import DatasetBundle, GroundTruthCommunity
from repro.graph.generators import RandomLike, _rng, ensure_butterfly
from repro.graph.labeled_graph import LabeledGraph

RESEARCH_FIELDS = [
    "Database",
    "Machine Learning",
    "Systems and Networking",
    "Theory",
    "Computer Vision",
    "Natural Language Processing",
    "Security",
]

# Named scholars used by the case study queries (labels follow the paper).
_NAMED_SCHOLARS: Dict[str, str] = {
    "Tim Kraska": "Database",
    "Michael J. Franklin": "Database",
    "Samuel Madden": "Database",
    "Michael Stonebraker": "Database",
    "Joseph M. Hellerstein": "Database",
    "Michael I. Jordan": "Machine Learning",
    "Pieter Abbeel": "Machine Learning",
    "Martin Wainwright": "Machine Learning",
    "Ion Stoica": "Systems and Networking",
    "Scott Shenker": "Systems and Networking",
    "Matei Zaharia": "Systems and Networking",
}


def generate_academic_network(
    seed: RandomLike = 0,
    groups_per_field: int = 3,
    group_size: int = 10,
) -> DatasetBundle:
    """Generate the academic collaboration network stand-in for Exp-11.

    Parameters
    ----------
    seed:
        Random seed.
    groups_per_field:
        Number of dense research groups per field.
    group_size:
        Authors per research group.
    """
    rng = _rng(seed)
    graph = LabeledGraph()

    # Named scholars.
    for scholar, field_name in _NAMED_SCHOLARS.items():
        graph.add_vertex(scholar, label=field_name)

    # Per-field research groups.
    field_groups: Dict[str, List[List[str]]] = {f: [] for f in RESEARCH_FIELDS}
    for field_name in RESEARCH_FIELDS:
        short = "".join(word[0] for word in field_name.split())
        for group_index in range(groups_per_field):
            members = [
                f"{short}-author-{group_index}-{i}" for i in range(group_size)
            ]
            for author in members:
                graph.add_vertex(author, label=field_name)
            for a, b in itertools.combinations(members, 2):
                if rng.random() < 0.5:
                    graph.add_edge(a, b)
            # Guarantee connectivity and a reasonable minimum degree.
            for i in range(len(members)):
                graph.add_edge(members[i], members[(i + 1) % len(members)])
                graph.add_edge(members[i], members[(i + 2) % len(members)])
            field_groups[field_name].append(members)

    # Stars collaborate broadly within their own field.
    stars_by_field: Dict[str, List[str]] = {f: [] for f in RESEARCH_FIELDS}
    for scholar, field_name in _NAMED_SCHOLARS.items():
        stars_by_field[field_name].append(scholar)
    for field_name, groups in field_groups.items():
        stars = stars_by_field[field_name]
        for star in stars:
            for group in groups:
                for author in rng.sample(group, max(3, group_size // 2)):
                    graph.add_edge(star, author)
        for a, b in itertools.combinations(stars, 2):
            graph.add_edge(a, b)

    # Interdisciplinary collaborations: the DB/ML, DB/Systems and ML/Systems
    # bridges of the case study (the AMPLab-style joint projects), plus random
    # cross-field project teams.  The star scholars of each pair of fields
    # collaborate as a dense biclique, so every field pair has a leader pair
    # with butterfly degree well above the b = 3 used in Exp-11.
    db_stars = ["Tim Kraska", "Michael J. Franklin", "Michael Stonebraker",
                "Joseph M. Hellerstein", "Samuel Madden"]
    ml_stars = ["Michael I. Jordan", "Pieter Abbeel", "Martin Wainwright"]
    sn_stars = ["Ion Stoica", "Scott Shenker", "Matei Zaharia"]
    for group_a, group_b in ((db_stars, ml_stars), (db_stars[1:4], sn_stars),
                             (ml_stars, sn_stars)):
        for author_a in group_a:
            for author_b in group_b:
                graph.add_edge(author_a, author_b)
    ensure_butterfly(
        graph, ("Tim Kraska", "Samuel Madden"), ("Michael I. Jordan", "Pieter Abbeel")
    )

    communities: List[GroundTruthCommunity] = [
        GroundTruthCommunity(
            members={
                "Tim Kraska",
                "Samuel Madden",
                "Michael J. Franklin",
                "Joseph M. Hellerstein",
                "Michael Stonebraker",
                "Michael I. Jordan",
                "Pieter Abbeel",
                "Martin Wainwright",
            },
            labels=("Database", "Machine Learning"),
            name="ml4db-community",
        ),
        GroundTruthCommunity(
            members={
                "Michael J. Franklin",
                "Michael Stonebraker",
                "Joseph M. Hellerstein",
                "Michael I. Jordan",
                "Pieter Abbeel",
                "Ion Stoica",
                "Scott Shenker",
                "Matei Zaharia",
            },
            labels=("Database", "Machine Learning", "Systems and Networking"),
            name="amplab-style-community",
        ),
    ]

    # Random interdisciplinary collaborations between ordinary authors.
    all_fields = list(field_groups)
    for _ in range(graph.num_edges() // 15):
        field_a, field_b = rng.sample(all_fields, 2)
        author_a = rng.choice(rng.choice(field_groups[field_a]))
        author_b = rng.choice(rng.choice(field_groups[field_b]))
        graph.add_edge(author_a, author_b)

    metadata: Dict[str, object] = {
        "default_query": ("Tim Kraska", "Michael I. Jordan"),
        "three_label_query": ("Michael J. Franklin", "Michael I. Jordan", "Ion Stoica"),
        "case_study": "Exp-11 / Figure 15",
        "fields": RESEARCH_FIELDS,
    }
    return DatasetBundle(
        name="academic",
        graph=graph,
        communities=communities,
        metadata=metadata,
        seed=seed if isinstance(seed, int) else None,
    )
