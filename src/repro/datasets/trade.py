"""Synthetic stand-in for the international trade network (Exp-7).

The paper's trade graph has countries/regions as vertices labeled by
continent; an edge joins two countries when one is a top-5 import/export
partner of the other (2019 data).  The case study queries
Q = {"United States", "China"} and expects a BCC made of a dense Asian trade
core, a dense North American trade core, and the two query countries acting
as the transcontinental leader pair.

The generator plants dense intra-continent trade blocks and concentrates
transcontinental edges on a few large economies per continent, with the
US/China pair given the heaviest cross connectivity (so they form the
butterfly leaders as in the paper's Figure 12).
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List

from repro.datasets.base import DatasetBundle, GroundTruthCommunity
from repro.graph.generators import RandomLike, _rng, ensure_butterfly
from repro.graph.labeled_graph import LabeledGraph

_CONTINENTS: Dict[str, List[str]] = {
    "Asia": [
        "China",
        "Japan",
        "Korea",
        "India",
        "Singapore",
        "Malaysia",
        "Thailand",
        "Philippines",
        "Hong Kong",
        "Saudi Arabia",
        "United Arab Emirates",
        "Brunei",
        "Maldives",
    ],
    "North America": [
        "United States",
        "Mexico",
        "Canada",
        "Guatemala",
        "Costa Rica",
        "Nicaragua",
        "El Salvador",
        "Honduras",
    ],
    "Europe": [
        "Germany",
        "France",
        "United Kingdom",
        "Italy",
        "Netherlands",
        "Spain",
        "Poland",
    ],
    "South America": ["Brazil", "Argentina", "Chile", "Peru", "Colombia"],
    "Africa": ["South Africa", "Nigeria", "Egypt", "Kenya", "Morocco"],
    "Oceania": ["Australia", "New Zealand", "Fiji"],
}

# The large economies that concentrate transcontinental trade.
_TRADE_LEADERS: Dict[str, List[str]] = {
    "Asia": ["China", "Japan", "Korea", "India"],
    "North America": ["United States", "Mexico", "Canada"],
    "Europe": ["Germany", "France", "United Kingdom"],
    "South America": ["Brazil", "Argentina"],
    "Africa": ["South Africa", "Nigeria"],
    "Oceania": ["Australia", "New Zealand"],
}


def generate_trade_network(seed: RandomLike = 0) -> DatasetBundle:
    """Generate the trade-network stand-in used by the Exp-7 case study."""
    rng = _rng(seed)
    graph = LabeledGraph()

    for continent, countries in _CONTINENTS.items():
        for country in countries:
            graph.add_vertex(country, label=continent)
        # Dense intra-continent trade: leaders trade with everyone, the rest
        # trade with several partners.
        leaders = _TRADE_LEADERS[continent]
        for leader in leaders:
            for other in countries:
                if other != leader:
                    graph.add_edge(leader, other)
        for a, b in itertools.combinations(countries, 2):
            if rng.random() < 0.35:
                graph.add_edge(a, b)

    # Transcontinental trade between leader economies.
    continent_names = list(_CONTINENTS)
    for continent_a, continent_b in itertools.combinations(continent_names, 2):
        for leader_a in _TRADE_LEADERS[continent_a]:
            for leader_b in _TRADE_LEADERS[continent_b]:
                if rng.random() < 0.45:
                    graph.add_edge(leader_a, leader_b)

    # The planted butterfly structure of the case study: the US and China are
    # each other's largest partners and both trade with the other's top
    # partners, forming several butterflies across Asia / North America.
    ensure_butterfly(graph, ("China", "Japan"), ("United States", "Mexico"))
    ensure_butterfly(graph, ("China", "Korea"), ("United States", "Canada"))
    ensure_butterfly(graph, ("China", "India"), ("United States", "Mexico"))
    # Additional US/China ties to mid-sized partners on both sides.
    for country in ("Singapore", "Malaysia", "Thailand", "Philippines", "Hong Kong"):
        graph.add_edge("United States", country)
    for country in ("Guatemala", "Costa Rica", "Nicaragua", "El Salvador"):
        graph.add_edge("China", country)

    expected = GroundTruthCommunity(
        members=set(_CONTINENTS["Asia"]) | set(_CONTINENTS["North America"]),
        labels=("Asia", "North America"),
        name="transpacific-trade-community",
    )
    metadata: Dict[str, object] = {
        "default_query": ("United States", "China"),
        "case_study": "Exp-7 / Figure 12",
        "continents": list(_CONTINENTS),
    }
    return DatasetBundle(
        name="trade",
        graph=graph,
        communities=[expected],
        metadata=metadata,
        seed=seed if isinstance(seed, int) else None,
    )
