"""The labeled graph substrate used throughout the library.

The paper works on an undirected labeled graph ``G = (V, E, l)`` where every
vertex carries exactly one label (Section 3.1).  Edges between vertices with
the same label are *homogeneous* edges; edges between vertices with different
labels are *heterogeneous* (cross) edges.

:class:`LabeledGraph` is a small, dependency-free adjacency-set structure
optimised for the operations the BCC algorithms need most:

* neighbourhood iteration and degree queries,
* vertex deletion with incident-edge cleanup (the greedy algorithms shrink the
  graph by removing vertices),
* induced subgraphs restricted to a vertex set and/or a label set,
* enumeration of vertices by label.

Vertices may be any hashable object (ints for synthetic graphs, strings for
the case-study networks).  Labels may be any hashable object as well.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.exceptions import EdgeNotFoundError, LabelError, VertexNotFoundError

Vertex = Hashable
Label = Hashable
Edge = Tuple[Vertex, Vertex]


class LabeledGraph:
    """An undirected graph whose vertices carry a single label each.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs used to seed the graph.  Vertices
        appearing in edges are added automatically with label ``None`` unless
        they already exist.
    labels:
        Optional mapping from vertex to label applied after the edges are
        inserted.

    Examples
    --------
    >>> g = LabeledGraph()
    >>> g.add_vertex(1, label="SE")
    >>> g.add_vertex(2, label="UI")
    >>> g.add_edge(1, 2)
    >>> g.degree(1)
    1
    >>> g.is_cross_edge(1, 2)
    True
    """

    __slots__ = ("_adj", "_labels", "_label_index", "_num_edges", "_version", "_frozen", "_frozen_version")

    def __init__(
        self,
        edges: Optional[Iterable[Edge]] = None,
        labels: Optional[Mapping[Vertex, Label]] = None,
    ) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._labels: Dict[Vertex, Label] = {}
        # label -> set of vertices carrying it, maintained on every mutation
        # so per-label queries need not scan all vertices.
        self._label_index: Dict[Label, Set[Vertex]] = {}
        self._num_edges: int = 0
        # Mutation counter used to invalidate the cached CSR snapshot.
        self._version: int = 0
        self._frozen = None
        self._frozen_version: int = -1
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)
        if labels is not None:
            for vertex, label in labels.items():
                if vertex not in self._adj:
                    self.add_vertex(vertex, label=label)
                else:
                    self.set_label(vertex, label)

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex, label: Label = None) -> None:
        """Add ``vertex`` with ``label``; updating the label if it exists."""
        if vertex not in self._adj:
            self._adj[vertex] = set()
            self._labels[vertex] = label
            self._label_index.setdefault(label, set()).add(vertex)
            self._version += 1
        elif label is not None and self._labels[vertex] != label:
            self._move_label(vertex, self._labels[vertex], label)
            self._labels[vertex] = label
            self._version += 1

    def _move_label(self, vertex: Vertex, old_label: Label, new_label: Label) -> None:
        """Move ``vertex`` between label-index buckets."""
        bucket = self._label_index.get(old_label)
        if bucket is not None:
            bucket.discard(vertex)
            if not bucket:
                del self._label_index[old_label]
        self._label_index.setdefault(new_label, set()).add(vertex)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``(u, v)``.

        Self-loops are ignored (the BCC model never uses them).  Missing
        endpoints are added with label ``None``.
        """
        if u == v:
            return
        if u not in self._adj:
            self.add_vertex(u)
        if v not in self._adj:
            self.add_vertex(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._num_edges += 1
            self._version += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``(u, v)``; raise :class:`EdgeNotFoundError` if absent."""
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1
        self._version += 1

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and all incident edges."""
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        for neighbor in self._adj[vertex]:
            self._adj[neighbor].discard(vertex)
        self._num_edges -= len(self._adj[vertex])
        del self._adj[vertex]
        bucket = self._label_index.get(self._labels[vertex])
        if bucket is not None:
            bucket.discard(vertex)
            if not bucket:
                del self._label_index[self._labels[vertex]]
        del self._labels[vertex]
        self._version += 1

    def remove_vertices(self, vertices: Iterable[Vertex]) -> None:
        """Remove every vertex in ``vertices`` that is present in the graph."""
        for vertex in list(vertices):
            if vertex in self._adj:
                self.remove_vertex(vertex)

    def set_label(self, vertex: Vertex, label: Label) -> None:
        """Assign ``label`` to an existing ``vertex``."""
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        if self._labels[vertex] != label:
            self._move_label(vertex, self._labels[vertex], label)
            self._labels[vertex] = label
            self._version += 1

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def num_vertices(self) -> int:
        """Number of vertices currently in the graph."""
        return len(self._adj)

    def num_edges(self) -> int:
        """Number of undirected edges currently in the graph."""
        return self._num_edges

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once."""
        seen: Set[Vertex] = set()
        for u in self._adj:
            for v in self._adj[u]:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` if the edge ``(u, v)`` exists."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Return the (live) neighbour set of ``vertex``.

        The returned set is the internal adjacency set; callers must not
        mutate it.  Use ``set(g.neighbors(v))`` when iterating while mutating
        the graph.
        """
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        return self._adj[vertex]

    def degree(self, vertex: Vertex) -> int:
        """Return the degree of ``vertex``."""
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        return len(self._adj[vertex])

    def max_degree(self) -> int:
        """Return the maximum vertex degree (0 for an empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------
    def label(self, vertex: Vertex) -> Label:
        """Return the label of ``vertex``."""
        if vertex not in self._labels:
            raise VertexNotFoundError(vertex)
        return self._labels[vertex]

    def labels(self) -> Set[Label]:
        """Return the set of distinct labels used by vertices in the graph."""
        return set(self._label_index)

    def label_map(self) -> Dict[Vertex, Label]:
        """Return a copy of the vertex-to-label mapping."""
        return dict(self._labels)

    def vertices_with_label(self, label: Label) -> Set[Vertex]:
        """Return the set of vertices whose label equals ``label``.

        Served from the maintained label index in O(group size) — no scan
        over all vertices.  The returned set is a copy and safe to mutate.
        """
        return set(self._label_index.get(label, ()))

    def label_counts(self) -> Dict[Label, int]:
        """Return a histogram mapping each label to its number of vertices."""
        return {lab: len(bucket) for lab, bucket in self._label_index.items()}

    def is_cross_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` if ``(u, v)`` is a heterogeneous (cross-label) edge."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        return self._labels[u] != self._labels[v]

    def cross_edges(self) -> Iterator[Edge]:
        """Iterate over all heterogeneous edges."""
        for u, v in self.edges():
            if self._labels[u] != self._labels[v]:
                yield (u, v)

    def homogeneous_edges(self) -> Iterator[Edge]:
        """Iterate over all homogeneous (same-label) edges."""
        for u, v in self.edges():
            if self._labels[u] == self._labels[v]:
                yield (u, v)

    def cross_neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Return neighbours of ``vertex`` that carry a different label."""
        lab = self.label(vertex)
        return {w for w in self._adj[vertex] if self._labels[w] != lab}

    def same_label_neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Return neighbours of ``vertex`` that carry the same label."""
        lab = self.label(vertex)
        return {w for w in self._adj[vertex] if self._labels[w] == lab}

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "LabeledGraph":
        """Return a deep copy of the graph (labels included)."""
        clone = LabeledGraph()
        clone._labels = dict(self._labels)
        clone._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        clone._label_index = {
            lab: set(bucket) for lab, bucket in self._label_index.items()
        }
        clone._num_edges = self._num_edges
        return clone

    def freeze(self):
        """Return a cached CSR snapshot of this graph (see :mod:`repro.graph.csr`).

        The snapshot is rebuilt lazily after any mutation (tracked through an
        internal version counter), so repeated fast-path kernel calls on an
        unmutated graph pay the freeze cost once.
        """
        from repro.graph.csr import CSRGraph  # deferred: csr imports this module

        if self._frozen is None or self._frozen_version != self._version:
            self._frozen = CSRGraph.freeze(self)
            self._frozen_version = self._version
        return self._frozen

    def has_frozen(self) -> bool:
        """Return ``True`` when a current (non-stale) CSR snapshot is cached."""
        return self._frozen is not None and self._frozen_version == self._version

    def version(self) -> int:
        """Return the mutation counter (bumped on every structural change).

        Long-lived caches keyed on a graph (the engine's label-group cache,
        the CSR snapshot) compare this counter to detect staleness.
        """
        return self._version

    def induced_subgraph(self, vertices: Iterable[Vertex]) -> "LabeledGraph":
        """Return the subgraph induced by ``vertices`` (labels preserved)."""
        keep = {v for v in vertices if v in self._adj}
        sub = LabeledGraph()
        for v in keep:
            sub.add_vertex(v, label=self._labels[v])
        for v in keep:
            for w in self._adj[v]:
                if w in keep:
                    sub.add_edge(v, w)
        return sub

    def label_induced_subgraph(self, label: Label) -> "LabeledGraph":
        """Return the subgraph induced by all vertices carrying ``label``."""
        return self.induced_subgraph(self.vertices_with_label(label))

    def merge(self, other: "LabeledGraph") -> None:
        """Union ``other`` into this graph in place (labels from ``other`` win)."""
        for v in other.vertices():
            self.add_vertex(v, label=other.label(v))
        for u, v in other.edges():
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LabeledGraph(|V|={self.num_vertices()}, |E|={self.num_edges()}, "
            f"labels={len(self.labels())})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return self._labels == other._labels and self._adj == other._adj

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("LabeledGraph objects are mutable and unhashable")

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def require_vertices(self, vertices: Iterable[Vertex]) -> None:
        """Raise :class:`VertexNotFoundError` unless every vertex exists."""
        for v in vertices:
            if v not in self._adj:
                raise VertexNotFoundError(v)

    def require_labeled(self) -> None:
        """Raise :class:`LabelError` if any vertex has label ``None``."""
        for v, lab in self._labels.items():
            if lab is None:
                raise LabelError(f"vertex {v!r} has no label")


def resolve_group_provider(graph: LabeledGraph, groups):
    """Return the label→subgraph callable: ``groups`` or the graph's own.

    The search algorithms accept an optional ``groups`` hook so a prepared
    :class:`repro.api.BCCEngine` can supply its per-label subgraph cache;
    this helper centralises the fallback to
    :meth:`LabeledGraph.label_induced_subgraph` so every consumer resolves
    the cache identically.
    """
    return groups if groups is not None else graph.label_induced_subgraph


def union_graphs(*graphs: LabeledGraph) -> LabeledGraph:
    """Return a new graph that is the union of the given labeled graphs.

    Used by :func:`repro.core.find_g0.find_g0` to assemble ``G0 = L ∪ B ∪ R``.
    """
    merged = LabeledGraph()
    for graph in graphs:
        merged.merge(graph)
    return merged
