"""Readers and writers for labeled graphs.

Two plain-text formats are supported:

* **edge list + label file** — the layout used by SNAP-style datasets and by
  the paper's artifact repository: one edge per line (two whitespace-separated
  vertex ids), plus a companion label file with ``vertex label`` per line.
* **JSON** — a single self-describing document with ``vertices`` (vertex →
  label) and ``edges`` (list of pairs); convenient for fixtures and examples.

Ground-truth communities are stored one community per line (whitespace-
separated member ids), matching the SNAP ``cmty`` files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.exceptions import DatasetError
from repro.graph.labeled_graph import LabeledGraph, Vertex

PathLike = Union[str, Path]


def _coerce_vertex(token: str, as_int: bool) -> Vertex:
    if as_int:
        try:
            return int(token)
        except ValueError:
            return token
    return token


def read_edge_list(
    path: PathLike,
    comment: str = "#",
    as_int: bool = True,
) -> LabeledGraph:
    """Read an edge-list file into a labeled graph (labels left as ``None``).

    Lines starting with ``comment`` and blank lines are skipped.  Vertex
    tokens are converted to ``int`` when possible unless ``as_int`` is False.
    """
    graph = LabeledGraph()
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise DatasetError(f"{path}:{lineno}: expected two vertex ids, got {line!r}")
            u = _coerce_vertex(parts[0], as_int)
            v = _coerce_vertex(parts[1], as_int)
            graph.add_edge(u, v)
    return graph


def read_label_file(
    path: PathLike,
    graph: Optional[LabeledGraph] = None,
    comment: str = "#",
    as_int: bool = True,
) -> Dict[Vertex, str]:
    """Read a ``vertex label`` file; optionally apply the labels to ``graph``."""
    labels: Dict[Vertex, str] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                raise DatasetError(f"{path}:{lineno}: expected 'vertex label', got {line!r}")
            vertex = _coerce_vertex(parts[0], as_int)
            labels[vertex] = parts[1]
    if graph is not None:
        for vertex, label in labels.items():
            if vertex in graph:
                graph.set_label(vertex, label)
            else:
                graph.add_vertex(vertex, label=label)
    return labels


def read_labeled_graph(
    edge_path: PathLike,
    label_path: PathLike,
    as_int: bool = True,
) -> LabeledGraph:
    """Read an edge list and a label file into a single labeled graph."""
    graph = read_edge_list(edge_path, as_int=as_int)
    read_label_file(label_path, graph=graph, as_int=as_int)
    return graph


def write_edge_list(graph: LabeledGraph, path: PathLike) -> None:
    """Write the graph's edges, one ``u v`` pair per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for u, v in sorted(graph.edges(), key=lambda e: (str(e[0]), str(e[1]))):
            handle.write(f"{u} {v}\n")


def write_label_file(graph: LabeledGraph, path: PathLike) -> None:
    """Write the graph's labels, one ``vertex label`` pair per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for vertex in sorted(graph.vertices(), key=str):
            handle.write(f"{vertex} {graph.label(vertex)}\n")


def read_communities(path: PathLike, as_int: bool = True) -> List[List[Vertex]]:
    """Read ground-truth communities, one whitespace-separated line each."""
    communities: List[List[Vertex]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            communities.append([_coerce_vertex(tok, as_int) for tok in line.split()])
    return communities


def write_communities(communities: Iterable[Sequence[Vertex]], path: PathLike) -> None:
    """Write ground-truth communities, one whitespace-separated line each."""
    with open(path, "w", encoding="utf-8") as handle:
        for community in communities:
            handle.write(" ".join(str(v) for v in community) + "\n")


def graph_to_dict(graph: LabeledGraph) -> Dict[str, object]:
    """Return a JSON-serialisable dictionary describing the graph."""
    return {
        "vertices": {str(v): graph.label(v) for v in graph.vertices()},
        "edges": [[str(u), str(v)] for u, v in graph.edges()],
    }


def graph_from_dict(payload: Dict[str, object], as_int: bool = True) -> LabeledGraph:
    """Rebuild a labeled graph from :func:`graph_to_dict` output."""
    if "vertices" not in payload or "edges" not in payload:
        raise DatasetError("graph dictionary must contain 'vertices' and 'edges'")
    graph = LabeledGraph()
    for raw_vertex, label in payload["vertices"].items():  # type: ignore[union-attr]
        graph.add_vertex(_coerce_vertex(str(raw_vertex), as_int), label=label)
    for raw_u, raw_v in payload["edges"]:  # type: ignore[union-attr]
        graph.add_edge(_coerce_vertex(str(raw_u), as_int), _coerce_vertex(str(raw_v), as_int))
    return graph


def write_json(graph: LabeledGraph, path: PathLike, indent: int = 2) -> None:
    """Serialise the graph to a JSON document."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(graph_to_dict(graph), handle, indent=indent, sort_keys=True)


def read_json(path: PathLike, as_int: bool = True) -> LabeledGraph:
    """Load a graph previously written with :func:`write_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return graph_from_dict(payload, as_int=as_int)
