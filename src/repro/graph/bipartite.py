"""Cross-group bipartite graph extraction.

The BCC model reasons about the bipartite graph ``B = (V_L, V_R, E_B)`` whose
edges are the heterogeneous edges between the two labeled groups of a
community (Algorithm 2, line 4).  Rather than introduce a second graph class,
:class:`BipartiteView` stores the two sides plus a plain adjacency restricted
to cross edges; this is exactly the structure the butterfly-counting and
leader-pair algorithms need, and it supports vertex deletion so it can be
maintained alongside the shrinking community.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.exceptions import VertexNotFoundError
from repro.graph.labeled_graph import LabeledGraph, Vertex


class BipartiteView:
    """A mutable bipartite graph over two disjoint vertex sides.

    Parameters
    ----------
    left, right:
        The two disjoint vertex sets.
    edges:
        Iterable of ``(u, v)`` pairs; each edge must join a left vertex with a
        right vertex (in either order).  Edges whose endpoints are not in the
        provided sides are ignored, which makes it convenient to pass a full
        edge list and let the view filter it.
    """

    __slots__ = ("_left", "_right", "_adj", "_num_edges")

    def __init__(
        self,
        left: Iterable[Vertex],
        right: Iterable[Vertex],
        edges: Optional[Iterable[Tuple[Vertex, Vertex]]] = None,
    ) -> None:
        self._left: Set[Vertex] = set(left)
        self._right: Set[Vertex] = set(right)
        overlap = self._left & self._right
        if overlap:
            raise ValueError(f"bipartite sides overlap on {sorted(map(repr, overlap))[:5]}")
        self._adj: Dict[Vertex, Set[Vertex]] = {
            v: set() for v in self._left | self._right
        }
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add a cross edge between a left and a right vertex (either order).

        Pairs with both endpoints on the same side, or with an endpoint not in
        the view, are silently ignored.
        """
        if u in self._left and v in self._right:
            pass
        elif v in self._left and u in self._right:
            u, v = v, u
        else:
            return
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._num_edges += 1

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and its incident cross edges from the view."""
        if vertex not in self._adj:
            return
        for nbr in self._adj[vertex]:
            self._adj[nbr].discard(vertex)
        self._num_edges -= len(self._adj[vertex])
        del self._adj[vertex]
        self._left.discard(vertex)
        self._right.discard(vertex)

    def remove_vertices(self, vertices: Iterable[Vertex]) -> None:
        """Remove every vertex in ``vertices`` from the view."""
        for vertex in list(vertices):
            self.remove_vertex(vertex)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adj

    def left(self) -> Set[Vertex]:
        """Return the current left vertex set (a copy)."""
        return set(self._left)

    def right(self) -> Set[Vertex]:
        """Return the current right vertex set (a copy)."""
        return set(self._right)

    def side(self, vertex: Vertex) -> str:
        """Return ``"left"`` or ``"right"`` for ``vertex``."""
        if vertex in self._left:
            return "left"
        if vertex in self._right:
            return "right"
        raise VertexNotFoundError(vertex)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices of the view."""
        return iter(self._adj)

    def num_vertices(self) -> int:
        """Return the number of vertices on both sides."""
        return len(self._adj)

    def num_edges(self) -> int:
        """Return the number of cross edges."""
        return self._num_edges

    def edges(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """Iterate over cross edges as ``(left_vertex, right_vertex)``."""
        for u in self._left:
            for v in self._adj[u]:
                yield (u, v)

    def neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Return the cross-neighbour set of ``vertex`` (do not mutate)."""
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        return self._adj[vertex]

    def degree(self, vertex: Vertex) -> int:
        """Return the number of cross edges incident to ``vertex``."""
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        return len(self._adj[vertex])

    def max_degree(self) -> int:
        """Return the maximum cross degree over all vertices (0 if empty)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def copy(self) -> "BipartiteView":
        """Return an independent copy of the view."""
        clone = BipartiteView(self._left, self._right)
        clone._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone


def extract_bipartite(
    graph: LabeledGraph,
    left_vertices: Iterable[Vertex],
    right_vertices: Iterable[Vertex],
) -> BipartiteView:
    """Build the cross-group bipartite graph between two vertex sets.

    This realizes Algorithm 2, line 4: ``B = (V_B, E_B)`` with
    ``V_B = V_L ∪ V_R`` and ``E_B = (V_L × V_R) ∩ E``.  Only edges of
    ``graph`` joining a left vertex to a right vertex are kept.
    """
    left = {v for v in left_vertices if v in graph}
    right = {v for v in right_vertices if v in graph}
    view = BipartiteView(left, right)
    smaller, other = (left, right) if len(left) <= len(right) else (right, left)
    for u in smaller:
        for w in graph.neighbors(u):
            if w in other:
                view.add_edge(u, w)
    return view


def extract_label_bipartite(
    graph: LabeledGraph, left_label, right_label
) -> BipartiteView:
    """Build the bipartite graph between two label groups of ``graph``."""
    return extract_bipartite(
        graph,
        graph.vertices_with_label(left_label),
        graph.vertices_with_label(right_label),
    )
