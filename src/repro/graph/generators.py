"""Generic synthetic labeled-graph generators.

These are the low-level building blocks used by :mod:`repro.datasets` to
assemble paper-shaped evaluation networks, and they are also useful on their
own for tests and examples:

* :func:`paper_example_graph` — the running example of Figure 1 (IT
  professional network with SE / UI / PM labels).
* :func:`paper_small_example_graph` — the small graph of Figure 3 used to
  illustrate Algorithms 5-7.
* :func:`planted_partition_graph` — communities with dense intra-community
  and sparse inter-community edges.
* :func:`random_bipartite_graph` — Erdős–Rényi style bipartite graph between
  two label groups.
* :func:`labeled_clique`, :func:`labeled_core_group` — dense single-label
  building blocks.
* :func:`random_labeled_graph` — labels assigned uniformly at random.

All generators take an explicit ``seed`` (or a :class:`random.Random`) so
experiments are reproducible.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import DatasetError
from repro.graph.labeled_graph import LabeledGraph, Vertex

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    """Return a :class:`random.Random` from a seed, an existing RNG or ``None``."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


# ----------------------------------------------------------------------
# Paper figures
# ----------------------------------------------------------------------
def paper_example_graph() -> LabeledGraph:
    """Return the labeled graph of Figure 1 (reconstructed).

    The figure shows an IT professional network with three labels (SE, UI and
    PM).  The exact drawing cannot be recovered from the paper text alone, so
    this reconstruction preserves every property the paper states about it:

    * ``q_l`` (SE) and ``q_r`` (UI) are the query vertices joined by a cross
      edge;
    * the SE group around ``q_l`` ({q_l, v1..v5}) forms a 4-core, the UI group
      around ``q_r`` ({q_r, u1, u2, u3}) forms a 3-core;
    * the cross edges among {q_l, v5} × {q_r, u3} form exactly one butterfly;
    * the maximum coreness of ``q_l`` is 4 and of ``q_r`` is 3;
    * every vertex of the whole graph has degree at least 3 (so the full graph
      is returned by a plain 3-core search, as the introduction argues);
    * peripheral vertices {v6..v10}, {u4..u7} and a PM vertex ``z1`` are far
      from the query pair.
    """
    g = LabeledGraph()
    se = ["ql", "v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8", "v9", "v10"]
    ui = ["qr", "u1", "u2", "u3", "u4", "u5", "u6", "u7"]
    pm = ["z1", "z2", "z3", "z4"]
    for v in se:
        g.add_vertex(v, label="SE")
    for v in ui:
        g.add_vertex(v, label="UI")
    for v in pm:
        g.add_vertex(v, label="PM")

    # Left 4-core: a 6-vertex group where every vertex has >= 4 neighbours.
    left_core = ["ql", "v1", "v2", "v3", "v4", "v5"]
    for u, v in itertools.combinations(left_core, 2):
        if {u, v} != {"v2", "v4"} and {u, v} != {"v1", "v3"}:
            g.add_edge(u, v)

    # Right 3-core: a 4-vertex clique.
    right_core = ["qr", "u1", "u2", "u3"]
    for u, v in itertools.combinations(right_core, 2):
        g.add_edge(u, v)

    # The butterfly between the two cores (dashed edges in the figure).
    g.add_edge("ql", "qr")
    g.add_edge("ql", "u3")
    g.add_edge("v5", "qr")
    g.add_edge("v5", "u3")

    # Peripheral SE chain v6..v10 hanging off v4/v5 (kept at degree >= 3).
    periphery_left = ["v6", "v7", "v8", "v9", "v10"]
    for u, v in itertools.combinations(periphery_left, 2):
        if abs(int(u[1:]) - int(v[1:])) <= 2:
            g.add_edge(u, v)
    g.add_edge("v4", "v6")
    g.add_edge("v4", "v7")
    g.add_edge("v3", "v6")

    # Peripheral UI chain u4..u7 hanging off u1/u2.
    periphery_right = ["u4", "u5", "u6", "u7"]
    for u, v in itertools.combinations(periphery_right, 2):
        if abs(int(u[1:]) - int(v[1:])) <= 2:
            g.add_edge(u, v)
    g.add_edge("u1", "u4")
    g.add_edge("u2", "u4")
    g.add_edge("u1", "u5")

    # The PM group attached between the peripheries.
    for u, v in itertools.combinations(pm, 2):
        g.add_edge(u, v)
    g.add_edge("z1", "v9")
    g.add_edge("z1", "u6")
    g.add_edge("z2", "v10")
    g.add_edge("z3", "u7")
    return g


def paper_small_example_graph() -> LabeledGraph:
    """Return the labeled graph of Figure 3 (reconstructed).

    Figure 3 is used by Examples 4-6 to illustrate the fast query distance
    update and the leader-pair algorithms.  The reconstruction reproduces the
    facts used by those examples:

    * the query vertices are ``q_l`` (left label) and ``q_r`` (right label);
    * the left side is {q_l, v1, v2, v3}, the right side is
      {q_r, u1, ..., u7, u9};
    * non-zero butterfly degrees are χ(v1) = χ(v3) = 6 and
      χ(u2) = χ(u3) = χ(u5) = χ(u6) = 3;
    * the query-distance table (Table 2) holds: e.g. dist(u9, q_l) = 4 and
      deleting u9 moves u4 and u7 from distance 2 to 3 w.r.t. q_r.
    """
    g = LabeledGraph()
    left = ["ql", "v1", "v2", "v3"]
    right = ["qr", "u1", "u2", "u3", "u4", "u5", "u6", "u7", "u9"]
    for v in left:
        g.add_vertex(v, label="L")
    for v in right:
        g.add_vertex(v, label="R")

    # Left intra-group edges: q_l connected to v1, v2, v3, and v2 to v1 so
    # that dist(v2, q_r) = 3 as in Table 2.
    g.add_edge("ql", "v1")
    g.add_edge("ql", "v2")
    g.add_edge("ql", "v3")
    g.add_edge("v1", "v2")

    # Right intra-group edges, chosen to reproduce the distance table
    # (Table 2): u1/u2/u3/u9 adjacent to q_r; u4 and u7 reach q_r only via u9
    # (distance 2 before the deletion of u9, 3 after) or via u5; u5 keeps
    # distance 2 through u2.
    g.add_edge("qr", "u1")
    g.add_edge("qr", "u2")
    g.add_edge("qr", "u3")
    g.add_edge("qr", "u9")
    g.add_edge("u1", "u2")
    g.add_edge("u4", "u9")
    g.add_edge("u7", "u9")
    g.add_edge("u4", "u5")
    g.add_edge("u7", "u5")
    g.add_edge("u5", "u2")

    # Cross edges: v1 and v3 each connect to u2, u3, u5, u6, forming the
    # 2x4 biclique that yields chi(v1) = chi(v3) = 6 and chi(u_i) = 3.
    for v in ("v1", "v3"):
        for u in ("u2", "u3", "u5", "u6"):
            g.add_edge(v, u)
    return g


# ----------------------------------------------------------------------
# Random building blocks
# ----------------------------------------------------------------------
def labeled_clique(
    size: int, label, prefix: str = "c", start: int = 0
) -> LabeledGraph:
    """Return a clique of ``size`` vertices, all carrying ``label``."""
    if size < 1:
        raise DatasetError("clique size must be >= 1")
    g = LabeledGraph()
    names = [f"{prefix}{start + i}" for i in range(size)]
    for name in names:
        g.add_vertex(name, label=label)
    for u, v in itertools.combinations(names, 2):
        g.add_edge(u, v)
    return g


def labeled_core_group(
    vertices: Sequence[Vertex],
    label,
    k: int,
    seed: RandomLike = None,
    extra_edge_prob: float = 0.0,
) -> LabeledGraph:
    """Return a connected graph over ``vertices`` in which every vertex has degree >= k.

    The construction starts from a Harary-style circulant (each vertex linked
    to its ``ceil(k/2)`` successors and predecessors on a ring), which is the
    sparsest classic structure guaranteeing minimum degree ``k`` and
    connectivity, then adds random extra edges with probability
    ``extra_edge_prob`` to diversify densities between groups.
    """
    n = len(vertices)
    if n == 0:
        raise DatasetError("core group needs at least one vertex")
    if k >= n:
        raise DatasetError(f"cannot build a {k}-core on {n} vertices")
    rng = _rng(seed)
    g = LabeledGraph()
    for v in vertices:
        g.add_vertex(v, label=label)
    half = (k + 1) // 2
    for i in range(n):
        for offset in range(1, half + 1):
            g.add_edge(vertices[i], vertices[(i + offset) % n])
    # For odd k the circulant gives degree k+1 on even cycles already;
    # ensure min degree k by adding chords where needed.
    for i, v in enumerate(vertices):
        j = 1
        while g.degree(v) < k:
            target = vertices[(i + half + j) % n]
            if target != v:
                g.add_edge(v, target)
            j += 1
    if extra_edge_prob > 0:
        for u, v in itertools.combinations(vertices, 2):
            if not g.has_edge(u, v) and rng.random() < extra_edge_prob:
                g.add_edge(u, v)
    return g


def random_bipartite_graph(
    left: Sequence[Vertex],
    right: Sequence[Vertex],
    edge_prob: float,
    left_label="L",
    right_label="R",
    seed: RandomLike = None,
) -> LabeledGraph:
    """Return a random bipartite labeled graph (cross edges only)."""
    rng = _rng(seed)
    g = LabeledGraph()
    for v in left:
        g.add_vertex(v, label=left_label)
    for v in right:
        g.add_vertex(v, label=right_label)
    for u in left:
        for v in right:
            if rng.random() < edge_prob:
                g.add_edge(u, v)
    return g


def random_labeled_graph(
    num_vertices: int,
    edge_prob: float,
    labels: Sequence,
    seed: RandomLike = None,
) -> LabeledGraph:
    """Return an Erdős–Rényi graph with labels chosen uniformly at random."""
    if num_vertices < 0:
        raise DatasetError("num_vertices must be >= 0")
    if not labels:
        raise DatasetError("at least one label is required")
    rng = _rng(seed)
    g = LabeledGraph()
    for i in range(num_vertices):
        g.add_vertex(i, label=rng.choice(list(labels)))
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if rng.random() < edge_prob:
                g.add_edge(u, v)
    return g


def planted_partition_graph(
    community_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: RandomLike = None,
    label_for_community=None,
) -> Tuple[LabeledGraph, List[List[int]]]:
    """Return a planted-partition graph plus its ground-truth communities.

    Parameters
    ----------
    community_sizes:
        Number of vertices in each planted community.
    p_in:
        Probability of an edge between two vertices of the same community.
    p_out:
        Probability of an edge between two vertices of different communities.
    label_for_community:
        Optional callable ``community_index -> label``; by default every
        vertex receives the label ``None`` (labels are typically assigned
        later by the dataset-specific protocols).

    Returns
    -------
    (graph, communities):
        The generated graph and the list of ground-truth communities (each a
        list of vertex ids).
    """
    if not community_sizes:
        raise DatasetError("at least one community is required")
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise DatasetError("probabilities must satisfy 0 <= p_out <= p_in <= 1")
    rng = _rng(seed)
    g = LabeledGraph()
    communities: List[List[int]] = []
    next_id = 0
    for index, size in enumerate(community_sizes):
        members = list(range(next_id, next_id + size))
        next_id += size
        communities.append(members)
        label = label_for_community(index) if label_for_community else None
        for v in members:
            g.add_vertex(v, label=label)
        for u, v in itertools.combinations(members, 2):
            if rng.random() < p_in:
                g.add_edge(u, v)
    for ci, cj in itertools.combinations(range(len(communities)), 2):
        for u in communities[ci]:
            for v in communities[cj]:
                if rng.random() < p_out:
                    g.add_edge(u, v)
    return g, communities


def attach_cross_edges(
    graph: LabeledGraph,
    left_vertices: Sequence[Vertex],
    right_vertices: Sequence[Vertex],
    fraction: float,
    seed: RandomLike = None,
) -> int:
    """Randomly add cross edges between two vertex sets.

    ``fraction`` is interpreted as in the paper's labeling protocol: the
    number of added edges equals ``fraction`` times the number of possible
    left/right pairs, capped at the number of missing pairs.  Returns the
    number of edges actually added.
    """
    if fraction < 0:
        raise DatasetError("fraction must be >= 0")
    rng = _rng(seed)
    pairs = [
        (u, v)
        for u in left_vertices
        for v in right_vertices
        if u != v and not graph.has_edge(u, v)
    ]
    target = min(len(pairs), int(round(fraction * len(left_vertices) * len(right_vertices))))
    rng.shuffle(pairs)
    for u, v in pairs[:target]:
        graph.add_edge(u, v)
    return target


def ensure_butterfly(
    graph: LabeledGraph,
    left_pair: Tuple[Vertex, Vertex],
    right_pair: Tuple[Vertex, Vertex],
) -> None:
    """Add the four cross edges making ``left_pair`` × ``right_pair`` a butterfly."""
    for u in left_pair:
        for v in right_pair:
            graph.add_edge(u, v)
